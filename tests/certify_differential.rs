//! Static-vs-dynamic differential fuzzing of the race-certification
//! subsystem (`docs/dynamic.md`).
//!
//! For every generated MiniF program (shared generator in the `minif-gen`
//! crate) the harness checks both directions of the oracle:
//!
//! * **DOALL direction** — every loop the static parallelizer claims
//!   parallel must execute race-free under ≥ 4 adversarial schedules of the
//!   certifying executor, with whole-program output equal to the sequential
//!   run (floating-point-canonicalized) and final memory *bitwise* equal for
//!   plain DOALL loops (no transforms) or tolerance-equal for transformed
//!   ones (reductions reassociate).
//! * **serial direction** — every loop the static side classifies serial
//!   whose carried flow dependence is also *observed dynamically* (by the
//!   Dynamic Dependence Analyzer on the sequential run) must, when executed
//!   in parallel under the minimal always-legal plan, exhibit a detected
//!   race, an observable divergence, or a runtime error.
//!
//! Failures auto-shrink by delta-debugging the generated statement lists and
//! are persisted as minimal MiniF programs under
//! `tests/regressions/certify/`, which this harness (and CI) replays before
//! generating novel cases.  Program count: `SUIF_CERTIFY_PROGRAMS` env var,
//! defaulting to 48 in debug builds and 500 in release (the acceptance
//! bar), all from one fixed seed.

use minif_gen::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use std::path::{Path, PathBuf};
use suif_analysis::{ParallelizeConfig, Parallelizer};
use suif_dynamic::machine::Machine;
use suif_dynamic::{DynDepAnalyzer, DynDepConfig, Value};
use suif_parallel::plan::minimal_plan;
use suif_parallel::{capture_sequential, certify_loop, CertifyOptions, ParallelPlans};

const DOALL_SCHEDULES: u32 = 4;
const SERIAL_SCHEDULES: u32 = 2;

fn regression_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions/certify")
}

fn program_count() -> usize {
    if let Ok(v) = std::env::var("SUIF_CERTIFY_PROGRAMS") {
        return v.parse().expect("SUIF_CERTIFY_PROGRAMS must be a number");
    }
    if cfg!(debug_assertions) {
        48
    } else {
        500
    }
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Privatized storage with no merge-back keeps its pre-loop shared value
/// under certification while the sequential run mutates it in place, so
/// memory comparisons skip those cells (reported by the executor as
/// `CertOutcome::dead_private`).
fn masked(addr: usize, dead: &[(usize, usize)]) -> bool {
    dead.iter()
        .any(|&(base, len)| addr >= base && addr < base + len)
}

fn mem_bitwise_eq(a: &[Value], b: &[Value], dead: &[(usize, usize)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .enumerate()
            .all(|(i, (x, y))| masked(i, dead) || x == y)
}

fn mem_close(a: &[Value], b: &[Value], dead: &[(usize, usize)]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).enumerate().all(|(i, (x, y))| {
            masked(i, dead)
                || match (x, y) {
                    (Value::Int(p), Value::Int(q)) => p == q,
                    (Value::Real(p), Value::Real(q)) => {
                        (p - q).abs() <= 1e-9 + 1e-6 * p.abs().max(q.abs())
                    }
                    _ => false,
                }
        })
}

/// The full differential check over one MiniF source.  `Err` carries a
/// human-readable reason (the shrinker minimizes over it).
fn check_source(src: &str) -> Result<(), String> {
    let program = suif_ir::parse_program(src)
        .map_err(|e| format!("generated program failed to parse: {e}"))?;
    let seq = capture_sequential(&program, &[]);
    if let Some(e) = &seq.error {
        return Err(format!("sequential run failed: {}", e.message));
    }
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);

    // Dynamic dependence observation on the sequential run (gates the
    // serial direction).
    let mut dd = DynDepAnalyzer::new(DynDepConfig::default());
    {
        let mut m = Machine::new(&program, &mut dd).map_err(|e| format!("layout error: {e:?}"))?;
        m.run()
            .map_err(|e| format!("dyndep run failed: {}", e.message))?;
    }
    let dynrep = dd.report();

    let base_seed = fnv64(src) & 0xffff_f000; // room for schedule offsets

    for info in pa.certify_inputs() {
        if info.parallel {
            let Some(plan) = plans.loops.get(&info.stmt) else {
                return Err(format!("parallel loop {} has no plan", info.name));
            };
            let cert = certify_loop(
                &program,
                info.stmt,
                plan,
                &CertifyOptions {
                    schedules: DOALL_SCHEDULES,
                    seed: base_seed,
                    ..Default::default()
                },
            );
            for s in &cert.schedules {
                let dead = &s.outcome.dead_private;
                if let Some(r) = s.outcome.races.first() {
                    return Err(format!(
                        "DOALL loop {} races under seed {}: {}",
                        info.name, s.seed, r
                    ));
                }
                if let Some(e) = &s.capture.error {
                    return Err(format!(
                        "DOALL loop {} failed under seed {}: {}",
                        info.name, s.seed, e.message
                    ));
                }
                if canon(&s.capture.output) != canon(&seq.output) {
                    return Err(format!(
                        "DOALL loop {} output diverged under seed {}:\nseq: {:?}\npar: {:?}",
                        info.name, s.seed, seq.output, s.capture.output
                    ));
                }
                let mem_ok = if info.plain_doall {
                    // Race-free plain DOALL: every cell written by at most
                    // one iteration, so memory must be bitwise deterministic.
                    mem_bitwise_eq(&s.capture.memory, &seq.memory, dead)
                } else {
                    mem_close(&s.capture.memory, &seq.memory, dead)
                };
                if !mem_ok {
                    return Err(format!(
                        "DOALL loop {} final memory diverged under seed {} (plain={})",
                        info.name, s.seed, info.plain_doall
                    ));
                }
            }
        } else {
            if info.has_io {
                continue;
            }
            // Gate on a dynamically observed carried flow dependence: only
            // then is the static "serial" claim dynamically refutable.
            let observed: Vec<String> = dynrep
                .dep_vars(info.stmt)
                .map(|v| program.var(v).name.clone())
                .collect();
            if observed.is_empty() {
                continue;
            }
            let Some(plan) = minimal_plan(&program, info.stmt) else {
                continue;
            };
            let cert = certify_loop(
                &program,
                info.stmt,
                &plan,
                &CertifyOptions {
                    schedules: SERIAL_SCHEDULES,
                    seed: base_seed,
                    ..Default::default()
                },
            );
            // Loops that never ran in parallel (e.g. zero-trip at runtime)
            // cannot be refuted dynamically.
            if cert.schedules.iter().all(|s| s.outcome.loops_run == 0) {
                continue;
            }
            let refuted = cert.schedules.iter().any(|s| {
                !s.outcome.races.is_empty()
                    || s.capture.error.is_some()
                    || canon(&s.capture.output) != canon(&seq.output)
                    || !mem_close(&s.capture.memory, &seq.memory, &s.outcome.dead_private)
            });
            if !refuted {
                return Err(format!(
                    "serial loop {} (dynamic deps {:?}) showed no race, divergence or \
                     error under {} adversarial schedules of the minimal plan",
                    info.name, observed, SERIAL_SCHEDULES
                ));
            }
        }
    }
    Ok(())
}

fn check_case(loops: &[Vec<GStmt>]) -> Result<(), String> {
    check_source(&render_program(loops))
}

/// Delta-debug a failing case down to a local minimum: drop whole loops,
/// drop statements, and flatten `If`/`Loop` wrappers while the failure
/// persists.
fn shrink_candidates(loops: &[Vec<GStmt>]) -> Vec<Vec<Vec<GStmt>>> {
    let mut out = Vec::new();
    if loops.len() > 1 {
        for i in 0..loops.len() {
            let mut c = loops.to_vec();
            c.remove(i);
            out.push(c);
        }
    }
    for (i, body) in loops.iter().enumerate() {
        for j in 0..body.len() {
            if body.len() > 1 {
                let mut c = loops.to_vec();
                c[i].remove(j);
                out.push(c);
            }
            match &body[j] {
                GStmt::If(_, inner) | GStmt::Loop(inner) => {
                    let mut c = loops.to_vec();
                    c[i].splice(j..=j, inner.iter().cloned());
                    out.push(c);
                }
                _ => {}
            }
        }
    }
    out
}

fn shrink(mut cur: Vec<Vec<GStmt>>) -> Vec<Vec<GStmt>> {
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&cur) {
            if check_case(&cand).is_err() {
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// Shrink, persist the minimal MiniF source as a regression file, and panic.
fn fail_with_shrink(loops: Vec<Vec<GStmt>>, idx: usize, reason: String) -> ! {
    let minimal = shrink(loops);
    let src = render_program(&minimal);
    let final_reason = check_case(&minimal).err().unwrap_or_else(|| reason.clone());
    let dir = regression_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("shrink-{:016x}.mf", fnv64(&src)));
    let _ = std::fs::write(&path, &src);
    panic!(
        "certify differential failure on generated program #{idx}\n\
         original failure: {reason}\n\
         shrunk failure:   {final_reason}\n\
         minimal program persisted to {}:\n{src}",
        path.display()
    );
}

/// Replay the persisted regression corpus and the structured known
/// regressions before any novel case is generated.
#[test]
fn certify_replays_regression_corpus_first() {
    for (i, case) in known_regressions().iter().enumerate() {
        if let Err(e) = check_case(case) {
            panic!("known regression {i} fails certification: {e}");
        }
    }
    let dir = regression_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "mf"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    for f in files {
        let src = std::fs::read_to_string(&f).expect("read regression file");
        if let Err(e) = check_source(&src) {
            panic!(
                "persisted regression {} fails certification: {e}",
                f.display()
            );
        }
    }
}

/// The main differential fuzz loop: fixed seed, `program_count()` programs.
#[test]
fn certify_differential_fuzz() {
    let count = program_count();
    let strat = gprogram();
    let mut rng = TestRng::from_name("certify-differential-v1");
    for idx in 0..count {
        let loops = strat.generate(&mut rng);
        if let Err(reason) = check_case(&loops) {
            fail_with_shrink(loops, idx, reason);
        }
    }
}

/// Regenerate the seed corpus files for the structured known regressions
/// (run explicitly with `--ignored` when the generator's rendering changes).
#[test]
#[ignore]
fn dump_known_regression_sources() {
    let dir = regression_dir();
    std::fs::create_dir_all(&dir).expect("create regression dir");
    for case in known_regressions() {
        let src = render_program(&case);
        let path = dir.join(format!("seed-{:016x}.mf", fnv64(&src)));
        std::fs::write(&path, &src).expect("write seed regression");
    }
}
