//! Property tests over randomly generated MiniF programs.
//!
//! The generator lives in the `minif-gen` crate (shared with the race
//! certification harness in `certify_differential.rs` and the corpus
//! driver).  Three end-to-end properties are checked:
//!
//! 1. **front-end fixpoint** — pretty-printing a parsed program and
//!    re-parsing it reaches a printing fixpoint;
//! 2. **analysis + runtime soundness** — executing the program with the
//!    auto-parallelizer's plans on the SPMD runtime produces the same output
//!    as the sequential interpreter (modulo floating-point reassociation of
//!    reductions);
//! 3. **static/dynamic agreement** — a loop the compiler declares parallel
//!    with no transformations (every object class `Parallel`) never shows a
//!    loop-carried flow dependence in the dynamic dependence analyzer.
//!
//! The shrunk counterexamples checked into
//! `tests/prop_random_programs.proptest-regressions` are replayed first (see
//! [`minif_gen::known_regressions`]): the vendored proptest shim has no
//! persistence, so the replay is explicit.

use minif_gen::*;
use proptest::prelude::*;
use suif_analysis::{ParallelizeConfig, Parallelizer, VarClass};
use suif_dynamic::machine::{Machine, NoHooks};
use suif_dynamic::{DynDepAnalyzer, DynDepConfig};
use suif_parallel::{
    measure_parallel, measure_sequential, Finalization, ParallelPlans, RuntimeConfig, Schedule,
};

/// The runtime-soundness core shared by the property below and the
/// regression replay: sequential output must match parallel output across
/// the schedule / finalization / thread-count matrix.
fn assert_parallel_matches_sequential(loops: &[Vec<GStmt>]) {
    let src = render_program(loops);
    let program = suif_ir::parse_program(&src).expect("parse");
    let seq = measure_sequential(&program, vec![]).expect("sequential run");
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);
    for threads in [2usize, 3] {
        for schedule in [Schedule::Block, Schedule::Cyclic] {
            for finalization in [
                Finalization::Serialized,
                Finalization::StaggeredLocks { sections: 4 },
            ] {
                let (par, _) = measure_parallel(
                    &program,
                    &plans,
                    RuntimeConfig {
                        threads,
                        min_parallel_iters: 2,
                        min_parallel_cost: 0,
                        finalization,
                        schedule,
                    },
                    vec![],
                )
                .expect("parallel run");
                assert_eq!(
                    canon(&seq.output),
                    canon(&par.output),
                    "divergence with {threads} threads / {schedule:?} / {finalization:?} on:\n{src}"
                );
            }
        }
    }
}

/// Replay the checked-in shrunk corpus before any novel case is generated.
#[test]
fn replay_known_regressions() {
    for (i, case) in known_regressions().iter().enumerate() {
        let src = render_program(case);
        let p1 = suif_ir::parse_program(&src)
            .unwrap_or_else(|e| panic!("regression {i} failed to parse: {e}\n{src}"));
        let printed = suif_ir::pretty::program_to_string(&p1);
        let p2 = suif_ir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("regression {i} failed to reparse: {e}\n{printed}"));
        assert_eq!(
            printed,
            suif_ir::pretty::program_to_string(&p2),
            "regression {i} not a printing fixpoint"
        );
        assert_parallel_matches_sequential(case);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pretty_print_reaches_fixpoint(loops in gprogram()) {
        let src = render_program(&loops);
        let p1 = suif_ir::parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program failed to parse: {e}\n{src}"));
        let printed = suif_ir::pretty::program_to_string(&p1);
        let p2 = suif_ir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(printed, suif_ir::pretty::program_to_string(&p2));
    }

    #[test]
    fn parallel_execution_matches_sequential(loops in gprogram()) {
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let seq = measure_sequential(&program, vec![]).expect("sequential run");
        let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let plans = ParallelPlans::from_analysis(&pa);
        let (par, _) = measure_parallel(
            &program,
            &plans,
            RuntimeConfig {
                threads: 2,
                min_parallel_iters: 2,
                min_parallel_cost: 0,
                finalization: Finalization::Serialized,
                schedule: Default::default(),
            },
            vec![],
        )
        .expect("parallel run");
        prop_assert_eq!(
            canon(&seq.output),
            canon(&par.output),
            "divergence on:\n{}",
            src
        );
    }

    #[test]
    fn static_parallel_verdicts_are_dynamically_clean(loops in gprogram()) {
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
        // Dynamic run with no ignore sets at all: every flow dep observed.
        let mut dd = DynDepAnalyzer::new(DynDepConfig::default());
        {
            let mut m = Machine::new(&program, &mut dd).unwrap();
            m.run().unwrap();
        }
        let rep = dd.report();
        for li in &pa.ctx.tree.loops {
            let Some(v) = pa.verdicts.get(&li.stmt) else { continue };
            if !v.is_parallel() {
                continue;
            }
            // Only plain-parallel loops (no privatization, no reductions):
            // those must be dependence-free even dynamically.
            let plain = v
                .classes()
                .values()
                .all(|c| matches!(c, VarClass::Parallel));
            if !plain {
                continue;
            }
            let dyn_vars: Vec<String> = rep
                .dep_vars(li.stmt)
                .filter(|v| *v != li.var) // the induction variable itself
                .map(|v| program.var(v).name.clone())
                .collect();
            prop_assert!(
                dyn_vars.is_empty(),
                "loop {} declared plainly parallel but carries {:?} dynamically:\n{}",
                li.name,
                dyn_vars,
                src
            );
        }
    }

    #[test]
    fn parallel_execution_matches_sequential_all_configs(loops in gprogram()) {
        assert_parallel_matches_sequential(&loops);
    }

    #[test]
    fn interpreter_is_deterministic(loops in gprogram()) {
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let mut h1 = NoHooks;
        let mut m1 = Machine::new(&program, &mut h1).unwrap();
        m1.run().unwrap();
        let mut h2 = NoHooks;
        let mut m2 = Machine::new(&program, &mut h2).unwrap();
        m2.run().unwrap();
        prop_assert_eq!(&m1.output, &m2.output);
        prop_assert_eq!(m1.ops(), m2.ops());
    }
}
