//! Property tests over randomly generated MiniF programs.
//!
//! The generator produces small but structurally varied programs: nested
//! loops, conditionals, array/scalar assignments with in-bounds subscripts,
//! reduction-style updates, and procedure calls.  Three end-to-end
//! properties are checked:
//!
//! 1. **front-end fixpoint** — pretty-printing a parsed program and
//!    re-parsing it reaches a printing fixpoint;
//! 2. **analysis + runtime soundness** — executing the program with the
//!    auto-parallelizer's plans on the SPMD runtime produces the same output
//!    as the sequential interpreter (modulo floating-point reassociation of
//!    reductions);
//! 3. **static/dynamic agreement** — a loop the compiler declares parallel
//!    with no transformations (every object class `Parallel`) never shows a
//!    loop-carried flow dependence in the dynamic dependence analyzer.

use proptest::prelude::*;
use suif_analysis::{ParallelizeConfig, Parallelizer, VarClass};
use suif_dynamic::machine::{Machine, NoHooks};
use suif_dynamic::{DynDepAnalyzer, DynDepConfig};
use suif_parallel::{
    measure_parallel, measure_sequential, Finalization, ParallelPlans, RuntimeConfig, Schedule,
};

const N: i64 = 12; // array extent used throughout

#[derive(Clone, Debug)]
enum GExpr {
    Const(f64),
    Scalar(usize),     // s<k>
    Elem(usize, GSub), // a<k>[sub]
    Add(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, f64),
}

#[derive(Clone, Debug)]
enum GSub {
    LoopVar,         // i (innermost loop var)
    LoopVarOff(i64), // clamped i + c
    Mixed(i64),      // mod(i * c, N) + 1
    Const(i64),
}

#[derive(Clone, Debug)]
enum GStmt {
    AssignScalar(usize, GExpr),
    AssignElem(usize, GSub, GExpr),
    Update(usize, GSub, GExpr), // a[sub] = a[sub] + e
    ScalarSum(usize, GExpr),    // s = s + e
    If(GSub, Vec<GStmt>),       // if a0[sub] >= 0 { .. } (always true: a0 >= 0)
    Loop(Vec<GStmt>),           // nested do over a fresh variable
}

fn gsub() -> impl Strategy<Value = GSub> {
    prop_oneof![
        Just(GSub::LoopVar),
        (1i64..=3).prop_map(GSub::LoopVarOff),
        (1i64..=7).prop_map(GSub::Mixed),
        (1i64..=N).prop_map(GSub::Const),
    ]
}

fn gexpr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        (-4.0..4.0f64).prop_map(GExpr::Const),
        (0usize..3).prop_map(GExpr::Scalar),
        ((0usize..3), gsub()).prop_map(|(a, s)| GExpr::Elem(a, s)),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Add(Box::new(a), Box::new(b))),
            (inner, -2.0..2.0f64).prop_map(|(a, c)| GExpr::Mul(Box::new(a), c)),
        ]
    })
}

fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    let base = prop_oneof![
        ((0usize..3), gexpr()).prop_map(|(s, e)| GStmt::AssignScalar(s, e)),
        ((0usize..3), gsub(), gexpr()).prop_map(|(a, s, e)| GStmt::AssignElem(a, s, e)),
        ((0usize..3), gsub(), gexpr()).prop_map(|(a, s, e)| GStmt::Update(a, s, e)),
        ((0usize..3), gexpr()).prop_map(|(s, e)| GStmt::ScalarSum(s, e)),
    ];
    if depth == 0 {
        base.boxed()
    } else {
        prop_oneof![
            4 => base,
            1 => (gsub(), prop::collection::vec(gstmt(0), 1..3))
                .prop_map(|(s, body)| GStmt::If(s, body)),
            1 => prop::collection::vec(gstmt(0), 1..3)
                .prop_map(GStmt::Loop),
        ]
        .boxed()
    }
}

fn gprogram() -> impl Strategy<Value = Vec<Vec<GStmt>>> {
    // 1-3 top-level loops, each with 1-4 body statements.
    prop::collection::vec(prop::collection::vec(gstmt(1), 1..4), 1..3)
}

fn render_sub(s: &GSub, var: &str) -> String {
    match s {
        GSub::LoopVar => var.to_string(),
        GSub::LoopVarOff(c) => format!("min({var} + {c}, {N})"),
        GSub::Mixed(c) => format!("mod({var} * {c}, {N}) + 1"),
        GSub::Const(c) => c.to_string(),
    }
}

fn render_expr(e: &GExpr, var: &str) -> String {
    match e {
        GExpr::Const(c) => format!("{c:.3}"),
        GExpr::Scalar(k) => format!("s{k}"),
        GExpr::Elem(a, s) => format!("a{a}[{}]", render_sub(s, var)),
        GExpr::Add(x, y) => format!("({} + {})", render_expr(x, var), render_expr(y, var)),
        GExpr::Mul(x, c) => format!("({} * {c:.3})", render_expr(x, var)),
    }
}

fn render_body(body: &[GStmt], var: &str, indent: usize, out: &mut String, label: &mut u32) {
    let pad = "  ".repeat(indent);
    for s in body {
        match s {
            GStmt::AssignScalar(k, e) => {
                out.push_str(&format!("{pad}s{k} = {}\n", render_expr(e, var)));
            }
            GStmt::AssignElem(a, sub, e) => {
                out.push_str(&format!(
                    "{pad}a{a}[{}] = {}\n",
                    render_sub(sub, var),
                    render_expr(e, var)
                ));
            }
            GStmt::Update(a, sub, e) => {
                let s = render_sub(sub, var);
                out.push_str(&format!(
                    "{pad}a{a}[{s}] = a{a}[{s}] + {}\n",
                    render_expr(e, var)
                ));
            }
            GStmt::ScalarSum(k, e) => {
                out.push_str(&format!("{pad}s{k} = s{k} + {}\n", render_expr(e, var)));
            }
            GStmt::If(sub, body) => {
                out.push_str(&format!(
                    "{pad}if abs(a0[{}]) >= 0.0 {{\n",
                    render_sub(sub, var)
                ));
                render_body(body, var, indent + 1, out, label);
                out.push_str(&format!("{pad}}}\n"));
            }
            GStmt::Loop(body) => {
                *label += 1;
                let inner = format!("j{label}");
                out.push_str(&format!(
                    "{pad}do {} {} = 1, {N} {{\n",
                    1000 + *label,
                    inner
                ));
                render_body(body, &inner, indent + 1, out, label);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render_program(loops: &[Vec<GStmt>]) -> String {
    let mut out = String::new();
    out.push_str("program fuzz\n");
    out.push_str(&format!("const n = {N}\n"));
    out.push_str("proc main() {\n");
    out.push_str("  real a0[n], a1[n], a2[n]\n");
    out.push_str("  real s0, s1, s2\n");
    // Declare enough loop variables.
    let mut nloops = 0u32;
    fn count(body: &[GStmt], n: &mut u32) {
        for s in body {
            match s {
                GStmt::Loop(b) => {
                    *n += 1;
                    count(b, n);
                }
                GStmt::If(_, b) => count(b, n),
                _ => {}
            }
        }
    }
    for l in loops {
        nloops += 1;
        count(l, &mut nloops);
    }
    let vars: Vec<String> = (1..=nloops.max(1)).map(|k| format!("j{k}")).collect();
    out.push_str(&format!("  int i, {}\n", vars.join(", ")));
    // Initialize arrays deterministically.
    out.push_str("  do 1 i = 1, n {\n    a0[i] = sin(float(i) * 0.7)\n    a1[i] = cos(float(i) * 0.3)\n    a2[i] = float(i) * 0.1\n  }\n");
    let mut label = 0u32;
    for (k, l) in loops.iter().enumerate() {
        label += 1;
        let var = format!("j{label}");
        out.push_str(&format!("  do {} {} = 1, {N} {{\n", 100 + k, var));
        render_body(l, &var, 2, &mut out, &mut label);
        out.push_str("  }\n");
    }
    out.push_str("  print s0, s1, s2, a0[1], a1[5], a2[11]\n");
    out.push_str("}\n");
    out
}

/// Round for FP-reassociation tolerance.
fn canon(lines: &[String]) -> Vec<Vec<String>> {
    lines
        .iter()
        .map(|l| {
            l.split_whitespace()
                .map(|t| match t.parse::<f64>() {
                    Ok(0.0) => "0".to_string(),
                    Ok(v) => {
                        let mag = v.abs().log10().floor();
                        let scale = 10f64.powf(mag - 6.0);
                        format!("{:.4e}", (v / scale).round() * scale)
                    }
                    Err(_) => t.to_string(),
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pretty_print_reaches_fixpoint(loops in gprogram()) {
        let src = render_program(&loops);
        let p1 = suif_ir::parse_program(&src)
            .unwrap_or_else(|e| panic!("generated program failed to parse: {e}\n{src}"));
        let printed = suif_ir::pretty::program_to_string(&p1);
        let p2 = suif_ir::parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to reparse: {e}\n{printed}"));
        prop_assert_eq!(printed, suif_ir::pretty::program_to_string(&p2));
    }

    #[test]
    fn parallel_execution_matches_sequential(loops in gprogram()) {
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let seq = measure_sequential(&program, vec![]).expect("sequential run");
        let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let plans = ParallelPlans::from_analysis(&pa);
        let (par, _) = measure_parallel(
            &program,
            &plans,
            RuntimeConfig {
                threads: 2,
                min_parallel_iters: 2,
                min_parallel_cost: 0,
                finalization: Finalization::Serialized,
                schedule: Default::default(),
            },
            vec![],
        )
        .expect("parallel run");
        prop_assert_eq!(
            canon(&seq.output),
            canon(&par.output),
            "divergence on:\n{}",
            src
        );
    }

    #[test]
    fn static_parallel_verdicts_are_dynamically_clean(loops in gprogram()) {
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
        // Dynamic run with no ignore sets at all: every flow dep observed.
        let mut dd = DynDepAnalyzer::new(DynDepConfig::default());
        {
            let mut m = Machine::new(&program, &mut dd).unwrap();
            m.run().unwrap();
        }
        let rep = dd.report();
        for li in &pa.ctx.tree.loops {
            let Some(v) = pa.verdicts.get(&li.stmt) else { continue };
            if !v.is_parallel() {
                continue;
            }
            // Only plain-parallel loops (no privatization, no reductions):
            // those must be dependence-free even dynamically.
            let plain = v
                .classes()
                .values()
                .all(|c| matches!(c, VarClass::Parallel));
            if !plain {
                continue;
            }
            let dyn_vars: Vec<String> = rep
                .dep_vars(li.stmt)
                .filter(|v| *v != li.var) // the induction variable itself
                .map(|v| program.var(v).name.clone())
                .collect();
            prop_assert!(
                dyn_vars.is_empty(),
                "loop {} declared plainly parallel but carries {:?} dynamically:\n{}",
                li.name,
                dyn_vars,
                src
            );
        }
    }

    #[test]
    fn parallel_execution_matches_sequential_all_configs(loops in gprogram()) {
        // Same soundness property as above, across the schedule /
        // finalization / thread-count matrix the runtime supports.
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let seq = measure_sequential(&program, vec![]).expect("sequential run");
        let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let plans = ParallelPlans::from_analysis(&pa);
        for threads in [2usize, 3] {
            for schedule in [Schedule::Block, Schedule::Cyclic] {
                for finalization in [Finalization::Serialized, Finalization::StaggeredLocks { sections: 4 }] {
                    let (par, _) = measure_parallel(
                        &program,
                        &plans,
                        RuntimeConfig {
                            threads,
                            min_parallel_iters: 2,
                            min_parallel_cost: 0,
                            finalization,
                            schedule,
                        },
                        vec![],
                    )
                    .expect("parallel run");
                    prop_assert_eq!(
                        canon(&seq.output),
                        canon(&par.output),
                        "divergence with {} threads / {:?} / {:?} on:\n{}",
                        threads,
                        schedule,
                        finalization,
                        src
                    );
                }
            }
        }
    }

    #[test]
    fn interpreter_is_deterministic(loops in gprogram()) {
        let src = render_program(&loops);
        let program = suif_ir::parse_program(&src).expect("parse");
        let mut h1 = NoHooks;
        let mut m1 = Machine::new(&program, &mut h1).unwrap();
        m1.run().unwrap();
        let mut h2 = NoHooks;
        let mut m2 = Machine::new(&program, &mut h2).unwrap();
        m2.run().unwrap();
        prop_assert_eq!(&m1.output, &m2.output);
        prop_assert_eq!(m1.ops(), m2.ops());
    }
}
