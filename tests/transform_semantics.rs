//! The liveness-enabled transformations must preserve program semantics:
//! array contraction (§5.6) and common-block splitting (§5.5) are validated
//! end-to-end through the interpreter.

use suif_analysis::{contract, split, ParallelizeConfig, Parallelizer};
use suif_benchmarks::{apps, Scale};
use suif_parallel::measure_sequential;

#[test]
fn contraction_preserves_flo88_semantics() {
    let bench = apps::flo88(Scale::Test, true);
    let program = bench.parse();
    let before = measure_sequential(&program, vec![]).unwrap();

    let mut contracted = program.clone();
    let mut applied = 0;
    loop {
        let pa = Parallelizer::analyze(&contracted, ParallelizeConfig::default());
        let cands = contract::find_candidates(&pa);
        let Some(c) = cands.first() else { break };
        contracted = contract::apply(&contracted, c).expect("contraction rewrite");
        applied += 1;
        assert!(applied < 16, "contraction loop runaway");
    }
    assert!(applied >= 2, "d and t should both contract, got {applied}");
    let after = measure_sequential(&contracted, vec![]).unwrap();
    assert_eq!(before.output, after.output);

    // The contracted program is strictly smaller in array footprint.
    let footprint = |p: &suif_ir::Program| -> i64 {
        p.vars
            .iter()
            .filter_map(|v| if v.is_array() { v.const_size() } else { None })
            .sum()
    };
    assert!(footprint(&contracted) < footprint(&program));
}

#[test]
fn splitting_preserves_hydro2d_semantics() {
    let bench = apps::hydro2d(Scale::Test);
    let program = bench.parse();
    let before = measure_sequential(&program, vec![]).unwrap();

    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let splits = split::find_splits(&pa);
    assert_eq!(
        splits.len(),
        5,
        "hydro2d's five splittable blocks (Fig 5-10)"
    );
    let split_p = split::apply_splits(&program, &splits).expect("split rewrite");
    assert!(split_p.commons.len() > program.commons.len());
    let after = measure_sequential(&split_p, vec![]).unwrap();
    assert_eq!(before.output, after.output);
}

#[test]
fn splitting_finds_arc3d_and_wave5_blocks() {
    for (bench, expected) in [(apps::arc3d(Scale::Test), 1), (apps::wave5(Scale::Test), 1)] {
        let program = bench.parse();
        let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let splits = split::find_splits(&pa);
        assert_eq!(
            splits.len(),
            expected,
            "{}: expected {expected} split(s)",
            bench.name
        );
        let split_p = split::apply_splits(&program, &splits).expect("split rewrite");
        let before = measure_sequential(&program, vec![]).unwrap();
        let after = measure_sequential(&split_p, vec![]).unwrap();
        assert_eq!(before.output, after.output, "{}", bench.name);
    }
}

#[test]
fn contracted_program_still_parallelizes() {
    let bench = apps::flo88(Scale::Test, true);
    let program = bench.parse();
    let mut contracted = program.clone();
    loop {
        let pa = Parallelizer::analyze(&contracted, ParallelizeConfig::default());
        let cands = contract::find_candidates(&pa);
        let Some(c) = cands.first() else { break };
        contracted = contract::apply(&contracted, c).unwrap();
    }
    let pa = Parallelizer::analyze(&contracted, ParallelizeConfig::default());
    let l50 = pa
        .ctx
        .tree
        .loops
        .iter()
        .find(|l| l.name == "psmoo/50")
        .expect("psmoo/50 survives the rewrite");
    assert!(
        pa.verdicts[&l50.stmt].is_parallel(),
        "{:?}",
        pa.verdicts[&l50.stmt]
    );
}
