//! Workspace integration tests: every benchmark program must run
//! sequentially, analyze, and produce identical output under the parallel
//! runtime — auto-parallelized and with the case-study assertions applied.

use suif_analysis::{Assertion, ParallelizeConfig, Parallelizer};
use suif_benchmarks::{ch4_apps, ch5_apps, ch6_apps, BenchProgram, Scale};
use suif_parallel::{
    measure_parallel, measure_sequential, Finalization, ParallelPlans, RuntimeConfig,
};

fn to_assertions(p: &BenchProgram) -> Vec<Assertion> {
    p.assertions
        .iter()
        .map(|a| {
            if a.privatize {
                Assertion::Privatizable {
                    loop_name: a.loop_name.clone(),
                    var: a.var.clone(),
                }
            } else {
                Assertion::Independent {
                    loop_name: a.loop_name.clone(),
                    var: a.var.clone(),
                }
            }
        })
        .collect()
}

fn check_program(bench: &BenchProgram, with_assertions: bool) {
    let program = bench.parse();
    let seq = measure_sequential(&program, bench.input.clone())
        .unwrap_or_else(|e| panic!("{} sequential run failed: {e}", bench.name));
    assert!(!seq.output.is_empty(), "{} produced no output", bench.name);

    let config = ParallelizeConfig {
        assertions: if with_assertions {
            to_assertions(bench)
        } else {
            vec![]
        },
        ..Default::default()
    };
    let pa = Parallelizer::analyze(&program, config);
    let plans = ParallelPlans::from_analysis(&pa);
    for finalization in [
        Finalization::Serialized,
        Finalization::StaggeredLocks { sections: 4 },
    ] {
        let (par, _stats) = measure_parallel(
            &program,
            &plans,
            RuntimeConfig {
                threads: 2,
                min_parallel_iters: 2,
                min_parallel_cost: 0,
                finalization,
                schedule: Default::default(),
            },
            bench.input.clone(),
        )
        .unwrap_or_else(|e| panic!("{} parallel run failed: {e}", bench.name));
        assert_eq!(
            close(&seq.output),
            close(&par.output),
            "{} (assertions={with_assertions}, {finalization:?}): parallel output diverged",
            bench.name
        );
    }
}

/// Parse output lines into rounded numbers: parallel reductions reassociate
/// floating-point sums, so compare to a relative tolerance by rounding.
fn close(lines: &[String]) -> Vec<Vec<String>> {
    lines
        .iter()
        .map(|l| {
            l.split_whitespace()
                .map(|tok| match tok.parse::<f64>() {
                    Ok(v) => format!("{:.6e}", round_rel(v)),
                    Err(_) => tok.to_string(),
                })
                .collect()
        })
        .collect()
}

fn round_rel(v: f64) -> f64 {
    if v == 0.0 {
        return 0.0;
    }
    let mag = v.abs().log10().floor();
    let scale = 10f64.powf(mag - 8.0);
    (v / scale).round() * scale
}

#[test]
fn ch4_apps_run_and_match() {
    for bench in ch4_apps(Scale::Test) {
        check_program(&bench, false);
        check_program(&bench, true);
    }
}

#[test]
fn ch5_apps_run_and_match() {
    for bench in ch5_apps(Scale::Test) {
        check_program(&bench, false);
    }
}

#[test]
fn ch6_apps_run_and_match() {
    for bench in ch6_apps(Scale::Test) {
        check_program(&bench, false);
    }
}

#[test]
fn case_study_loops_unlock_with_assertions() {
    // The headline case-study claims: the named loops are sequential under
    // automatic parallelization and parallel once the user's assertions are
    // applied (§4.1.4, §4.2.4).
    let expectations: Vec<(&str, Vec<&str>)> = vec![
        ("mdg", vec!["interf/1000"]),
        (
            "hydro",
            vec![
                "vsetuv/85",
                "vsetuv/105",
                "vsetuv/155",
                "vqterm/85",
                "vh2200/1000",
                "vsetgc/200",
                "update/1000",
            ],
        ),
        ("arc3d", vec!["stepf3d/701", "stepf3d/702", "stepf3d/801"]),
        (
            "flo88",
            vec![
                "psmoo/50",
                "psmoo/100",
                "psmoo/150",
                "eflux/50",
                "dflux/30",
                "dflux/70",
            ],
        ),
    ];
    for bench in ch4_apps(Scale::Test) {
        let Some((_, loops)) = expectations.iter().find(|(n, _)| *n == bench.name) else {
            continue;
        };
        let program = bench.parse();
        let auto = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let user = Parallelizer::analyze(
            &program,
            ParallelizeConfig {
                assertions: to_assertions(&bench),
                ..Default::default()
            },
        );
        for name in loops {
            let li = auto
                .ctx
                .tree
                .loops
                .iter()
                .find(|l| &l.name == name)
                .unwrap_or_else(|| panic!("{}: loop {name} missing", bench.name));
            assert!(
                !auto.verdicts[&li.stmt].is_parallel(),
                "{}: {name} should need user help, got {:?}",
                bench.name,
                auto.verdicts[&li.stmt]
            );
            assert!(
                user.verdicts[&li.stmt].is_parallel(),
                "{}: {name} should be parallel with assertions, got {:?}",
                bench.name,
                user.verdicts[&li.stmt]
            );
        }
    }
}

#[test]
fn reduction_suite_depends_on_reduction_recognition() {
    // Fig. 6-4's shape: with reduction recognition off, the key loops of the
    // reduction suite are sequential; with it on, they parallelize.
    let key_loops: Vec<(&str, &str)> = vec![
        ("bdna", "main/10"),
        ("bdna", "main/30"),
        ("cgm", "main/30"),
        ("ora", "main/10"),
        ("mdljdp2", "main/10"),
        ("dyfesm", "main/10"),
        ("trfd", "main/10"),
    ];
    for bench in ch6_apps(Scale::Test) {
        let program = bench.parse();
        let with = Parallelizer::analyze(&program, ParallelizeConfig::default());
        let without = Parallelizer::analyze(
            &program,
            ParallelizeConfig {
                enable_reduction: false,
                ..Default::default()
            },
        );
        for (pname, lname) in key_loops.iter().filter(|(p, _)| *p == bench.name) {
            let li = with
                .ctx
                .tree
                .loops
                .iter()
                .find(|l| &l.name == lname)
                .unwrap_or_else(|| panic!("{pname}: loop {lname} missing"));
            assert!(
                with.verdicts[&li.stmt].is_parallel(),
                "{pname}: {lname} should parallelize via reductions: {:?}",
                with.verdicts[&li.stmt]
            );
            assert!(
                !without.verdicts[&li.stmt].is_parallel(),
                "{pname}: {lname} should be sequential without reduction recognition"
            );
        }
    }
}
