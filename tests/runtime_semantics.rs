//! Targeted runtime-semantics tests for the SPMD executor: corners that the
//! benchmark programs do not isolate.

use suif_analysis::{Assertion, ParallelizeConfig, Parallelizer};
use suif_parallel::{
    measure_parallel, measure_sequential, Finalization, ParallelPlans, RuntimeConfig,
};

fn run_both(src: &str, assertions: Vec<Assertion>, threads: usize) -> (Vec<String>, Vec<String>) {
    let program = suif_ir::parse_program(src).unwrap();
    let seq = measure_sequential(&program, vec![]).unwrap();
    let pa = Parallelizer::analyze(
        &program,
        ParallelizeConfig {
            assertions,
            ..Default::default()
        },
    );
    let plans = ParallelPlans::from_analysis(&pa);
    let (par, _) = measure_parallel(
        &program,
        &plans,
        RuntimeConfig {
            threads,
            min_parallel_iters: 2,
            min_parallel_cost: 0,
            finalization: Finalization::Serialized,
            schedule: Default::default(),
        },
        vec![],
    )
    .unwrap();
    (seq.output, par.output)
}

#[test]
fn negative_step_parallel_loop() {
    let src = r#"program t
proc main() {
  real a[32]
  int i
  do 1 i = 32, 1, -1 {
    a[i] = float(i) * 2.0
  }
  print a[1], a[32]
}
"#;
    let (seq, par) = run_both(src, vec![], 3);
    assert_eq!(seq, par);
}

#[test]
fn strided_parallel_loop() {
    let src = r#"program t
proc main() {
  real a[33]
  int i
  real s
  do 1 i = 1, 33, 4 {
    a[i] = float(i)
  }
  s = 0
  do 2 i = 1, 33 {
    s = s + a[i]
  }
  print s
}
"#;
    let (seq, par) = run_both(src, vec![], 2);
    assert_eq!(seq, par);
}

#[test]
fn post_loop_induction_value_is_fortran_semantics() {
    let src = r#"program t
proc main() {
  real a[10]
  int i
  do 1 i = 1, 10 {
    a[i] = 1
  }
  print i
}
"#;
    let (seq, par) = run_both(src, vec![], 2);
    assert_eq!(seq, vec!["11"]);
    assert_eq!(par, vec!["11"]);
}

#[test]
fn common_block_privatization_groups_all_views() {
    // Privatizing a common object must cover every view's members at
    // consistent offsets: the callee writes through a differently-shaped
    // view of the same block.
    let src = r#"program t
proc fill(int which) {
  common /c/ real z[8]
  int j
  do 5 j = 1, 8 {
    z[j] = float(which * 10 + j)
  }
}
proc main() {
  common /c/ real a[4], real b[4]
  real out[16]
  int i
  do 1 i = 1, 16 {
    call fill(i)
    out[i] = a[2] + b[3]
  }
  print out[1], out[16]
}
"#;
    let (seq, par) = run_both(
        src,
        vec![Assertion::Privatizable {
            loop_name: "main/1".into(),
            var: "a".into(),
        }],
        2,
    );
    assert_eq!(seq, par);
}

#[test]
fn reduction_region_outside_values_survive() {
    // Reduction region is [1..8] of a 64-cell array; cells outside the
    // region must keep their pre-loop values after the parallel run.
    let src = r#"program t
proc main() {
  real acc[64], w[40]
  int i, k
  do 0 i = 1, 64 {
    acc[i] = float(i) * 100.0
  }
  do 1 i = 1, 40 {
    w[i] = float(i) * 0.5
    do 2 k = 1, 8 {
      acc[k] = acc[k] + w[i]
    }
  }
  print acc[1], acc[8], acc[9], acc[64]
}
"#;
    let (seq, par) = run_both(src, vec![], 4);
    assert_eq!(seq, par);
}

#[test]
fn interprocedural_reduction_through_two_call_levels() {
    let src = r#"program t
proc leaf(real f[*], int at, real v) {
  f[at] = f[at] + v
}
proc mid(real f[*], int el) {
  call leaf(f, mod(el * 3, 20) + 1, float(el) * 0.25)
  call leaf(f, mod(el * 7, 20) + 1, 1.0)
}
proc main() {
  real force[20]
  real chk
  int el, i
  do 1 el = 1, 60 {
    call mid(force, el)
  }
  chk = 0
  do 2 i = 1, 20 {
    chk = chk + force[i] * force[i]
  }
  print chk
}
"#;
    let program = suif_ir::parse_program(src).unwrap();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let l1 = pa
        .ctx
        .tree
        .loops
        .iter()
        .find(|l| l.name == "main/1")
        .unwrap();
    assert!(
        pa.verdicts[&l1.stmt].is_parallel(),
        "two-level interprocedural reduction: {:?}",
        pa.verdicts[&l1.stmt]
    );
    let (seq, par) = run_both(src, vec![], 3);
    // FP reassociation tolerance: compare rounded.
    let r = |v: &Vec<String>| -> f64 { v[0].parse().unwrap() };
    assert!((r(&seq) - r(&par)).abs() < 1e-6 * r(&seq).abs().max(1.0));
}

#[test]
fn zero_trip_parallel_loop() {
    let src = r#"program t
proc main() {
  real a[8]
  int i, n
  n = 0
  a[1] = 7
  do 1 i = 1, n {
    a[i] = 0
  }
  print a[1], i
}
"#;
    let (seq, par) = run_both(src, vec![], 2);
    assert_eq!(seq, par);
    assert_eq!(seq, vec!["7 1"]);
}

#[test]
fn worker_errors_propagate() {
    // Out-of-bounds inside a parallel loop must surface as an error, not a
    // hang or silent corruption.  idx is read from input so the analysis
    // cannot fold it.
    let src = r#"program t
proc main() {
  real a[8], b[8]
  int i, idx
  read idx
  do 1 i = 1, 8 {
    b[i] = a[i * idx]
  }
  print b[1]
}
"#;
    let program = suif_ir::parse_program(src).unwrap();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);
    let res = measure_parallel(
        &program,
        &plans,
        RuntimeConfig {
            threads: 2,
            min_parallel_iters: 2,
            min_parallel_cost: 0,
            finalization: Finalization::Serialized,
            schedule: Default::default(),
        },
        vec![3.0],
    );
    assert!(res.is_err(), "expected out-of-bounds error");
}

#[test]
fn cyclic_schedule_matches_block_and_balances_triangles() {
    use suif_parallel::{parallel_ops, Schedule};
    // A triangular workload: iteration i does O(i) work.
    let src = r#"program t
proc main() {
  real acc[64]
  int i, j
  do 1 i = 1, 64 {
    do 2 j = 1, i {
      acc[i] = acc[i] + float(j) * 0.5
    }
  }
  print acc[1], acc[64]
}
"#;
    let program = suif_ir::parse_program(src).unwrap();
    let seq = measure_sequential(&program, vec![]).unwrap();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa);
    let mut costs = Vec::new();
    for schedule in [Schedule::Block, Schedule::Cyclic] {
        let cfg = RuntimeConfig {
            threads: 2,
            min_parallel_iters: 2,
            min_parallel_cost: 0,
            finalization: Finalization::Serialized,
            schedule,
        };
        let (par, _) = measure_parallel(&program, &plans, cfg.clone(), vec![]).unwrap();
        assert_eq!(seq.output, par.output, "{schedule:?}");
        costs.push(parallel_ops(&program, &plans, &cfg, &[]).unwrap());
    }
    // Cyclic balances the triangle: its simulated critical path is shorter.
    assert!(
        costs[1] < costs[0],
        "cyclic ({}) should beat block ({}) on a triangular loop",
        costs[1],
        costs[0]
    );
}

#[test]
fn reduction_cell_plus_output_dep_cell_stays_sequential() {
    // Regression pinned from the random-program fuzzer: a[1] is a valid sum
    // reduction but a[7] is plainly must-written by every iteration — an
    // output dependence the reduction runtime cannot repair.  The loop must
    // not be parallelized as "reduction on a", and parallel output must
    // match sequential regardless.
    let src = "program fuzz
const n = 12
proc main() {
  real a0[n], a1[n], a2[n]
  real s0, s1, s2
  int i, j1, j2, j3
  do 1 i = 1, n {
    a0[i] = sin(float(i) * 0.7)
    a1[i] = cos(float(i) * 0.3)
    a2[i] = float(i) * 0.1
  }
  do 100 j1 = 1, 12 {
    do 1002 j2 = 1, 12 {
      a2[1] = a2[1] + 0.000
      a2[7] = 0.000
    }
  }
  do 101 j3 = 1, 12 {
    if abs(a0[j3]) >= 0.0 {
      s1 = (s0 + 0.000)
    }
    s0 = (a2[mod(j3 * 6, 12) + 1] * 1.401)
  }
  print s0, s1, s2, a0[1], a1[5], a2[11]
}
";
    let program = suif_ir::parse_program(src).unwrap();
    let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
    for li in &pa.ctx.tree.loops {
        if li.name == "main/100" || li.name == "main/1002" {
            let v = pa.verdicts.get(&li.stmt).unwrap();
            assert!(
                !v.is_parallel(),
                "{} must stay sequential (output dep on a2[7])",
                li.name
            );
        }
    }
    let (seq, par) = run_both(src, vec![], 2);
    assert_eq!(seq, par);
}
