//! Chapter 6 walkthrough: sparse/indirect array reductions — the
//! `HISTOGRAM(A(I)) += 1` pattern of §6.1.3 — recognized statically,
//! executed with both finalization strategies of §6.3, and ablated.
//!
//! ```text
//! cargo run --release --example reduction_histogram
//! ```

use suif_analysis::{ParallelizeConfig, Parallelizer};
use suif_parallel::{
    measure_parallel, measure_sequential, Finalization, ParallelPlans, RuntimeConfig,
};

const SRC: &str = r#"program histogram
const n = 30000
const bins = 64
proc main() {
  real h[bins]
  int a[n]
  int i
  real chk
  do 5 i = 1, n {
    a[i] = mod(i * 2654435, bins) + 1
  }
  do 10 i = 1, n {
    h[a[i]] = h[a[i]] + 1
  }
  chk = 0
  do 20 i = 1, bins {
    chk = chk + h[i] * h[i]
  }
  print chk
}
"#;

fn main() {
    let program = suif_ir::parse_program(SRC).expect("parse");

    // With reduction recognition: the indirect updates form a whole-array
    // reduction region despite the unknown subscripts.
    let with = Parallelizer::analyze(&program, ParallelizeConfig::default());
    let without = Parallelizer::analyze(
        &program,
        ParallelizeConfig {
            enable_reduction: false,
            ..Default::default()
        },
    );
    for (label, pa) in [("with reductions", &with), ("without", &without)] {
        let hist_loop = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/10")
            .unwrap();
        println!(
            "{label:<18}: main/10 is {}",
            if pa.verdicts[&hist_loop.stmt].is_parallel() {
                "PARALLEL (reduction)"
            } else {
                "sequential"
            }
        );
    }

    let plans = ParallelPlans::from_analysis(&with);
    let seq = measure_sequential(&program, vec![]).unwrap();
    println!("\nsequential: {:?}  output {:?}", seq.elapsed, seq.output);
    for finalization in [
        Finalization::Serialized,
        Finalization::StaggeredLocks { sections: 8 },
    ] {
        let (par, stats) = measure_parallel(
            &program,
            &plans,
            RuntimeConfig {
                threads: 2,
                min_parallel_iters: 4,
                min_parallel_cost: 2048,
                finalization,
                schedule: Default::default(),
            },
            vec![],
        )
        .unwrap();
        assert_eq!(seq.output, par.output, "reduction result must agree");
        println!(
            "{finalization:?}: {:?} (speedup {:.2}), parallel loops run: {}",
            par.elapsed,
            seq.elapsed.as_secs_f64() / par.elapsed.as_secs_f64(),
            stats.parallel_invocations.values().sum::<u64>()
        );
    }
}
