//! Quickstart: compile a MiniF program, auto-parallelize it, execute it on
//! the SPMD runtime, and compare against the sequential run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use suif_analysis::{ParallelizeConfig, Parallelizer};
use suif_parallel::{measure_parallel, measure_sequential, ParallelPlans, RuntimeConfig};

const SRC: &str = r#"program quickstart
const n = 400
proc main() {
  real a[n], b[n]
  real total
  int i
  do 10 i = 1, n {
    a[i] = sin(float(i) * 0.01) + 1.0
  }
  do 20 i = 1, n {
    b[i] = a[i] * a[i] + 0.5
  }
  total = 0
  do 30 i = 1, n {
    total = total + b[i]
  }
  print total
}
"#;

fn main() {
    // 1. Parse (front end: lexer, parser, semantic analysis).
    let program = suif_ir::parse_program(SRC).expect("parse");

    // 2. Run the interprocedural parallelizer.
    let analysis = Parallelizer::analyze(&program, ParallelizeConfig::default());
    println!("loop verdicts:");
    for li in &analysis.ctx.tree.loops {
        let v = &analysis.verdicts[&li.stmt];
        println!(
            "  {:<12} {}",
            li.name,
            if v.is_parallel() {
                "PARALLEL"
            } else {
                "sequential"
            }
        );
        for (obj, class) in v.classes() {
            println!("      {:<8} {:?}", analysis.ctx.array_name(*obj), class);
        }
    }

    // 3. Execute sequentially and in parallel; outputs must agree.
    let plans = ParallelPlans::from_analysis(&analysis);
    let seq = measure_sequential(&program, vec![]).expect("sequential run");
    let (par, stats) = measure_parallel(
        &program,
        &plans,
        RuntimeConfig {
            threads: 2,
            ..Default::default()
        },
        vec![],
    )
    .expect("parallel run");
    println!("\nsequential output: {:?}", seq.output);
    println!("parallel   output: {:?}", par.output);
    println!(
        "parallel loop invocations: {}",
        stats.parallel_invocations.values().sum::<u64>()
    );
    println!("sequential {:?} vs parallel {:?}", seq.elapsed, par.elapsed);
}
