//! The §4.1 case study as an interactive session: the Explorer guides a user
//! through parallelizing the `mdg` kernel — guru target list, codeview,
//! slices for the blocking dependence, a checked assertion, and the
//! resulting speedup.
//!
//! ```text
//! cargo run --release --example explorer_session
//! ```

use suif_analysis::Assertion;
use suif_benchmarks::{apps, Scale};
use suif_explorer::Explorer;
use suif_parallel::{measure_parallel, measure_sequential, ParallelPlans, RuntimeConfig};

fn main() {
    let bench = apps::mdg(Scale::Test);
    let program = bench.parse();

    // Step 1 (§2.3.1): compile, auto-parallelize, profile, dynamic deps.
    let mut ex = Explorer::new(&program, bench.input.clone()).expect("explorer");
    let guru = ex.guru();
    println!("== Parallelization Guru ==\n{}", guru.render());

    // Step 2: the codeview (Fig. 4-2).
    println!("{}", suif_explorer::codeview(&ex, &guru));

    // Step 3: examine the top target's blocking dependence via slices
    // (Fig. 4-3).
    let target = guru.targets.first().expect("a target").clone();
    println!("top target: {}\n", target.name);
    let slices = ex.slices_for_dep(target.stmt, 0);
    let mut lines = std::collections::BTreeSet::new();
    let mut terms = std::collections::BTreeSet::new();
    for (_, prog, ctrl) in &slices {
        lines.extend(prog.lines.iter().copied());
        lines.extend(ctrl.lines.iter().copied());
        for s in prog.terminals.iter().chain(ctrl.terminals.iter()) {
            if let Some((stmt, _)) = program.find_stmt(*s) {
                terms.insert(stmt.line());
            }
        }
    }
    let li = ex
        .analysis
        .ctx
        .tree
        .loops
        .iter()
        .find(|l| l.stmt == target.stmt)
        .unwrap()
        .clone();
    println!(
        "slice of the dependence (S = in slice, ? = pruned):\n{}",
        suif_explorer::source_view(&ex, li.line, li.end_line, &lines, &terms)
    );

    // Step 4: the user concludes rl is privatizable; the checker validates
    // against the dynamic run, then the compiler re-parallelizes (§4.1.4).
    let res = ex.assert_and_reanalyze(Assertion::Privatizable {
        loop_name: li.name.clone(),
        var: "rl".into(),
    });
    println!("assertion check: {res:?}");
    let guru2 = ex.guru();
    println!(
        "coverage: {:.0}% -> {:.0}%",
        guru.coverage * 100.0,
        guru2.coverage * 100.0
    );

    // Step 5: run the re-parallelized program.
    let bench_big = apps::mdg(Scale::Bench);
    let big = bench_big.parse();
    let pa = suif_analysis::Parallelizer::analyze(
        &big,
        suif_analysis::ParallelizeConfig {
            assertions: ex.assertions.clone(),
            ..Default::default()
        },
    );
    let plans = ParallelPlans::from_analysis(&pa);
    let seq = measure_sequential(&big, vec![]).unwrap();
    let (par, _) = measure_parallel(
        &big,
        &plans,
        RuntimeConfig {
            threads: 2,
            ..Default::default()
        },
        vec![],
    )
    .unwrap();
    println!(
        "mdg (bench size): sequential {:?}, parallel(2) {:?}  speedup {:.2}",
        seq.elapsed,
        par.elapsed,
        seq.elapsed.as_secs_f64() / par.elapsed.as_secs_f64()
    );
    assert_eq!(seq.output.len(), par.output.len());
}
