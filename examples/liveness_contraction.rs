//! Chapter 5 walkthrough: array liveness and its applications on the flo88
//! kernel — dead-at-exit detection across the three algorithm variants,
//! liveness-enabled privatization, and array contraction (Fig. 5-11).
//!
//! ```text
//! cargo run --release --example liveness_contraction
//! ```

use suif_analysis::liveness::{analyze_liveness, bottom_up};
use suif_analysis::{contract, AnalysisCtx, ArrayDataFlow, LivenessMode};
use suif_benchmarks::{apps, Scale};
use suif_parallel::{measure_parallel, measure_sequential, ParallelPlans, RuntimeConfig};

fn main() {
    let bench = apps::flo88(Scale::Test, true);
    let program = bench.parse();
    let ctx = AnalysisCtx::new(&program);
    let df = ArrayDataFlow::analyze(&ctx);
    let saved = bottom_up(&ctx, &df);

    println!("== dead-at-loop-exit arrays per liveness variant ==");
    for (label, mode) in [
        ("flow-insensitive", LivenessMode::FlowInsensitive),
        ("1-bit", LivenessMode::OneBit),
        ("full", LivenessMode::Full),
    ] {
        let res = analyze_liveness(&ctx, &df, &saved, mode);
        let mut dead = 0;
        let mut total = 0;
        for l in &ctx.tree.loops {
            for id in res.written.get(&l.stmt).cloned().unwrap_or_default() {
                if !ctx.is_array_object(id) {
                    continue;
                }
                total += 1;
                if res.is_dead_after(l.stmt, id) {
                    dead += 1;
                }
            }
        }
        println!(
            "  {label:<18} {dead}/{total} written arrays dead at exit ({:.1} ms)",
            res.elapsed.as_secs_f64() * 1e3
        );
    }

    // Contraction (§5.6): requires exposure-free, dependence-free,
    // dead-at-exit temporaries — all three facts come from the analyses.
    let pa =
        suif_analysis::Parallelizer::analyze(&program, suif_analysis::ParallelizeConfig::default());
    let cands = contract::find_candidates(&pa);
    println!("\n== contraction candidates ==");
    for c in &cands {
        println!(
            "  {} : drop dimension {} against {}",
            program.var(c.var).name,
            c.dim + 1,
            pa.ctx
                .tree
                .loop_of(c.loop_stmt)
                .map(|l| l.name.clone())
                .unwrap_or_default()
        );
    }
    let mut contracted = program.clone();
    loop {
        let pa_c = suif_analysis::Parallelizer::analyze(
            &contracted,
            suif_analysis::ParallelizeConfig::default(),
        );
        let cands = contract::find_candidates(&pa_c);
        let Some(c) = cands.first() else { break };
        contracted = contract::apply(&contracted, c).expect("contraction rewrite");
    }
    if let Some(psmoo) = contracted.proc_by_name("psmoo") {
        println!(
            "\n== psmoo after contraction (Fig. 5-11(c)) ==\n{}",
            suif_ir::pretty::proc_to_string(&contracted, psmoo)
        );
    }

    // Both versions compute the same answer; the contracted one uses a
    // smaller footprint.
    let seq1 = measure_sequential(&program, vec![]).unwrap();
    let seq2 = measure_sequential(&contracted, vec![]).unwrap();
    assert_eq!(seq1.output, seq2.output, "contraction preserves semantics");
    println!("outputs agree: {:?}", seq1.output);

    let big = apps::flo88(Scale::Bench, true);
    let big_p = big.parse();
    let pa_big =
        suif_analysis::Parallelizer::analyze(&big_p, suif_analysis::ParallelizeConfig::default());
    let plans = ParallelPlans::from_analysis(&pa_big);
    let seq = measure_sequential(&big_p, vec![]).unwrap();
    let (par, _) = measure_parallel(
        &big_p,
        &plans,
        RuntimeConfig {
            threads: 2,
            ..Default::default()
        },
        vec![],
    )
    .unwrap();
    println!(
        "flo88 (bench size): speedup at 2 threads = {:.2}",
        seq.elapsed.as_secs_f64() / par.elapsed.as_secs_f64()
    );
}
