//! Interprocedural SSA construction (§3.4).

use std::collections::{HashMap, HashSet};
use suif_ir::{Arg, CommonId, Expr, ProcId, Program, Ref, Stmt, StmtId, VarId, VarKind};

/// A slicing variable: the alias-equivalence-class representative (§3.4.1):
/// all members of one common block collapse into one variable; everything
/// else stands alone.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SliceVar {
    /// A whole common block.
    Common(CommonId),
    /// A local or parameter.
    Var(VarId),
}

impl SliceVar {
    /// Classify a program variable.
    pub fn of(program: &Program, v: VarId) -> SliceVar {
        match program.var(v).kind {
            VarKind::Common { block, .. } => SliceVar::Common(block),
            _ => SliceVar::Var(v),
        }
    }
}

/// An SSA value id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ValueId(pub u32);

/// An SSA definition.
#[derive(Clone, Debug)]
pub enum Def {
    /// Value of a variable at procedure entry (parameter-in node, §3.4.3).
    /// For formals it joins the actuals of every caller; for common blocks
    /// it joins the callers' block values; for locals it is undefined input.
    Param {
        /// The procedure.
        proc: ProcId,
        /// The variable.
        var: SliceVar,
    },
    /// A definition made by a statement; `ops` are the values used.
    /// `weak` marks array-element stores (the old value is among `ops`).
    Stmt {
        /// The defining statement.
        stmt: StmtId,
        /// Used values.
        ops: Vec<ValueId>,
        /// Weak (array) update?
        weak: bool,
    },
    /// A φ join (no source statement of its own).
    Phi {
        /// Joined values (patched in place for loop headers).
        ops: Vec<ValueId>,
    },
    /// Value of a variable after a call: the callee's exit value of the
    /// corresponding callee-side variable (the §3.4.3 return edge).
    CallReturn {
        /// The call statement.
        call: StmtId,
        /// The callee.
        callee: ProcId,
        /// The callee-side variable whose exit value flows back.
        callee_var: SliceVar,
    },
}

/// Per-procedure transitive effect sets used to wire call edges.
#[derive(Clone, Debug, Default)]
pub struct ProcEffects {
    /// Common blocks read or written (transitively).
    pub used_commons: HashSet<CommonId>,
    /// Common blocks written (transitively).
    pub mod_commons: HashSet<CommonId>,
    /// Formal parameters written (index-aligned with the procedure params —
    /// from `Procedure::modified_params`).
    pub modified_params: Vec<bool>,
}

/// The interprocedural SSA graph.
pub struct Issa {
    /// All values.
    pub defs: Vec<Def>,
    /// Owning procedure of each value.
    pub owner: Vec<ProcId>,
    /// Per statement: the reaching value of every variable it *reads*.
    pub use_map: HashMap<(StmtId, SliceVar), ValueId>,
    /// Per statement: its governing control parent
    /// `(structure stmt, condition/bound values)`, if any.
    pub control_parent: HashMap<StmtId, (StmtId, Vec<ValueId>)>,
    /// Parameter-in values per `(proc, var)`.
    pub params: HashMap<(ProcId, SliceVar), ValueId>,
    /// The value bound to `(call statement, callee-side var)` on entry.
    pub bindings: HashMap<(StmtId, SliceVar), ValueId>,
    /// Exit value of every variable a procedure may define.
    pub exit_values: HashMap<(ProcId, SliceVar), ValueId>,
    /// Per-procedure effects.
    pub effects: HashMap<ProcId, ProcEffects>,
    /// Source line of each defining statement (for display).
    pub stmt_lines: HashMap<StmtId, u32>,
}

impl Issa {
    /// Build the ISSA graph for a whole program.
    pub fn build(program: &Program) -> Issa {
        let effects = compute_effects(program);
        let mut b = Builder {
            program,
            issa: Issa {
                defs: Vec::new(),
                owner: Vec::new(),
                use_map: HashMap::new(),
                control_parent: HashMap::new(),
                params: HashMap::new(),
                bindings: HashMap::new(),
                exit_values: HashMap::new(),
                effects,
                stmt_lines: HashMap::new(),
            },
            cur_proc: program.main,
            ctrl: Vec::new(),
        };
        // Build callees before callers so exit values exist for CallReturn
        // wiring (the call graph is acyclic).
        let cg = suif_ir::CallGraph::build(program);
        for &p in cg.bottom_up() {
            b.build_proc(p);
        }
        b.issa
    }

    /// The definition of a value.
    pub fn def(&self, v: ValueId) -> &Def {
        &self.defs[v.0 as usize]
    }

    /// Owning procedure of a value.
    pub fn owner_of(&self, v: ValueId) -> ProcId {
        self.owner[v.0 as usize]
    }

    /// Iterate the chain of governing control structures of a statement,
    /// innermost first: `(structure stmt, condition values)`.
    pub fn control_chain(&self, stmt: StmtId) -> Vec<(StmtId, Vec<ValueId>)> {
        let mut out = Vec::new();
        let mut cur = stmt;
        while let Some((parent, vals)) = self.control_parent.get(&cur) {
            out.push((*parent, vals.clone()));
            cur = *parent;
        }
        out
    }
}

/// Transitive per-procedure effects (simple syntactic fixed point).
fn compute_effects(program: &Program) -> HashMap<ProcId, ProcEffects> {
    let mut out: HashMap<ProcId, ProcEffects> = program
        .procedures
        .iter()
        .map(|p| {
            (
                p.id,
                ProcEffects {
                    modified_params: p.modified_params.clone(),
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for proc in &program.procedures {
            let mut used = out[&proc.id].used_commons.clone();
            let mut modc = out[&proc.id].mod_commons.clone();
            let mut visit_var = |v: VarId,
                                 write: bool,
                                 used: &mut HashSet<CommonId>,
                                 modc: &mut HashSet<CommonId>| {
                if let VarKind::Common { block, .. } = program.var(v).kind {
                    used.insert(block);
                    if write {
                        modc.insert(block);
                    }
                }
            };
            #[allow(clippy::type_complexity)]
            fn walk(
                body: &[Stmt],
                out: &HashMap<ProcId, ProcEffects>,
                visit: &mut dyn FnMut(VarId, bool, &mut HashSet<CommonId>, &mut HashSet<CommonId>),
                used: &mut HashSet<CommonId>,
                modc: &mut HashSet<CommonId>,
            ) {
                let visit_expr = |e: &Expr,
                                  used: &mut HashSet<CommonId>,
                                  modc: &mut HashSet<CommonId>,
                                  visit: &mut dyn FnMut(
                    VarId,
                    bool,
                    &mut HashSet<CommonId>,
                    &mut HashSet<CommonId>,
                )| {
                    e.visit_scalar_reads(&mut |v| visit(v, false, used, modc));
                    e.visit_element_reads(&mut |v, _| visit(v, false, used, modc));
                };
                for s in body {
                    match s {
                        Stmt::Assign { lhs, rhs, .. } => {
                            visit_expr(rhs, used, modc, visit);
                            if let Ref::Element(_, subs) = lhs {
                                for e in subs {
                                    visit_expr(e, used, modc, visit);
                                }
                            }
                            visit(lhs.var(), true, used, modc);
                        }
                        Stmt::Read { lhs, .. } => visit(lhs.var(), true, used, modc),
                        Stmt::Print { args, .. } => {
                            for a in args {
                                visit_expr(a, used, modc, visit);
                            }
                        }
                        Stmt::If {
                            cond,
                            then_body,
                            else_body,
                            ..
                        } => {
                            visit_expr(cond, used, modc, visit);
                            walk(then_body, out, visit, used, modc);
                            walk(else_body, out, visit, used, modc);
                        }
                        Stmt::Do {
                            lo, hi, step, body, ..
                        } => {
                            visit_expr(lo, used, modc, visit);
                            visit_expr(hi, used, modc, visit);
                            if let Some(st) = step {
                                visit_expr(st, used, modc, visit);
                            }
                            walk(body, out, visit, used, modc);
                        }
                        Stmt::Call { callee, args, .. } => {
                            if let Some(eff) = out.get(callee) {
                                used.extend(eff.used_commons.iter().copied());
                                modc.extend(eff.mod_commons.iter().copied());
                                for (k, a) in args.iter().enumerate() {
                                    let w = eff.modified_params.get(k).copied().unwrap_or(false);
                                    match a {
                                        Arg::ScalarVar(v)
                                        | Arg::ArrayWhole(v)
                                        | Arg::ArrayPart { var: v, .. } => {
                                            visit(*v, w, used, modc);
                                        }
                                        Arg::Value(e) => visit_expr(e, used, modc, visit),
                                    }
                                }
                            }
                        }
                    }
                }
            }
            walk(&proc.body, &out, &mut visit_var, &mut used, &mut modc);
            let e = out.get_mut(&proc.id).unwrap();
            if used != e.used_commons || modc != e.mod_commons {
                e.used_commons = used;
                e.mod_commons = modc;
                changed = true;
            }
        }
    }
    out
}

struct Builder<'p> {
    program: &'p Program,
    issa: Issa,
    cur_proc: ProcId,
    /// Stack of governing structures: `(stmt, condition values)`.
    ctrl: Vec<(StmtId, Vec<ValueId>)>,
}

type Env = HashMap<SliceVar, ValueId>;

impl<'p> Builder<'p> {
    fn alloc(&mut self, d: Def) -> ValueId {
        let id = ValueId(self.issa.defs.len() as u32);
        self.issa.defs.push(d);
        self.issa.owner.push(self.cur_proc);
        id
    }

    fn param_value(&mut self, var: SliceVar) -> ValueId {
        let key = (self.cur_proc, var);
        if let Some(&v) = self.issa.params.get(&key) {
            return v;
        }
        let v = self.alloc(Def::Param {
            proc: self.cur_proc,
            var,
        });
        self.issa.params.insert(key, v);
        v
    }

    fn build_proc(&mut self, p: ProcId) {
        self.cur_proc = p;
        self.ctrl.clear();
        let proc = self.program.proc(p).clone();
        let mut env: Env = HashMap::new();
        // Every variable starts at its parameter-in / entry value.
        for v in proc.all_vars() {
            let sv = SliceVar::of(self.program, v);
            env.entry(sv).or_insert_with(|| self.param_value(sv));
        }
        self.build_body(&proc.body, &mut env);
        for (sv, val) in env {
            self.issa.exit_values.insert((p, sv), val);
        }
    }

    /// Values used by an expression (recording them in the use map of
    /// `stmt`).
    fn expr_uses(&mut self, e: &Expr, env: &Env, stmt: StmtId, out: &mut Vec<ValueId>) {
        e.visit_scalar_reads(&mut |v| {
            let sv = SliceVar::of(self.program, v);
            if let Some(&val) = env.get(&sv) {
                out.push(val);
                self.issa.use_map.insert((stmt, sv), val);
            }
        });
        e.visit_element_reads(&mut |v, _| {
            let sv = SliceVar::of(self.program, v);
            if let Some(&val) = env.get(&sv) {
                out.push(val);
                self.issa.use_map.insert((stmt, sv), val);
            }
        });
    }

    fn record_ctrl(&mut self, stmt: StmtId) {
        if let Some((parent, vals)) = self.ctrl.last() {
            self.issa
                .control_parent
                .insert(stmt, (*parent, vals.clone()));
        }
    }

    fn build_body(&mut self, body: &[Stmt], env: &mut Env) {
        for s in body {
            self.issa.stmt_lines.insert(s.id(), s.line());
            self.record_ctrl(s.id());
            match s {
                Stmt::Assign { id, lhs, rhs, .. } => {
                    let mut ops = Vec::new();
                    self.expr_uses(rhs, env, *id, &mut ops);
                    let sv = SliceVar::of(self.program, lhs.var());
                    let weak = match lhs {
                        Ref::Scalar(_) => {
                            // A direct scalar store to a common block is a
                            // weak update of the block alias variable unless
                            // it is the only member (§3.4.1 strong-update
                            // subclassing is approximated conservatively).
                            matches!(sv, SliceVar::Common(_))
                        }
                        Ref::Element(_, subs) => {
                            for e in subs {
                                self.expr_uses(e, env, *id, &mut ops);
                            }
                            true
                        }
                    };
                    if weak {
                        if let Some(&old) = env.get(&sv) {
                            ops.push(old);
                            self.issa.use_map.entry((*id, sv)).or_insert(old);
                        }
                    }
                    let val = self.alloc(Def::Stmt {
                        stmt: *id,
                        ops,
                        weak,
                    });
                    env.insert(sv, val);
                }
                Stmt::Read { id, lhs, .. } => {
                    let sv = SliceVar::of(self.program, lhs.var());
                    let mut ops = Vec::new();
                    if let Ref::Element(_, subs) = lhs {
                        for e in subs {
                            self.expr_uses(e, env, *id, &mut ops);
                        }
                        if let Some(&old) = env.get(&sv) {
                            ops.push(old);
                        }
                    }
                    let val = self.alloc(Def::Stmt {
                        stmt: *id,
                        ops,
                        weak: matches!(lhs, Ref::Element(..)),
                    });
                    env.insert(sv, val);
                }
                Stmt::Print { id, args, .. } => {
                    let mut ops = Vec::new();
                    for a in args {
                        self.expr_uses(a, env, *id, &mut ops);
                    }
                    // Prints define nothing.
                }
                Stmt::If {
                    id,
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let mut cvals = Vec::new();
                    self.expr_uses(cond, env, *id, &mut cvals);
                    let mut env_then = env.clone();
                    let mut env_else = env.clone();
                    self.ctrl.push((*id, cvals));
                    self.build_body(then_body, &mut env_then);
                    self.build_body(else_body, &mut env_else);
                    self.ctrl.pop();
                    // Join.
                    let keys: HashSet<SliceVar> =
                        env_then.keys().chain(env_else.keys()).copied().collect();
                    for sv in keys {
                        let a = env_then.get(&sv).copied();
                        let b = env_else.get(&sv).copied();
                        match (a, b) {
                            (Some(x), Some(y)) if x == y => {
                                env.insert(sv, x);
                            }
                            (Some(x), Some(y)) => {
                                let phi = self.alloc(Def::Phi { ops: vec![x, y] });
                                env.insert(sv, phi);
                            }
                            (Some(x), None) | (None, Some(x)) => {
                                env.insert(sv, x);
                            }
                            (None, None) => {}
                        }
                    }
                }
                Stmt::Do {
                    id,
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    ..
                } => {
                    let mut bvals = Vec::new();
                    self.expr_uses(lo, env, *id, &mut bvals);
                    self.expr_uses(hi, env, *id, &mut bvals);
                    if let Some(st) = step {
                        self.expr_uses(st, env, *id, &mut bvals);
                    }
                    // Loop-header φ for everything the body may modify.
                    let modified = self.body_defs(body);
                    let mut phis: Vec<(SliceVar, ValueId)> = Vec::new();
                    for sv in &modified {
                        let entry = match env.get(sv) {
                            Some(&v) => v,
                            None => self.param_value(*sv),
                        };
                        let phi = self.alloc(Def::Phi { ops: vec![entry] });
                        env.insert(*sv, phi);
                        phis.push((*sv, phi));
                    }
                    // Induction variable defined by the DO itself.
                    let ivar = SliceVar::of(self.program, *var);
                    let idef = self.alloc(Def::Stmt {
                        stmt: *id,
                        ops: bvals.clone(),
                        weak: false,
                    });
                    env.insert(ivar, idef);

                    self.ctrl.push((*id, bvals));
                    self.build_body(body, env);
                    self.ctrl.pop();

                    // Patch back-edges and restore φ as the post-loop value.
                    for (sv, phi) in phis {
                        let back = env.get(&sv).copied();
                        if let Some(back) = back {
                            if back != phi {
                                if let Def::Phi { ops } = &mut self.issa.defs[phi.0 as usize] {
                                    ops.push(back);
                                }
                            }
                        }
                        env.insert(sv, phi);
                    }
                    // Post-loop induction value still depends on bounds.
                    env.insert(ivar, idef);
                }
                Stmt::Call {
                    id, callee, args, ..
                } => {
                    let cproc = self.program.proc(*callee).clone();
                    let eff = self.issa.effects[callee].clone();
                    // Bind formals.
                    for (k, &formal) in cproc.params.iter().enumerate() {
                        let fsv = SliceVar::Var(formal);
                        let bound = match &args[k] {
                            Arg::ScalarVar(v) | Arg::ArrayWhole(v) => {
                                let sv = SliceVar::of(self.program, *v);
                                let val = match env.get(&sv) {
                                    Some(&v) => v,
                                    None => self.param_value(sv),
                                };
                                self.issa.use_map.insert((*id, sv), val);
                                val
                            }
                            Arg::ArrayPart { var, base } => {
                                let sv = SliceVar::of(self.program, *var);
                                let mut ops = Vec::new();
                                for e in base {
                                    self.expr_uses(e, env, *id, &mut ops);
                                }
                                let val = match env.get(&sv) {
                                    Some(&v) => v,
                                    None => self.param_value(sv),
                                };
                                self.issa.use_map.insert((*id, sv), val);
                                ops.push(val);
                                self.alloc(Def::Stmt {
                                    stmt: *id,
                                    ops,
                                    weak: false,
                                })
                            }
                            Arg::Value(e) => {
                                let mut ops = Vec::new();
                                self.expr_uses(e, env, *id, &mut ops);
                                self.alloc(Def::Stmt {
                                    stmt: *id,
                                    ops,
                                    weak: false,
                                })
                            }
                        };
                        self.issa.bindings.insert((*id, fsv), bound);
                    }
                    // Bind used common blocks.
                    for &blk in &eff.used_commons {
                        let sv = SliceVar::Common(blk);
                        let val = match env.get(&sv) {
                            Some(&v) => v,
                            None => self.param_value(sv),
                        };
                        self.issa.use_map.insert((*id, sv), val);
                        self.issa.bindings.insert((*id, sv), val);
                    }
                    // Return edges for everything the callee may modify.
                    for (k, &formal) in cproc.params.iter().enumerate() {
                        if !eff.modified_params.get(k).copied().unwrap_or(false) {
                            continue;
                        }
                        let target = match &args[k] {
                            Arg::ScalarVar(v)
                            | Arg::ArrayWhole(v)
                            | Arg::ArrayPart { var: v, .. } => SliceVar::of(self.program, *v),
                            Arg::Value(_) => continue,
                        };
                        let ret = self.alloc(Def::CallReturn {
                            call: *id,
                            callee: *callee,
                            callee_var: SliceVar::Var(formal),
                        });
                        env.insert(target, ret);
                    }
                    for &blk in &eff.mod_commons {
                        let sv = SliceVar::Common(blk);
                        let ret = self.alloc(Def::CallReturn {
                            call: *id,
                            callee: *callee,
                            callee_var: sv,
                        });
                        env.insert(sv, ret);
                    }
                }
            }
        }
    }

    /// Variables (alias classes) a body may define, including call effects.
    fn body_defs(&self, body: &[Stmt]) -> Vec<SliceVar> {
        let mut out: HashSet<SliceVar> = HashSet::new();
        fn walk(b: &Builder<'_>, body: &[Stmt], out: &mut HashSet<SliceVar>) {
            for s in body {
                match s {
                    Stmt::Assign { lhs, .. } | Stmt::Read { lhs, .. } => {
                        out.insert(SliceVar::of(b.program, lhs.var()));
                    }
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(b, then_body, out);
                        walk(b, else_body, out);
                    }
                    Stmt::Do { var, body, .. } => {
                        out.insert(SliceVar::of(b.program, *var));
                        walk(b, body, out);
                    }
                    Stmt::Call { callee, args, .. } => {
                        let eff = &b.issa.effects[callee];
                        for &blk in &eff.mod_commons {
                            out.insert(SliceVar::Common(blk));
                        }
                        for (k, a) in args.iter().enumerate() {
                            if eff.modified_params.get(k).copied().unwrap_or(false) {
                                match a {
                                    Arg::ScalarVar(v)
                                    | Arg::ArrayWhole(v)
                                    | Arg::ArrayPart { var: v, .. } => {
                                        out.insert(SliceVar::of(b.program, *v));
                                    }
                                    Arg::Value(_) => {}
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        walk(self, body, &mut out);
        let mut v: Vec<SliceVar> = out.into_iter().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    #[test]
    fn builds_defs_and_phis() {
        let p = parse_program(
            "program t\nproc main() {\n int a, b\n a = 1\n if a > 0 {\n b = 2\n } else {\n b = 3\n }\n a = b\n}",
        )
        .unwrap();
        let issa = Issa::build(&p);
        // The final `a = b` uses a φ of the two b-defs.
        let main = p.proc_by_name("main").unwrap();
        let last = main.body.last().unwrap().id();
        let b = p.var_by_name("main", "b").unwrap();
        let val = issa.use_map[&(last, SliceVar::Var(b))];
        assert!(matches!(issa.def(val), Def::Phi { ops } if ops.len() == 2));
    }

    #[test]
    fn loop_header_phis_close_the_cycle() {
        let p = parse_program(
            "program t\nproc main() {\n int i, s\n s = 0\n do i = 1, 3 {\n s = s + i\n }\n print s\n}",
        )
        .unwrap();
        let issa = Issa::build(&p);
        let main = p.proc_by_name("main").unwrap();
        let print_stmt = main.body.last().unwrap().id();
        let s = p.var_by_name("main", "s").unwrap();
        let val = issa.use_map[&(print_stmt, SliceVar::Var(s))];
        // Post-loop value is the header φ with entry + back-edge.
        match issa.def(val) {
            Def::Phi { ops } => assert_eq!(ops.len(), 2),
            other => panic!("expected φ, got {other:?}"),
        }
    }

    #[test]
    fn call_return_edges_are_created() {
        let p = parse_program(
            "program t\nproc bump(int k) { k = k + 1 }\nproc main() {\n int n\n n = 1\n call bump(n)\n print n\n}",
        )
        .unwrap();
        let issa = Issa::build(&p);
        let main = p.proc_by_name("main").unwrap();
        let print_stmt = main.body.last().unwrap().id();
        let n = p.var_by_name("main", "n").unwrap();
        let val = issa.use_map[&(print_stmt, SliceVar::Var(n))];
        assert!(matches!(issa.def(val), Def::CallReturn { .. }));
    }

    #[test]
    fn commons_are_one_alias_variable() {
        let p = parse_program(
            "program t\nproc main() {\n common /c/ real a[4], real b[4]\n a[1] = 1\n b[1] = a[2]\n}",
        )
        .unwrap();
        let issa = Issa::build(&p);
        let main = p.proc_by_name("main").unwrap();
        let s2 = main.body[1].id();
        let a = p.var_by_name("main", "a").unwrap();
        // b[1] = a[2] reads the block value defined by a[1] = 1 (weak).
        let blk = SliceVar::of(&p, a);
        let val = issa.use_map[&(s2, blk)];
        assert!(matches!(issa.def(val), Def::Stmt { weak: true, .. }));
    }

    #[test]
    fn control_chain_is_recorded() {
        let p = parse_program(
            "program t\nproc main() {\n int i, x\n x = 0\n do 5 i = 1, 3 {\n if i > 1 {\n x = 1\n }\n }\n}",
        )
        .unwrap();
        let issa = Issa::build(&p);
        // Find the x = 1 statement.
        let mut target = None;
        p.walk_stmts(p.main, &mut |s, _| {
            if s.line() == 7 {
                target = Some(s.id());
            }
        });
        let chain = issa.control_chain(target.unwrap());
        assert_eq!(chain.len(), 2, "if + do: {chain:?}");
    }

    #[test]
    fn effects_fixed_point() {
        let p = parse_program(
            "program t\nproc leaf() {\n common /c/ real x[2]\n x[1] = 1\n}\nproc mid() { call leaf() }\nproc main() { call mid() }",
        )
        .unwrap();
        let issa = Issa::build(&p);
        let mid = p.proc_by_name("mid").unwrap().id;
        assert_eq!(issa.effects[&mid].mod_commons.len(), 1);
        let main = p.proc_by_name("main").unwrap().id;
        assert_eq!(issa.effects[&main].mod_commons.len(), 1);
    }
}
