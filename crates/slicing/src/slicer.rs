//! The demand-driven, context-sensitive slicing algorithm (§3.5) with the
//! §3.6 pruning options.
//!
//! Slice summaries `⟨S, F⟩` (the set of statements contributing within the
//! procedure and its callees, plus the upward-exposed formal dependences)
//! are computed demand-driven over the value subgraph reachable from the
//! queried reference, with a Kleene fixed point over the recurrences created
//! by loop φ-nodes (§3.5.3).  Summaries are memoized per pruning
//! configuration, and context sensitivity comes from expanding each formal
//! only through the call sites that actually reach the query — the
//! `Cslice(r, [c1..cn])` form restricts expansion to one call stack.
//!
//! A compact *hierarchical* representation of the result (§3.5.4) — a DAG of
//! per-value nodes whose union is the slice — is available on the result for
//! storage-efficiency experiments; the flattened statement/line sets drive
//! the Explorer display.

use crate::issa::{Def, Issa, SliceVar, ValueId};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use suif_ir::{ProcId, Program, StmtId};

/// Which dependence edges to follow (§3.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SliceKind {
    /// Data and control dependences, transitively.
    Program,
    /// Data dependences only.
    Data,
    /// The governing control structures of the reference plus the program
    /// slices of their conditions.
    Control,
}

/// Pruning and context options (§3.6, §3.5.3).
#[derive(Clone, Default, Debug)]
pub struct SliceOptions {
    /// Array-restricted: stop at array (weak) values — "array contents are
    /// seldom useful for proving data independence".
    pub array_restricted: bool,
    /// Code-region-restricted: prune at statements outside the given loop
    /// (statements of procedures called from inside count as inside).
    pub region: Option<StmtId>,
    /// Calling context: expand formals only up this call stack (innermost
    /// call last); `None` expands through all callers.
    pub context: Option<Vec<StmtId>>,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct OptKey {
    kind: SliceKind,
    ar: bool,
    region: Option<StmtId>,
}

/// A computed slice.
#[derive(Clone, Debug)]
pub struct Slice {
    /// Statements in the slice.
    pub stmts: BTreeSet<StmtId>,
    /// Their source lines.
    pub lines: BTreeSet<u32>,
    /// Statements where pruning cut the computation (terminal nodes the
    /// display highlights, §3.6).
    pub terminals: BTreeSet<StmtId>,
    /// Number of distinct summary nodes backing this slice (the size of the
    /// hierarchical representation, §3.5.4).
    pub hierarchy_nodes: usize,
}

impl Slice {
    /// Number of distinct source lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Restrict to lines within `[lo, hi]` (the Fig. 4-8 "loop" column).
    pub fn lines_within(&self, lo: u32, hi: u32) -> usize {
        self.lines.iter().filter(|&&l| l >= lo && l <= hi).count()
    }
}

#[derive(Clone, Default, Debug)]
struct Summary {
    stmts: BTreeSet<StmtId>,
    formals: BTreeSet<(ProcId, SliceVar)>,
    terminals: BTreeSet<StmtId>,
}

impl Summary {
    fn merge(&mut self, other: &Summary) -> bool {
        let n0 = self.stmts.len() + self.formals.len() + self.terminals.len();
        self.stmts.extend(other.stmts.iter().copied());
        self.formals.extend(other.formals.iter().copied());
        self.terminals.extend(other.terminals.iter().copied());
        self.stmts.len() + self.formals.len() + self.terminals.len() != n0
    }
}

/// The slicer: build once per program, query many times (§3.3:
/// demand-driven, memoized).
pub struct Slicer<'p> {
    /// The program.
    pub program: &'p Program,
    /// The interprocedural SSA graph.
    pub issa: Issa,
    memo: HashMap<(OptKey, u32), Summary>,
    /// Procedures (transitively) called from each loop, for region pruning.
    loop_callees: HashMap<StmtId, HashSet<ProcId>>,
}

impl<'p> Slicer<'p> {
    /// Build the slicer (constructs the ISSA graph).
    pub fn new(program: &'p Program) -> Slicer<'p> {
        Slicer {
            program,
            issa: Issa::build(program),
            memo: HashMap::new(),
            loop_callees: HashMap::new(),
        }
    }

    /// The SSA value a statement reads for a variable, if any.
    pub fn use_value(&self, stmt: StmtId, var: suif_ir::VarId) -> Option<ValueId> {
        let sv = SliceVar::of(self.program, var);
        self.issa.use_map.get(&(stmt, sv)).copied()
    }

    /// Slice of the reference to `var` used at `stmt`.
    pub fn slice_use(
        &mut self,
        stmt: StmtId,
        var: suif_ir::VarId,
        kind: SliceKind,
        opts: &SliceOptions,
    ) -> Option<Slice> {
        if kind == SliceKind::Control {
            return Some(self.control_slice(stmt, opts));
        }
        let v = self.use_value(stmt, var)?;
        Some(self.slice_value(v, kind, opts))
    }

    /// Control slice of the statement containing a reference (§3.2.1).
    pub fn control_slice(&mut self, stmt: StmtId, opts: &SliceOptions) -> Slice {
        let chain = self.issa.control_chain(stmt);
        let mut out = Slice {
            stmts: BTreeSet::new(),
            lines: BTreeSet::new(),
            terminals: BTreeSet::new(),
            hierarchy_nodes: 0,
        };
        for (cstmt, cvals) in chain {
            if self.in_region(cstmt, opts) {
                out.stmts.insert(cstmt);
            }
            for v in cvals {
                let s = self.slice_value(v, SliceKind::Program, opts);
                out.stmts.extend(s.stmts);
                out.terminals.extend(s.terminals);
                out.hierarchy_nodes += s.hierarchy_nodes;
            }
        }
        self.finish_lines(&mut out);
        out
    }

    /// Slice of an SSA value.
    pub fn slice_value(&mut self, v: ValueId, kind: SliceKind, opts: &SliceOptions) -> Slice {
        let key = OptKey {
            kind,
            ar: opts.array_restricted,
            region: opts.region,
        };
        let root = self.summary_of(v, &key);
        // Expand upward-exposed formals through callers (§3.5.3's Slice(r)),
        // or only along the provided calling context (Cslice).
        let mut stmts = root.stmts.clone();
        let mut terminals = root.terminals.clone();
        let mut nodes = 1usize;
        let mut seen: HashSet<(ProcId, SliceVar)> = HashSet::new();
        let mut work: VecDeque<((ProcId, SliceVar), usize)> =
            root.formals.iter().map(|&f| (f, 0usize)).collect();
        while let Some(((proc, var), depth)) = work.pop_front() {
            if !seen.insert((proc, var)) {
                continue;
            }
            // Callee locals and main's inputs are terminal.
            let sites: Vec<StmtId> = self
                .caller_sites(proc)
                .into_iter()
                .filter(|s| match (&opts.context, depth) {
                    // Context-restricted: the call on top of the stack.
                    (Some(stack), d) => {
                        let idx = stack.len().checked_sub(1 + d);
                        match idx {
                            Some(i) => stack.get(i) == Some(s),
                            None => false,
                        }
                    }
                    (None, _) => true,
                })
                .collect();
            for site in sites {
                if let Some(&bound) = self.issa.bindings.get(&(site, var)) {
                    let s = self.summary_of(bound, &key);
                    stmts.extend(s.stmts.iter().copied());
                    terminals.extend(s.terminals.iter().copied());
                    nodes += 1;
                    for &f in &s.formals {
                        work.push_back((f, depth + 1));
                    }
                }
            }
        }
        let mut out = Slice {
            stmts,
            lines: BTreeSet::new(),
            terminals,
            hierarchy_nodes: nodes,
        };
        self.finish_lines(&mut out);
        out
    }

    fn caller_sites(&self, proc: ProcId) -> Vec<StmtId> {
        let mut out = Vec::new();
        for ((stmt, _), _) in self.issa.bindings.iter() {
            let _ = stmt;
        }
        // bindings are keyed by (call stmt, callee var); find call stmts
        // whose callee is `proc` via the program.
        for p in &self.program.procedures {
            self.program.walk_stmts(p.id, &mut |s, _| {
                if let suif_ir::Stmt::Call { id, callee, .. } = s {
                    if *callee == proc {
                        out.push(*id);
                    }
                }
            });
        }
        out
    }

    fn in_region(&mut self, stmt: StmtId, opts: &SliceOptions) -> bool {
        let Some(region_loop) = opts.region else {
            return true;
        };
        let Some((loop_stmt, loop_proc)) = self.program.find_stmt(region_loop).map(|(s, p)| {
            if let suif_ir::Stmt::Do { line, end_line, .. } = s {
                ((*line, *end_line), p)
            } else {
                ((0, u32::MAX), p)
            }
        }) else {
            return true;
        };
        let Some(sproc) = self.program.stmt_proc(stmt) else {
            return false;
        };
        if sproc == loop_proc {
            let line = self.issa.stmt_lines.get(&stmt).copied().unwrap_or_else(|| {
                self.program
                    .find_stmt(stmt)
                    .map(|(s, _)| s.line())
                    .unwrap_or(0)
            });
            return line >= loop_stmt.0 && line <= loop_stmt.1;
        }
        // Statements in procedures called from inside the loop are inside.
        self.callees_of_loop(region_loop).contains(&sproc)
    }

    fn callees_of_loop(&mut self, loop_stmt: StmtId) -> HashSet<ProcId> {
        if let Some(set) = self.loop_callees.get(&loop_stmt) {
            return set.clone();
        }
        let mut set = HashSet::new();
        if let Some((suif_ir::Stmt::Do { body, .. }, _)) = self.program.find_stmt(loop_stmt) {
            let mut work: Vec<ProcId> = Vec::new();
            fn collect(body: &[suif_ir::Stmt], out: &mut Vec<ProcId>) {
                for s in body {
                    match s {
                        suif_ir::Stmt::Call { callee, .. } => out.push(*callee),
                        suif_ir::Stmt::If {
                            then_body,
                            else_body,
                            ..
                        } => {
                            collect(then_body, out);
                            collect(else_body, out);
                        }
                        suif_ir::Stmt::Do { body, .. } => collect(body, out),
                        _ => {}
                    }
                }
            }
            collect(body, &mut work);
            while let Some(p) = work.pop() {
                if set.insert(p) {
                    self.program.walk_stmts(p, &mut |s, _| {
                        if let suif_ir::Stmt::Call { callee, .. } = s {
                            work.push(*callee);
                        }
                    });
                }
            }
        }
        self.loop_callees.insert(loop_stmt, set.clone());
        set
    }

    /// Demand-driven, memoized summary computation with a Kleene fixed
    /// point over the reachable subgraph (loop φ recurrences, §3.5.3).
    fn summary_of(&mut self, root: ValueId, key: &OptKey) -> Summary {
        if let Some(s) = self.memo.get(&(key.clone(), root.0)) {
            return s.clone();
        }
        // Collect the reachable subgraph.
        let mut reach: Vec<ValueId> = Vec::new();
        let mut seen: HashSet<ValueId> = HashSet::new();
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            reach.push(v);
            for s in self.successors(v, key) {
                stack.push(s);
            }
        }
        // Kleene iteration.
        let mut sums: HashMap<ValueId, Summary> =
            reach.iter().map(|&v| (v, Summary::default())).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &v in &reach {
                let s = self.local_summary(v, key, &sums);
                let slot = sums.get_mut(&v).unwrap();
                if slot.merge(&s) {
                    changed = true;
                }
            }
        }
        for (&v, s) in &sums {
            self.memo.insert((key.clone(), v.0), s.clone());
        }
        sums.remove(&root).unwrap_or_default()
    }

    /// Value successors followed for this configuration.
    fn successors(&mut self, v: ValueId, key: &OptKey) -> Vec<ValueId> {
        let mut out = Vec::new();
        match self.issa.def(v).clone() {
            Def::Param { .. } => {}
            Def::Stmt { stmt, ops, weak } => {
                let pruned_ar = key.ar && weak;
                let pruned_cr = !self.in_region_key(stmt, key);
                if !(pruned_ar || pruned_cr) {
                    out.extend(ops);
                    if key.kind == SliceKind::Program {
                        for (_, cvals) in self.issa.control_chain(stmt) {
                            out.extend(cvals);
                        }
                    }
                }
            }
            Def::Phi { ops } => out.extend(ops),
            Def::CallReturn {
                call,
                callee,
                callee_var,
            } => {
                if self.in_region_key(call, key) {
                    if let Some(&exit) = self.issa.exit_values.get(&(callee, callee_var)) {
                        out.push(exit);
                    }
                    // Formals of the callee resolve through this call's
                    // bindings — add them so the fixed point covers them.
                    // (They are added lazily in local_summary.)
                }
            }
        }
        // CallReturn formal expansion: successors include bound values of
        // the callee's formals at this call.
        if let Def::CallReturn { call, callee, .. } = self.issa.def(v).clone() {
            if self.in_region_key(call, key) {
                let keys: Vec<SliceVar> = self
                    .issa
                    .params
                    .keys()
                    .filter(|(p, _)| *p == callee)
                    .map(|(_, sv)| *sv)
                    .collect();
                for sv in keys {
                    if let Some(&b) = self.issa.bindings.get(&(call, sv)) {
                        out.push(b);
                    }
                }
            }
        }
        out
    }

    fn in_region_key(&mut self, stmt: StmtId, key: &OptKey) -> bool {
        let opts = SliceOptions {
            array_restricted: key.ar,
            region: key.region,
            context: None,
        };
        self.in_region(stmt, &opts)
    }

    fn local_summary(
        &mut self,
        v: ValueId,
        key: &OptKey,
        sums: &HashMap<ValueId, Summary>,
    ) -> Summary {
        let mut out = Summary::default();
        let get = |x: ValueId, out: &mut Summary| {
            if let Some(s) = sums.get(&x) {
                out.merge(s);
            }
        };
        match self.issa.def(v).clone() {
            Def::Param { proc, var } => {
                out.formals.insert((proc, var));
            }
            Def::Stmt { stmt, ops, weak } => {
                let pruned_ar = key.ar && weak;
                let pruned_cr = !self.in_region_key(stmt, key);
                if pruned_cr {
                    // Outside the region: terminal, statement excluded.
                    out.terminals.insert(stmt);
                    return out;
                }
                out.stmts.insert(stmt);
                if pruned_ar {
                    out.terminals.insert(stmt);
                    return out;
                }
                for o in ops {
                    get(o, &mut out);
                }
                if key.kind == SliceKind::Program {
                    for (cstmt, cvals) in self.issa.control_chain(stmt) {
                        if self.in_region_key(cstmt, key) {
                            out.stmts.insert(cstmt);
                        }
                        for cv in cvals {
                            get(cv, &mut out);
                        }
                    }
                }
            }
            Def::Phi { ops } => {
                for o in ops {
                    get(o, &mut out);
                }
            }
            Def::CallReturn {
                call,
                callee,
                callee_var,
            } => {
                if !self.in_region_key(call, key) {
                    out.terminals.insert(call);
                    return out;
                }
                out.stmts.insert(call);
                if let Some(&exit) = self.issa.exit_values.get(&(callee, callee_var)) {
                    // The callee's contribution: its call subslice, plus its
                    // formals mapped through THIS call site (context
                    // sensitivity, §3.5.2).
                    if let Some(cs) = sums.get(&exit) {
                        out.stmts.extend(cs.stmts.iter().copied());
                        out.terminals.extend(cs.terminals.iter().copied());
                        for &(fproc, fvar) in &cs.formals {
                            if fproc == callee {
                                if let Some(&b) = self.issa.bindings.get(&(call, fvar)) {
                                    get(b, &mut out);
                                    continue;
                                }
                            }
                            // Unbound (callee local): terminal input.
                        }
                    }
                }
            }
        }
        out
    }

    fn finish_lines(&self, out: &mut Slice) {
        for &s in &out.stmts {
            if let Some(&l) = self.issa.stmt_lines.get(&s) {
                out.lines.insert(l);
            } else if let Some((stmt, _)) = self.program.find_stmt(s) {
                out.lines.insert(stmt.line());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    fn stmt_on_line(p: &Program, line: u32) -> StmtId {
        let mut out = None;
        for proc in &p.procedures {
            p.walk_stmts(proc.id, &mut |s, _| {
                if s.line() == line && out.is_none() {
                    out = Some(s.id());
                }
            });
        }
        out.unwrap_or_else(|| panic!("no stmt on line {line}"))
    }

    #[test]
    fn data_slice_follows_def_use_chain() {
        let src = "\
program t
proc main() {
  int a, b, c, d
  a = 1
  b = a + 2
  c = 7
  d = b * 3
  print d
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        let print_stmt = stmt_on_line(&p, 8);
        let d = p.var_by_name("main", "d").unwrap();
        let s = sl
            .slice_use(print_stmt, d, SliceKind::Data, &SliceOptions::default())
            .unwrap();
        // Slice: a=1 (4), b=a+2 (5), d=b*3 (7); NOT c=7 (6).
        assert_eq!(s.lines, [4u32, 5, 7].into_iter().collect());
    }

    #[test]
    fn program_slice_includes_control() {
        let src = "\
program t
proc main() {
  int a, b, k
  k = 1
  a = 0
  if k > 0 {
    a = 2
  }
  b = a
  print b
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        let use_stmt = stmt_on_line(&p, 9);
        let a = p.var_by_name("main", "a").unwrap();
        let data = sl
            .slice_use(use_stmt, a, SliceKind::Data, &SliceOptions::default())
            .unwrap();
        let prog = sl
            .slice_use(use_stmt, a, SliceKind::Program, &SliceOptions::default())
            .unwrap();
        // Data slice: both a-defs (lines 5, 7); program slice additionally
        // the if (6) and k = 1 (4).
        assert!(data.lines.contains(&5) && data.lines.contains(&7));
        assert!(!data.lines.contains(&6));
        assert!(
            prog.lines.contains(&6) && prog.lines.contains(&4),
            "{:?}",
            prog.lines
        );
    }

    #[test]
    fn context_sensitive_slice_does_not_mix_callers() {
        // §3.5.1's example: two callers pass different values; the slice of
        // the value in P must not pick up Q's assignment.
        let src = "\
program t
proc r(int f) {
  f = f + 1
}
proc p() {
  int g
  g = 1
  call r(g)
  print g
}
proc q() {
  int h
  h = 2
  call r(h)
}
proc main() {
  call p()
  call q()
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        let print_stmt = stmt_on_line(&p, 9);
        let g = p.var_by_name("p", "g").unwrap();
        let s = sl
            .slice_use(print_stmt, g, SliceKind::Data, &SliceOptions::default())
            .unwrap();
        assert!(s.lines.contains(&7), "g = 1 in slice: {:?}", s.lines);
        assert!(s.lines.contains(&3), "f = f + 1 in slice");
        assert!(
            !s.lines.contains(&13),
            "context-insensitive leak of `h = 2`: {:?}",
            s.lines
        );
    }

    #[test]
    fn loop_recurrence_reaches_fixed_point() {
        let src = "\
program t
proc main() {
  int i, s, t
  s = 0
  t = 5
  do i = 1, 10 {
    s = s + t
  }
  print s
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        let print_stmt = stmt_on_line(&p, 9);
        let s_var = p.var_by_name("main", "s").unwrap();
        let s = sl
            .slice_use(print_stmt, s_var, SliceKind::Data, &SliceOptions::default())
            .unwrap();
        assert!(s.lines.contains(&4), "s = 0");
        assert!(s.lines.contains(&5), "t = 5");
        assert!(s.lines.contains(&7), "s = s + t");
    }

    #[test]
    fn array_restriction_prunes_at_array_reads() {
        let src = "\
program t
proc main() {
  real a[10]
  int i, k
  do i = 1, 10 {
    a[i] = i * 2
  }
  k = ifix(a[3])
  print k
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        let print_stmt = stmt_on_line(&p, 9);
        let k = p.var_by_name("main", "k").unwrap();
        let full = sl
            .slice_use(print_stmt, k, SliceKind::Data, &SliceOptions::default())
            .unwrap();
        let ar = sl
            .slice_use(
                print_stmt,
                k,
                SliceKind::Data,
                &SliceOptions {
                    array_restricted: true,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(full.lines.contains(&6), "array fill in full slice");
        assert!(!ar.lines.is_empty());
        assert!(
            ar.num_lines() < full.num_lines(),
            "AR ({:?}) smaller than full ({:?})",
            ar.lines,
            full.lines
        );
        assert!(!ar.terminals.is_empty(), "pruned nodes are highlighted");
    }

    #[test]
    fn region_restriction_prunes_outside_the_loop() {
        let src = "\
program t
proc main() {
  real a[10]
  int i, base, k
  base = 4
  do 10 i = 1, 10 {
    k = base + i
    a[i] = k
  }
  print a[1]
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        // Slice of k's use at line 8.
        let use_stmt = stmt_on_line(&p, 8);
        let k = p.var_by_name("main", "k").unwrap();
        let full = sl
            .slice_use(use_stmt, k, SliceKind::Data, &SliceOptions::default())
            .unwrap();
        assert!(full.lines.contains(&5), "base = 4 in full slice");
        let loop_stmt = stmt_on_line(&p, 6);
        let cr = sl
            .slice_use(
                use_stmt,
                k,
                SliceKind::Data,
                &SliceOptions {
                    region: Some(loop_stmt),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(!cr.lines.contains(&5), "base = 4 pruned: {:?}", cr.lines);
        assert!(cr.lines.contains(&7), "k = base + i kept");
    }

    #[test]
    fn control_slice_of_guarded_write() {
        // The Fig. 3-1 XPS pattern: the write is guarded, the read is not.
        let src = "\
program t
proc main() {
  real xps[8], y[9], xp[64]
  int s, h, jj, ree
  ree = 1
  do 2365 s = 1, 8 {
    if s != 1 && ree > 0 {
      do 2350 h = 1, 8 {
        xps[h] = y[h + 1]
      }
    }
    do 2360 jj = 1, 8 {
      xp[s + (jj - 1) * 8] = xps[jj]
    }
  }
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        // Control slice of the write xps[h] = … at line 9.
        let wstmt = stmt_on_line(&p, 9);
        let cs = sl.control_slice(wstmt, &SliceOptions::default());
        // It must include the guarding IF (line 7) and the definition of
        // ree (line 5) feeding the condition.
        assert!(cs.lines.contains(&7), "{:?}", cs.lines);
        assert!(cs.lines.contains(&5), "{:?}", cs.lines);
        // The read at line 13 is NOT control dependent on the IF.
        let rstmt = stmt_on_line(&p, 13);
        let cr = sl.control_slice(rstmt, &SliceOptions::default());
        assert!(!cr.lines.contains(&7), "{:?}", cr.lines);
    }

    #[test]
    fn cslice_restricts_to_one_call_stack() {
        let src = "\
program t
proc r(int f) {
  f = f * 2
}
proc p() {
  int g
  g = 1
  call r(g)
  print g
}
proc q() {
  int h
  h = 3
  call r(h)
  print h
}
proc main() {
  call p()
  call q()
}
";
        let p = parse_program(src).unwrap();
        let mut sl = Slicer::new(&p);
        // Slice the callee's own use of f inside r, with context [call in q].
        let f_update = stmt_on_line(&p, 3);
        let f = p.var_by_name("r", "f").unwrap();
        let call_in_q = stmt_on_line(&p, 14);
        let call_in_p = stmt_on_line(&p, 8);
        let with_q = sl
            .slice_use(
                f_update,
                f,
                SliceKind::Data,
                &SliceOptions {
                    context: Some(vec![call_in_q]),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(
            with_q.lines.contains(&13),
            "h = 3 via q: {:?}",
            with_q.lines
        );
        assert!(
            !with_q.lines.contains(&7),
            "g = 1 excluded: {:?}",
            with_q.lines
        );
        let with_p = sl
            .slice_use(
                f_update,
                f,
                SliceKind::Data,
                &SliceOptions {
                    context: Some(vec![call_in_p]),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(with_p.lines.contains(&7));
        assert!(!with_p.lines.contains(&13));
    }
}
