//! Interprocedural program slicing for interactive parallelization (Ch. 3).
//!
//! * [`issa`] builds the **interprocedural SSA form** of §3.4: scalar values
//!   get SSA definitions with φ-nodes at branch joins and loop headers;
//!   arrays are monolithic values updated weakly (§3.4.2: "any reference to
//!   an array element accesses the entire array"); overlapping common-block
//!   members collapse into one *alias variable* per block; parameter passing
//!   is modelled copy-in/copy-out with explicit parameter-in values and
//!   return edges (§3.4.3).
//! * [`slicer`] implements the **demand-driven, context-sensitive slicing
//!   algorithm** of §3.5: *slice summaries* `⟨S, F⟩` (call subslice + upward
//!   formal dependences) computed with memoization and a fixed point over
//!   recurrences, a *hierarchical slice representation* (§3.5.4), program /
//!   data / control slices (§3.2.1), calling-context slices (`Cslice`), and
//!   the §3.6 pruning options (array-restricted and code-region-restricted).
//!
//! ```
//! use suif_slicing::{SliceKind, SliceOptions, Slicer};
//! let program = suif_ir::parse_program(
//!     "program p\nproc main() {\n int a, b, c\n a = 1\n b = 7\n c = a * 2\n print c\n}",
//! ).unwrap();
//! let mut slicer = Slicer::new(&program);
//! let print_stmt = program.proc_by_name("main").unwrap().body[3].id();
//! let c = program.var_by_name("main", "c").unwrap();
//! let slice = slicer
//!     .slice_use(print_stmt, c, SliceKind::Data, &SliceOptions::default())
//!     .unwrap();
//! assert!(slice.lines.contains(&4) && slice.lines.contains(&6)); // a = 1, c = a * 2
//! assert!(!slice.lines.contains(&5)); // b = 7 is irrelevant
//! ```

#![warn(missing_docs)]

pub mod issa;
pub mod slicer;

pub use issa::{Def, Issa, SliceVar, ValueId};
pub use slicer::{Slice, SliceKind, SliceOptions, Slicer};
