//! Text visualization (§2.7): the Codeview "bird's-eye" line map and the
//! annotated source viewer, standing in for the Rivet metaphors.
//!
//! Per §2.7 / Fig. 4-2: "Filtered loops are shown in gray; unfiltered
//! sequential loops are shown in black; unfiltered parallel loops are shown
//! in white.  A white focus bar indicates that the loop was selected as a
//! good candidate for hand parallelization."  The text rendering maps:
//! gray → `.`, black (sequential, important) → `#`, white (parallel) → `=`,
//! focus candidate → `*`, non-loop code → space.

use crate::explorer::Explorer;
use crate::guru::GuruReport;
use std::collections::HashMap;

/// Render the codeview: one row per source line, `marker depth | source`.
pub fn codeview(ex: &Explorer<'_>, guru: &GuruReport) -> String {
    let parallel = ex.parallel_loops();
    let focus: Vec<_> = guru.important_targets().map(|t| t.stmt).collect();
    // Per line: (marker, depth) from the innermost covering loop.
    let mut line_info: HashMap<u32, (char, usize)> = HashMap::new();
    for li in &ex.analysis.ctx.tree.loops {
        let marker = if focus.contains(&li.stmt) {
            '*'
        } else if parallel.contains(&li.stmt) {
            '='
        } else {
            let important = guru
                .targets
                .iter()
                .any(|t| t.stmt == li.stmt && t.important);
            if important {
                '#'
            } else {
                '.'
            }
        };
        for line in li.line..=li.end_line {
            let e = line_info.entry(line).or_insert((' ', 0));
            if li.depth >= e.1 || e.0 == ' ' {
                *e = (marker, li.depth + 1);
            }
        }
    }
    let mut out = String::new();
    out.push_str("codeview  (= parallel, # sequential-important, . filtered, * focus)\n");
    for (idx, text) in ex.program.source.lines().enumerate() {
        let line = idx as u32 + 1;
        let (m, d) = line_info.get(&line).copied().unwrap_or((' ', 0));
        let depth = if d > 0 {
            char::from_digit(d.min(9) as u32, 10).unwrap()
        } else {
            ' '
        };
        out.push_str(&format!("{m}{depth}|{text}\n"));
    }
    out
}

/// Render the annotated source viewer for a line window, marking the lines
/// of a slice (`S`) and its pruned terminals (`?`), the way the Explorer
/// highlights "exactly those lines" (§3.1).
pub fn source_view(
    ex: &Explorer<'_>,
    from_line: u32,
    to_line: u32,
    slice_lines: &std::collections::BTreeSet<u32>,
    terminal_lines: &std::collections::BTreeSet<u32>,
) -> String {
    let mut out = String::new();
    for (idx, text) in ex.program.source.lines().enumerate() {
        let line = idx as u32 + 1;
        if line < from_line || line > to_line {
            continue;
        }
        let mark = if terminal_lines.contains(&line) {
            '?'
        } else if slice_lines.contains(&line) {
            'S'
        } else {
            ' '
        };
        out.push_str(&format!("{line:>5} {mark} {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::explorer::Explorer;
    use suif_ir::parse_program;

    #[test]
    fn codeview_marks_loop_kinds() {
        let src = r#"program t
proc main() {
  real a[100], b[101]
  int i, j
  do 1 i = 1, 100 {
    a[i] = i
  }
  do 2 i = 1, 100 {
    do 3 j = 1, 100 {
      b[j] = b[j + 1]
    }
  }
}
"#;
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let guru = ex.guru();
        let view = super::codeview(&ex, &guru);
        let lines: Vec<&str> = view.lines().collect();
        // Line 5 (do 1) is parallel → '='.
        assert!(lines[5].starts_with('='), "line5: {}", lines[5]);
        // Line 8 (do 2) is a focus candidate or important sequential.
        assert!(
            lines[8].starts_with('*') || lines[8].starts_with('#'),
            "line8: {}",
            lines[8]
        );
        // Depth digit for the inner loop body is 2.
        assert!(lines[9].chars().nth(1) == Some('2'), "line9: {}", lines[9]);
    }

    #[test]
    fn source_view_marks_slices() {
        let src = "program t\nproc main() {\n int a\n a = 1\n print a\n}\n";
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let slice: std::collections::BTreeSet<u32> = [4u32].into_iter().collect();
        let term: std::collections::BTreeSet<u32> = Default::default();
        let v = super::source_view(&ex, 3, 5, &slice, &term);
        assert!(v.contains("    4 S  a = 1"), "{v}");
    }
}
