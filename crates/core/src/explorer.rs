//! The Explorer pipeline (§2.3.1): compile → auto-parallelize → instrument
//! and profile → dynamic dependence analysis → guru interaction.

use crate::guru::{self, GuruReport};
use std::collections::HashSet;
use std::sync::Arc;
use suif_analysis::{
    contract::ContractionCandidate, decomp::DecompFact, deps::CarriedDeps, split::BlockSplit,
    AnalyzeStats, Assertion, FactKey, FactStore, LoopVerdict, ParallelizeConfig, Parallelizer,
    PassId, ProgramAnalysis, ScheduleOptions, Scope, SummaryCache, VarClass,
};
use suif_dynamic::machine::Machine;
use suif_dynamic::{DynDepAnalyzer, DynDepConfig, DynDepReport, LoopProfiler, ProfileReport};
use suif_ir::{Program, StmtId, VarId};
use suif_slicing::{Slice, SliceKind, SliceOptions, Slicer};

/// Explorer failure.
#[derive(Debug)]
pub struct ExplorerError(pub String);

impl std::fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "explorer error: {}", self.0)
    }
}

impl std::error::Error for ExplorerError {}

/// One interactive Explorer session over a program.
pub struct Explorer<'p> {
    /// The program.
    pub program: &'p Program,
    /// Static analysis results (re-computed when assertions are applied).
    pub analysis: ProgramAnalysis<'p>,
    /// Sequential-run loop profile.
    pub profile: ProfileReport,
    /// Dynamic dependence observations (§2.5.2), aware of the compiler's
    /// induction variables and reductions.
    pub dyndep: DynDepReport,
    /// Program input used for the instrumented runs.
    pub input: Vec<f64>,
    slicer: Option<Slicer<'p>>,
    /// Assertions applied so far.
    pub assertions: Vec<Assertion>,
    /// The fact store every static pass runs through; assertion replay
    /// recomputes only the invalidated cone of facts.
    store: Arc<FactStore>,
    /// Bottom-up schedule used for (re-)analysis.
    opts: ScheduleOptions,
}

impl<'p> Explorer<'p> {
    /// Start a session: auto-parallelize and run both execution analyzers.
    pub fn new(program: &'p Program, input: Vec<f64>) -> Result<Explorer<'p>, ExplorerError> {
        Self::with_config(program, ParallelizeConfig::default(), input)
    }

    /// Start with an explicit analysis configuration.
    pub fn with_config(
        program: &'p Program,
        config: ParallelizeConfig,
        input: Vec<f64>,
    ) -> Result<Explorer<'p>, ExplorerError> {
        Self::with_schedule(program, config, input, &ScheduleOptions::sequential(), None)
            .map(|(ex, _)| ex)
    }

    /// Start with an explicit bottom-up schedule (parallel workers) and an
    /// optional cross-run summary cache (the daemon's incremental path).
    /// Also returns the analysis timing/cache statistics.
    pub fn with_schedule(
        program: &'p Program,
        config: ParallelizeConfig,
        input: Vec<f64>,
        opts: &ScheduleOptions,
        cache: Option<&SummaryCache>,
    ) -> Result<(Explorer<'p>, AnalyzeStats), ExplorerError> {
        Self::with_store(
            program,
            config,
            input,
            opts,
            cache,
            Arc::new(FactStore::new()),
        )
    }

    /// Start against a shared [`FactStore`] (the daemon's resident path):
    /// every static pass is demanded through `store`, so facts surviving a
    /// reload or an assertion replay are reused instead of recomputed.
    pub fn with_store(
        program: &'p Program,
        config: ParallelizeConfig,
        input: Vec<f64>,
        opts: &ScheduleOptions,
        cache: Option<&SummaryCache>,
        store: Arc<FactStore>,
    ) -> Result<(Explorer<'p>, AnalyzeStats), ExplorerError> {
        let assertions = config.assertions.clone();
        let (analysis, stats) = Parallelizer::analyze_in(program, config, opts, cache, &store);

        // Loop profile run (§2.5.1).
        let mut profiler = LoopProfiler::new();
        {
            let mut m =
                Machine::new(program, &mut profiler).map_err(|e| ExplorerError(e.to_string()))?;
            m.set_input(input.clone());
            m.run().map_err(|e| ExplorerError(e.to_string()))?;
        }
        let profile = profiler.report();

        // Dynamic dependence run (§2.5.2), ignoring compiler-recognized
        // induction variables and reduction updates.
        let dd_config = dyndep_config(program, &analysis);
        let mut dd = DynDepAnalyzer::new(dd_config);
        {
            let mut m = Machine::new(program, &mut dd).map_err(|e| ExplorerError(e.to_string()))?;
            m.set_input(input.clone());
            m.run().map_err(|e| ExplorerError(e.to_string()))?;
        }
        let dyndep = dd.report();

        Ok((
            Explorer {
                program,
                analysis,
                profile,
                dyndep,
                input,
                slicer: None,
                assertions,
                store,
                opts: opts.clone(),
            },
            stats,
        ))
    }

    /// The set of loops the compiler parallelized.
    pub fn parallel_loops(&self) -> HashSet<StmtId> {
        self.analysis.parallel_loops()
    }

    /// The Parallelization Guru's report (§2.6).
    pub fn guru(&self) -> GuruReport {
        guru::report(self)
    }

    /// Lazy slicer access.
    pub fn slicer(&mut self) -> &mut Slicer<'p> {
        if self.slicer.is_none() {
            self.slicer = Some(Slicer::new(self.program));
        }
        self.slicer.as_mut().unwrap()
    }

    /// The slices the Guru presents for one static dependence (§2.6): for
    /// every access site of the dependent object in the loop, the program
    /// and control slices of the *subscript-defining* variables, with the
    /// code-region and array restrictions of §3.6 applied.
    pub fn slices_for_dep(
        &mut self,
        loop_stmt: StmtId,
        dep_index: usize,
    ) -> Vec<(u32, Slice, Slice)> {
        let sites: Vec<(StmtId, VarId)> = {
            let Some(LoopVerdict::Sequential { deps, .. }) = self.analysis.verdict(loop_stmt)
            else {
                return Vec::new();
            };
            let Some(dep) = deps.get(dep_index) else {
                return Vec::new();
            };
            // Slice the scalar variables appearing in the subscripts at the
            // access sites (the "references to K" of Fig. 4-3).
            let mut sites = Vec::new();
            for &(stmt, _, _, _) in &dep.sites {
                if let Some((s, _)) = self.program.find_stmt(stmt) {
                    let mut scalars: Vec<VarId> = Vec::new();
                    collect_subscript_scalars(
                        self.program,
                        s,
                        dep.object,
                        &self.analysis,
                        &mut scalars,
                    );
                    for v in scalars {
                        sites.push((stmt, v));
                    }
                }
            }
            sites
        };
        let opts = SliceOptions {
            array_restricted: true,
            region: Some(loop_stmt),
            context: None,
        };
        let mut out = Vec::new();
        let program = self.program;
        let slicer = self.slicer();
        for (stmt, v) in sites {
            let line = program.find_stmt(stmt).map(|(s, _)| s.line()).unwrap_or(0);
            let prog = slicer
                .slice_use(stmt, v, SliceKind::Program, &opts)
                .unwrap_or_else(|| slicer.control_slice(stmt, &opts));
            let ctrl = slicer.control_slice(stmt, &opts);
            out.push((line, prog, ctrl));
        }
        out
    }

    /// Re-run the static analysis with a new assertion set, replaying only
    /// the invalidated facts through the session's store.  The profile and
    /// dynamic-dependence reports are **kept** — the program and input did
    /// not change, so the interpreter runs would be identical.
    pub fn apply_assertions(&mut self, assertions: Vec<Assertion>) -> AnalyzeStats {
        self.assertions = assertions.clone();
        let config = ParallelizeConfig {
            assertions,
            ..self.analysis.config.clone()
        };
        let (analysis, stats) =
            Parallelizer::analyze_in(self.program, config, &self.opts, None, &self.store);
        self.analysis = analysis;
        stats
    }

    /// Apply an assertion (after checking it, §2.8) and re-parallelize.
    pub fn assert_and_reanalyze(&mut self, a: Assertion) -> crate::checker::CheckResult {
        self.assert_and_reanalyze_with_stats(a).0
    }

    /// [`Explorer::assert_and_reanalyze`], also returning the replay's
    /// statistics (`None` when the assertion was contradicted and nothing
    /// re-ran).  The assertion is an *invalidation event*: the asserted
    /// loop's classification fact and its dependents are marked dirty, and
    /// the replay recomputes exactly that cone.
    pub fn assert_and_reanalyze_with_stats(
        &mut self,
        a: Assertion,
    ) -> (crate::checker::CheckResult, Option<AnalyzeStats>) {
        let res = crate::checker::check_assertion(self, &a);
        if matches!(res, crate::checker::CheckResult::Contradicted(_)) {
            return (res, None);
        }
        let loop_name = match &a {
            Assertion::Privatizable { loop_name, .. } => loop_name,
            Assertion::Independent { loop_name, .. } => loop_name,
        };
        if let Some(li) = self
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| &l.name == loop_name)
        {
            self.store
                .invalidate(FactKey::new(PassId::Classify, Scope::Loop(li.stmt)));
        }
        let mut assertions = self.assertions.clone();
        assertions.push(a);
        let stats = self.apply_assertions(assertions);
        (res, Some(stats))
    }

    /// Warnings from the current analysis (assertions naming missing loops
    /// or variables).
    pub fn warnings(&self) -> &[String] {
        &self.analysis.warnings
    }

    /// The shared fact store (per-pass metrics, invalidation).
    pub fn store(&self) -> &Arc<FactStore> {
        &self.store
    }

    /// Demand-driven array-contraction candidates (§5.6); computed on first
    /// query, reused afterwards.
    pub fn contractions(&self) -> Arc<Vec<ContractionCandidate>> {
        suif_analysis::contract::find_candidates_cached(&self.analysis, &self.store)
    }

    /// Demand-driven data-decomposition advisory (§4.2.4).
    pub fn decomp_advisory(&self) -> Arc<DecompFact> {
        suif_analysis::decomp::advisory_cached(&self.analysis, &self.store)
    }

    /// Demand-driven common-block live-range splits (§5.5).
    pub fn block_splits(&self) -> Arc<Vec<BlockSplit>> {
        suif_analysis::split::find_splits_cached(&self.analysis, &self.store)
    }

    /// Demand-driven carried-dependence table of one loop.
    pub fn carried_deps(&self, loop_stmt: StmtId) -> Arc<CarriedDeps> {
        suif_analysis::deps::carried_deps_cached(&self.analysis, &self.store, loop_stmt)
    }

    /// Demand all three program-scope advisories at once, fanned out across
    /// the session's executor: on a cold store the contraction, decomposition
    /// and block-split facts compute concurrently (they are independent
    /// leaves over the same analysis); on a warm store all three are reuse
    /// hits.  Results are identical to three sequential demands.
    pub fn all_advisories(
        &self,
    ) -> (
        Arc<Vec<ContractionCandidate>>,
        Arc<DecompFact>,
        Arc<Vec<BlockSplit>>,
    ) {
        let exec = self.opts.executor();
        let contract = std::sync::Mutex::new(None);
        let decomp = std::sync::Mutex::new(None);
        let split = std::sync::Mutex::new(None);
        exec.run(3, |i| match i {
            0 => *contract.lock().unwrap() = Some(self.contractions()),
            1 => *decomp.lock().unwrap() = Some(self.decomp_advisory()),
            _ => *split.lock().unwrap() = Some(self.block_splits()),
        });
        (
            contract.into_inner().unwrap().expect("contract advisory"),
            decomp.into_inner().unwrap().expect("decomp advisory"),
            split.into_inner().unwrap().expect("split advisory"),
        )
    }

    /// Demand the carried-dependence tables of many loops, fanned out across
    /// the session's executor; results come back in input order.
    pub fn carried_deps_all(&self, loops: &[StmtId]) -> Vec<Arc<CarriedDeps>> {
        let exec = self.opts.executor();
        let slots: Vec<std::sync::Mutex<Option<Arc<CarriedDeps>>>> =
            loops.iter().map(|_| std::sync::Mutex::new(None)).collect();
        exec.run(loops.len(), |i| {
            *slots[i].lock().unwrap() = Some(self.carried_deps(loops[i]));
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("deps fact"))
            .collect()
    }
}

/// Dynamic-dependence configuration derived from the compiler's knowledge.
pub fn dyndep_config(program: &Program, analysis: &ProgramAnalysis<'_>) -> DynDepConfig {
    let mut cfg = DynDepConfig::default();
    // Induction variables of every loop.
    for li in &analysis.ctx.tree.loops {
        cfg.ignore_vars.insert(li.var);
    }
    // Reduction objects per loop (§2.5.2: the analyzer "is aware of the
    // induction variables and reduction operations found by the compiler").
    for (&stmt, v) in &analysis.verdicts {
        let mut any_reduction = false;
        for (&obj, class) in v.classes() {
            if matches!(class, VarClass::Reduction(_)) {
                any_reduction = true;
                for vid in 0..program.vars.len() as u32 {
                    let vid = VarId(vid);
                    if analysis.ctx.array_of(vid) == obj {
                        cfg.ignore_loop_vars.insert((stmt, vid));
                    }
                }
            }
        }
        // Reduction updates may happen through callee formals (the
        // interprocedural reductions of §6.2.2.4): the runtime accesses are
        // reported under the formal's identity, so ignore array formals of
        // procedures reachable from a loop that has reductions.
        if any_reduction {
            for p in suif_parallel::plan::callees_of_loop(program, stmt) {
                for &f in &program.proc(p).params {
                    if program.var(f).is_array() {
                        cfg.ignore_loop_vars.insert((stmt, f));
                    }
                }
            }
        }
    }
    cfg
}

fn collect_subscript_scalars(
    program: &Program,
    stmt: &suif_ir::Stmt,
    object: suif_poly::ArrayId,
    analysis: &ProgramAnalysis<'_>,
    out: &mut Vec<VarId>,
) {
    use suif_ir::{Expr, Ref, Stmt};
    let from_subs = |subs: &[Expr], out: &mut Vec<VarId>| {
        for e in subs {
            e.visit_scalar_reads(&mut |v| {
                if !out.contains(&v) {
                    out.push(v);
                }
            });
        }
    };
    match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            if let Ref::Element(v, subs) = lhs {
                if analysis.ctx.array_of(*v) == object {
                    from_subs(subs, out);
                }
            }
            rhs.visit_element_reads(&mut |v, subs| {
                if analysis.ctx.array_of(v) == object {
                    from_subs(subs, out);
                }
            });
        }
        Stmt::If { cond, .. } => {
            cond.visit_element_reads(&mut |v, subs| {
                if analysis.ctx.array_of(v) == object {
                    from_subs(subs, out);
                }
            });
        }
        _ => {}
    }
    let _ = program;
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    const MDG_LIKE: &str = r#"program mdgkern
const nmol = 40
proc main() {
  real rs[9], rl[14], a[nmol]
  real cut2, acc
  int i, k, kc
  cut2 = 30.0
  acc = 0
  do 5 i = 1, nmol {
    a[i] = i * 0.7
  }
  do 1000 i = 1, nmol {
    kc = 0
    do 1110 k = 1, 9 {
      rs[k] = a[i] + k
      if rs[k] > cut2 { kc = kc + 1 }
    }
    do 1130 k = 2, 5 {
      if rs[k + 4] <= cut2 { rl[k + 4] = rs[k + 4] }
    }
    if kc == 0 {
      do 1140 k = 11, 14 {
        acc = acc + rl[k - 5]
      }
    }
  }
  print acc
}
"#;

    #[test]
    fn explorer_session_mdg_pattern() {
        let p = parse_program(MDG_LIKE).unwrap();
        let mut ex = Explorer::new(&p, vec![]).unwrap();
        // Auto: loop 1000 sequential (rl dep); loop 5 parallel.
        let l1000 = ex
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1000")
            .unwrap()
            .stmt;
        assert!(!ex.analysis.verdicts[&l1000].is_parallel());
        // The guru targets loop 1000 first (it dominates execution).
        let guru = ex.guru();
        assert!(!guru.targets.is_empty());
        assert_eq!(guru.targets[0].name, "main/1000");
        assert!(guru.targets[0].static_deps > 0);
        // No dynamic dependence observed on it (rl never actually read here
        // under this input — kc == 0 never holds).
        assert!(!guru.targets[0].dynamic_dep);
        // Slices presented to the user are small.
        let slices = ex.slices_for_dep(l1000, 0);
        assert!(!slices.is_empty());
        for (_, prog, ctrl) in &slices {
            assert!(prog.num_lines() <= 14, "{:?}", prog.lines);
            let _ = ctrl;
        }
        // The user asserts rl privatizable; the checker accepts; the loop
        // becomes parallel (the §4.1.4 flow).
        let res = ex.assert_and_reanalyze(Assertion::Privatizable {
            loop_name: "main/1000".into(),
            var: "rl".into(),
        });
        assert!(!matches!(res, crate::checker::CheckResult::Contradicted(_)));
        assert!(ex.analysis.verdicts[&l1000].is_parallel());
        // Coverage improves.
        let guru2 = ex.guru();
        assert!(guru2.coverage > guru.coverage);
    }
}
