//! The Parallelization Guru (§2.6).
//!
//! Quantitative metrics: **parallelism coverage** (fraction of execution
//! time inside parallel regions — Amdahl's limit) and **parallelism
//! granularity** (average computation per parallel-region invocation).
//! The Guru presents a list of sequential loops to parallelize: no I/O, not
//! dynamically nested under a parallel loop, sorted by decreasing measured
//! execution time, annotated with static dependence counts and observed
//! dynamic dependences.

use crate::explorer::Explorer;
use std::collections::HashSet;
use suif_ir::StmtId;

/// One candidate loop for user parallelization.
#[derive(Clone, Debug)]
pub struct TargetLoop {
    /// Loop statement.
    pub stmt: StmtId,
    /// Display name (`proc/label`).
    pub name: String,
    /// Fraction of total execution spent in the loop (inclusive).
    pub coverage: f64,
    /// Average virtual ops per invocation.
    pub granularity: f64,
    /// Number of unresolved static dependences.
    pub static_deps: usize,
    /// Was a loop-carried flow dependence observed dynamically?
    pub dynamic_dep: bool,
    /// Passes the importance cutoffs?
    pub important: bool,
    /// Does the loop body contain procedure calls?
    pub has_calls: bool,
    /// Loop size in source lines (including callees).
    pub size_lines: u32,
}

/// The Guru's report.
#[derive(Clone, Debug)]
pub struct GuruReport {
    /// Parallelism coverage of the auto-parallelized code.
    pub coverage: f64,
    /// Parallelism granularity (avg ops per parallel-loop invocation).
    pub granularity: f64,
    /// Granularity in estimated milliseconds (wall-time scaled).
    pub granularity_ms: f64,
    /// Ranked list of sequential loops to examine.
    pub targets: Vec<TargetLoop>,
    /// Total number of loops that executed at least once.
    pub executed_loops: usize,
    /// Number of loops left sequential by the compiler (and executed).
    pub sequential_loops: usize,
}

/// Importance cutoffs (§4.3.2: "coverage larger than 2% and granularity
/// larger than 0.05 milliseconds"; our granularity cutoff is in virtual
/// ops, scaled to the machine below).
pub struct Cutoffs {
    /// Minimum coverage fraction.
    pub min_coverage: f64,
    /// Minimum ops per invocation.
    pub min_granularity_ops: f64,
}

impl Default for Cutoffs {
    fn default() -> Self {
        Cutoffs {
            min_coverage: 0.02,
            min_granularity_ops: 50.0,
        }
    }
}

/// Compute the Guru report.
pub fn report(ex: &Explorer<'_>) -> GuruReport {
    report_with(ex, &Cutoffs::default())
}

/// Compute the Guru report with explicit cutoffs.
pub fn report_with(ex: &Explorer<'_>, cutoffs: &Cutoffs) -> GuruReport {
    let parallel = ex.parallel_loops();
    let coverage = ex.profile.coverage(&parallel);
    let granularity = ex.profile.granularity(&parallel);
    let ns_per_op = if ex.profile.total_ops > 0 {
        ex.profile.total_nanos as f64 / ex.profile.total_ops as f64
    } else {
        0.0
    };
    let granularity_ms = granularity * ns_per_op / 1e6;

    let executed: HashSet<StmtId> = ex
        .profile
        .profiles
        .iter()
        .filter(|(_, p)| p.invocations > 0)
        .map(|(&s, _)| s)
        .collect();

    let mut targets = Vec::new();
    let mut sequential_loops = 0;
    for li in &ex.analysis.ctx.tree.loops {
        if !executed.contains(&li.stmt) {
            continue;
        }
        if parallel.contains(&li.stmt) {
            continue;
        }
        sequential_loops += 1;
        // §2.6: "all the sequential loops that have no I/O and that are not
        // dynamically nested under a parallel loop".
        if li.has_io {
            continue;
        }
        let prof = match ex.profile.loop_profile(li.stmt) {
            Some(p) => p,
            None => continue,
        };
        if !prof.dynamic_ancestors.is_disjoint(&parallel) {
            continue;
        }
        let cov = ex.profile.coverage_of(li.stmt);
        let gran = prof.granularity_ops();
        let static_deps = match ex.analysis.verdict(li.stmt) {
            Some(suif_analysis::LoopVerdict::Sequential { deps, .. }) => deps.len(),
            _ => 0,
        };
        let important = cov > cutoffs.min_coverage && gran > cutoffs.min_granularity_ops;
        targets.push(TargetLoop {
            stmt: li.stmt,
            name: li.name.clone(),
            coverage: cov,
            granularity: gran,
            static_deps,
            dynamic_dep: ex.dyndep.has_dep(li.stmt),
            important,
            has_calls: li.has_calls,
            size_lines: li.size_lines,
        });
    }
    targets.sort_by(|a, b| {
        b.coverage
            .partial_cmp(&a.coverage)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.name.cmp(&b.name))
    });

    GuruReport {
        coverage,
        granularity,
        granularity_ms,
        targets,
        executed_loops: executed.len(),
        sequential_loops,
    }
}

impl GuruReport {
    /// Render the target list the way the Guru presents it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "parallelism coverage: {:.1}%   granularity: {:.0} ops (~{:.3} ms)\n",
            self.coverage * 100.0,
            self.granularity,
            self.granularity_ms
        ));
        out.push_str(&format!(
            "loops executed: {}   sequential: {}\n",
            self.executed_loops, self.sequential_loops
        ));
        out.push_str("targets (most expensive first):\n");
        for t in &self.targets {
            out.push_str(&format!(
                "  {:<20} cov {:>5.1}%  gran {:>10.0}  static deps {:>2}  dyn dep {}  {}\n",
                t.name,
                t.coverage * 100.0,
                t.granularity,
                t.static_deps,
                if t.dynamic_dep { "yes" } else { "no " },
                if t.important {
                    "IMPORTANT"
                } else {
                    "(filtered)"
                },
            ));
        }
        out
    }

    /// Important targets only.
    pub fn important_targets(&self) -> impl Iterator<Item = &TargetLoop> {
        self.targets.iter().filter(|t| t.important)
    }
}

#[cfg(test)]
mod tests {
    use crate::explorer::Explorer;
    use suif_ir::parse_program;

    #[test]
    fn guru_ranks_by_cost_and_filters_io() {
        let src = r#"program t
proc main() {
  real a[101], b[100]
  real s
  int i, j
  s = 0
  do 1 i = 1, 100 {
    do 2 j = 1, 100 {
      a[j] = a[j + 1] + 1
    }
  }
  do 3 i = 1, 5 {
    b[i] = b[mod(i * 3, 100) + 1] + 1
  }
  do 4 i = 1, 3 {
    print s
  }
}
"#;
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let guru = ex.guru();
        // Loop 1 (expensive, sequential via a's recurrence) ranks first.
        assert_eq!(guru.targets[0].name, "main/1");
        assert!(guru.targets[0].important);
        // The I/O loop is not a target at all.
        assert!(guru.targets.iter().all(|t| t.name != "main/4"));
        // The tiny loop 3 is present but filtered as unimportant.
        let t3 = guru.targets.iter().find(|t| t.name == "main/3").unwrap();
        assert!(!t3.important);
        // Dynamic dependence observed for loop 1 (a real recurrence) and
        // loop 2.
        assert!(guru.targets[0].dynamic_dep);
        let rendered = guru.render();
        assert!(rendered.contains("main/1"));
    }

    #[test]
    fn nested_sequential_loops_under_parallel_are_skipped() {
        let src = r#"program t
proc main() {
  real a[64, 8]
  int i, j
  do 1 i = 1, 64 {
    do 2 j = 2, 8 {
      a[i, j] = a[i, j - 1] + 1
    }
  }
}
"#;
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        // Outer loop parallel (rows independent); inner sequential but
        // nested under a parallel loop → not a target.
        let guru = ex.guru();
        assert!(guru.targets.is_empty(), "{:?}", guru.targets);
        assert!(guru.coverage > 0.9);
    }
}
