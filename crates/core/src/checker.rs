//! The assertion checker (§2.8): uses the available static and dynamic
//! information to try to *disprove* a programmer's assertion before the
//! compiler trusts it.

use crate::explorer::Explorer;
use suif_analysis::Assertion;

/// Outcome of checking one assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckResult {
    /// Nothing contradicts the assertion.
    Consistent,
    /// The assertion contradicts observed/derived facts — rejected.
    Contradicted(String),
    /// Accepted with a warning (e.g. the variable aliases storage used in
    /// other procedures, which are privatized together automatically,
    /// §2.8's cross-procedure privatization note).
    Warning(String),
}

/// Check an assertion against the session's static and dynamic facts.
pub fn check_assertion(ex: &Explorer<'_>, a: &Assertion) -> CheckResult {
    let (loop_name, var_name, is_privatize) = match a {
        Assertion::Privatizable { loop_name, var } => (loop_name, var, true),
        Assertion::Independent { loop_name, var } => (loop_name, var, false),
    };
    let Some(li) = ex
        .analysis
        .ctx
        .tree
        .loops
        .iter()
        .find(|l| &l.name == loop_name)
    else {
        return CheckResult::Contradicted(format!("no loop named `{loop_name}`"));
    };
    let proc_name = &ex.program.proc(li.proc).name;
    let Some(var) = ex.program.var_by_name(proc_name, var_name) else {
        return CheckResult::Contradicted(format!("no variable `{var_name}` in `{proc_name}`"));
    };

    // Dynamic check: the Dynamic Dependence Analyzer models privatization
    // (same-iteration write-then-read carries nothing), so any observed
    // loop-carried flow dependence on the variable disproves both
    // "privatizable" and "independent" for the user-supplied input set.
    let object = ex.analysis.ctx.array_of(var);
    for v in ex.dyndep.dep_vars(li.stmt) {
        if ex.analysis.ctx.array_of(v) == object {
            return CheckResult::Contradicted(format!(
                "a loop-carried flow dependence on `{var_name}` was observed \
                 dynamically in {loop_name} for the user-supplied input set"
            ));
        }
    }

    // Static sanity: the variable should be accessed in the loop at all.
    let accessed = ex
        .analysis
        .df
        .loop_iter
        .get(&li.stmt)
        .and_then(|it| it.sum.acc.get(object))
        .map(|s| !s.read.is_empty() || !s.write.is_empty())
        .unwrap_or(false);
    if !accessed {
        return CheckResult::Warning(format!(
            "`{var_name}` does not appear to be accessed in {loop_name}; \
             the assertion has no effect"
        ));
    }

    // Cross-procedure aliasing (§2.8): privatizing a common-block variable
    // privatizes the storage for every procedure that accesses it; warn so
    // the user knows the assertion's true scope.
    if is_privatize {
        let aliases = ex.program.aliases_of(var);
        if !aliases.is_empty() {
            let procs: Vec<String> = aliases
                .iter()
                .map(|&v| {
                    format!(
                        "{}/{}",
                        ex.program.proc(ex.program.var(v).proc).name,
                        ex.program.var(v).name
                    )
                })
                .collect();
            return CheckResult::Warning(format!(
                "`{var_name}` shares storage with {}; the whole block is \
                 privatized for all of them automatically",
                procs.join(", ")
            ));
        }
    }
    CheckResult::Consistent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::Explorer;
    use suif_ir::parse_program;

    #[test]
    fn checker_rejects_false_privatization() {
        // The Fig. 3-1 lesson: XPS is NOT privatizable because the write is
        // conditional — the dynamic analyzer observes the carried flow.
        let src = r#"program t
proc main() {
  real xps[8], y[9], xp[64]
  int s, h, jj
  do 0 h = 1, 9 {
    y[h] = h
  }
  xps[1] = 0
  xps[2] = 0
  do 2365 s = 1, 8 {
    if s != 1 && s != 5 {
      do 2350 h = 1, 8 {
        xps[h] = y[h + 1]
      }
    }
    do 2360 jj = 1, 8 {
      xp[s + (jj - 1) * 8] = xps[jj]
    }
  }
  print xp[1]
}
"#;
        let p = parse_program(src).unwrap();
        let mut ex = Explorer::new(&p, vec![]).unwrap();
        let res = ex.assert_and_reanalyze(suif_analysis::Assertion::Privatizable {
            loop_name: "main/2365".into(),
            var: "xps".into(),
        });
        assert!(
            matches!(res, CheckResult::Contradicted(_)),
            "the costly §3.1 mistake must be caught: {res:?}"
        );
        // And the loop stays sequential.
        let l = ex
            .analysis
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/2365")
            .unwrap()
            .stmt;
        assert!(!ex.analysis.verdicts[&l].is_parallel());
    }

    #[test]
    fn checker_accepts_true_privatization() {
        let src = r#"program t
proc main() {
  real tmp[4], out[32]
  int i, j, n
  int sz[32]
  do 0 i = 1, 32 {
    sz[i] = mod(i, 4) + 1
  }
  do 1 i = 1, 32 {
    n = sz[i]
    do 2 j = 1, n {
      tmp[j] = i + j
    }
    do 3 j = 1, n {
      out[i] = out[i] + tmp[j]
    }
  }
  print out[5]
}
"#;
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let res = check_assertion(
            &ex,
            &suif_analysis::Assertion::Privatizable {
                loop_name: "main/1".into(),
                var: "tmp".into(),
            },
        );
        assert_eq!(res, CheckResult::Consistent);
    }

    #[test]
    fn checker_warns_on_unused_variable() {
        let src = "program t\nproc main() {\n real a[4], b[4]\n int i\n do 1 i = 1, 4 {\n a[i] = i\n }\n print b[1]\n}";
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let res = check_assertion(
            &ex,
            &suif_analysis::Assertion::Privatizable {
                loop_name: "main/1".into(),
                var: "b".into(),
            },
        );
        assert!(matches!(res, CheckResult::Warning(_)));
    }

    #[test]
    fn checker_warns_on_common_aliases() {
        let src = r#"program t
proc sub() {
  common /c/ real z[8]
  int i
  do 1 i = 1, 8 {
    z[i] = i
    z[i] = z[i] * 2
  }
}
proc main() {
  common /c/ real w[8]
  int i
  do 2 i = 1, 3 {
    call sub()
  }
  print w[1]
}
"#;
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let res = check_assertion(
            &ex,
            &suif_analysis::Assertion::Privatizable {
                loop_name: "main/2".into(),
                var: "w".into(),
            },
        );
        assert!(matches!(res, CheckResult::Warning(_)), "{res:?}");
    }
    #[test]
    fn checker_rejects_unknown_loop_and_variable() {
        let src = "program t\nproc main() {\n real a[4]\n int i\n do 1 i = 1, 4 {\n a[i] = i\n }\n print a[1]\n}";
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let res = check_assertion(
            &ex,
            &suif_analysis::Assertion::Independent {
                loop_name: "main/999".into(),
                var: "a".into(),
            },
        );
        assert!(matches!(res, CheckResult::Contradicted(_)), "{res:?}");
        let res = check_assertion(
            &ex,
            &suif_analysis::Assertion::Independent {
                loop_name: "main/1".into(),
                var: "nosuch".into(),
            },
        );
        assert!(matches!(res, CheckResult::Contradicted(_)), "{res:?}");
    }

    #[test]
    fn checker_rejects_false_independence_dynamically() {
        // A genuine loop-carried flow: a[i] depends on a[i-1].
        let src = "program t\nproc main() {\n real a[16]\n int i\n a[1] = 1\n do 1 i = 2, 16 {\n a[i] = a[i - 1] + 1\n }\n print a[16]\n}";
        let p = parse_program(src).unwrap();
        let ex = Explorer::new(&p, vec![]).unwrap();
        let res = check_assertion(
            &ex,
            &suif_analysis::Assertion::Independent {
                loop_name: "main/1".into(),
                var: "a".into(),
            },
        );
        assert!(
            matches!(res, CheckResult::Contradicted(_)),
            "recurrence must contradict independence: {res:?}"
        );
    }
}
