//! The SUIF Explorer (Ch. 2): an interactive, interprocedural parallelizer.
//!
//! This crate ties the whole reproduction together — the four components of
//! Fig. 2-2:
//!
//! 1. the **parallelizing compiler** (`suif-analysis`),
//! 2. the **Execution Analyzers** (`suif-dynamic`'s Loop Profile Analyzer and
//!    Dynamic Dependence Analyzer, §2.5),
//! 3. the **visualization** (a text codeview standing in for Rivet, §2.7),
//! 4. the **Parallelization Guru** (§2.6) with its coverage/granularity
//!    metrics, ranked target-loop list, slice presentation (Ch. 3), and the
//!    assertion checker (§2.8).
//!
//! The entry point is [`Explorer`]: it compiles, auto-parallelizes, profiles
//! a sequential run, runs the dynamic dependence analyzer (aware of the
//! compiler's reductions and induction variables), and then supports the
//! interactive cycle: inspect guru targets → view slices → assert → check →
//! re-parallelize.

#![warn(missing_docs)]

pub mod checker;
pub mod codeview;
pub mod explorer;
pub mod guru;

pub use checker::{check_assertion, CheckResult};
pub use codeview::{codeview, source_view};
pub use explorer::{Explorer, ExplorerError};
pub use guru::{GuruReport, TargetLoop};
