//! The application kernels of the Ch. 4/5 evaluations.

use crate::{BenchProgram, Scale, UserAssertion};

/// `mdg`: molecular-dynamics kernel.  The 90%-of-time `interf/1000` pair
/// loop with the Fig. 4-3 RL/KC/CUT2 pattern (write of `rl(6:9)` guarded by
/// `rs(k+4) <= cut2`, read guarded by `kc == 0`), interprocedural force
/// reductions through `accum`, a potential-energy scalar reduction, and
/// fine-grain auto-parallel inner loops that give high automatic coverage
/// with useless granularity (§4.1).
pub fn mdg(scale: Scale) -> BenchProgram {
    let (nmol, steps) = match scale {
        Scale::Test => (24, 2),
        Scale::Bench => (120, 3),
    };
    let n3 = 3 * nmol;
    let source = format!(
        r#"program mdg
const nmol = {nmol}
const n3 = {n3}
const steps = {steps}
proc initia() {{
  common /coord/ real x[n3], real vh[n3]
  int i
  do 100 i = 1, n3 {{
    x[i] = sin(float(i) * 0.37) * 5.0 + 10.0
    vh[i] = cos(float(i) * 0.11) * 0.01
  }}
}}
proc predic() {{
  common /coord/ real x[n3], real vh[n3]
  int i
  do 200 i = 1, n3 {{
    x[i] = x[i] + vh[i]
  }}
}}
proc kineti() {{
  common /coord/ real x[n3], real vh[n3]
  common /ener/ real ekin, real epot
  int i
  do 300 i = 1, n3 {{
    ekin = ekin + vh[i] * vh[i]
  }}
}}
proc accum(real f[*], real g1) {{
  f[1] = f[1] + g1
  f[2] = f[2] + g1 * 0.5
  f[3] = f[3] + g1 * 0.25
}}
proc interf() {{
  common /coord/ real x[n3], real vh[n3]
  common /forces/ real f[n3]
  common /ener/ real ekin, real epot
  real rs[9], rl[14]
  real cut2, g
  int i, j, k, kc
  cut2 = 10.5
  do 1000 i = 1, nmol - 1 {{
    do 1100 j = i + 1, nmol {{
      kc = 0
      do 1110 k = 1, 9 {{
        rs[k] = abs(x[(i - 1) * 3 + mod(k - 1, 3) + 1] - x[(j - 1) * 3 + mod(k - 1, 3) + 1]) + float(k) * 1.1
        if rs[k] > cut2 {{
          kc = kc + 1
        }}
      }}
      if kc != 9 {{
        do 1130 k = 2, 5 {{
          if rs[k + 4] <= cut2 {{
            rl[k + 4] = rs[k + 4] * 0.3
          }}
        }}
        if kc == 0 {{
          g = 0
          do 1140 k = 11, 14 {{
            g = g + rl[k - 5]
          }}
          epot = epot + g
          call accum(f[(i - 1) * 3 + 1], g)
          call accum(f[(j - 1) * 3 + 1], g * 0.5)
        }}
      }}
    }}
  }}
}}
proc main() {{
  common /coord/ real x[n3], real vh[n3]
  common /forces/ real f[n3]
  common /ener/ real ekin, real epot
  int step, i
  real fsum
  call initia()
  do 10 step = 1, steps {{
    call predic()
    call interf()
    call kineti()
  }}
  fsum = 0
  do 20 i = 1, n3 {{
    fsum = fsum + f[i] * f[i]
  }}
  print epot, ekin, fsum
}}
"#
    );
    BenchProgram {
        name: "mdg",
        description: "Molecular dynamics model",
        source,
        input: vec![],
        assertions: vec![UserAssertion::priv_("interf/1000", "rl")],
    }
}

/// `hydro`: 2-D Lagrangian hydrodynamics kernel.  `vsetuv/85` carries the
/// Fig. 4-5 `dkrc` pattern (conditionally defined `k1p1`, upwards-exposed
/// `dkrc(1)`), the Fig. 5-1 `CALL init(aif3(k1), …)` sub-array writes, and
/// several row/column sweep loops whose scratch arrays need privatization
/// assertions — six user-parallelized loops in the case study (§4.2).
pub fn hydro(scale: Scale) -> BenchProgram {
    let (kmax, lmax, steps) = match scale {
        Scale::Test => (16, 16, 2),
        Scale::Bench => (72, 72, 3),
    };
    let msize = kmax * lmax;
    let kmax2 = kmax + 2;
    let source = format!(
        r#"program hydro
const kmax = {kmax}
const lmax = {lmax}
const msize = {msize}
const kmax2 = {kmax2}
const steps = {steps}
proc setbnd() {{
  common /bnds/ int k_lower[lmax], int k_upper[lmax], int l_lower[kmax], int l_upper[kmax], int k_mid[lmax]
  int l, k
  do 10 l = 1, lmax {{
    k_lower[l] = 1 + mod(l, 3)
    k_upper[l] = kmax - 1 - mod(l, 2)
    k_mid[l] = k_upper[l] - mod(l, 4)
  }}
  do 20 k = 1, kmax {{
    l_lower[k] = 1 + mod(k, 2)
    l_upper[k] = lmax - 1 - mod(k, 3)
  }}
}}
proc setfld() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  int k, l
  do 30 l = 1, lmax {{
    do 31 k = 1, kmax {{
      u[k, l] = sin(float(k * 7 + l) * 0.13) + 2.0
      v[k, l] = 0
      p[k, l] = cos(float(k + l * 5) * 0.21) + 3.0
      q[k, l] = 0
    }}
  }}
}}
proc init(real w[*], int n) {{
  int j
  do 5 j = 1, n {{
    w[j] = 0.5
  }}
}}
proc fvsr(real w[*], int n) {{
  int j
  do 6 j = 1, n {{
    w[j] = w[j] * 0.9 + 0.1
  }}
}}
proc vmeos(real row[*], int n) {{
  int j
  do 7 j = 1, n {{
    row[j] = row[j] * 0.98 + 0.02 * sqrt(abs(row[j]) + 1.0)
  }}
}}
proc sesind(real a[*], real b[*], int n) {{
  real work[kmax2]
  int j
  call init(work, n)
  do 8 j = 1, n {{
    work[j] = a[j] * 0.5 + b[j] * 0.5
  }}
  do 9 j = 1, n {{
    b[j] = work[j]
  }}
}}
proc update() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  common /scr/ real work2[kmax2]
  common /bnds/ int k_lower[lmax], int k_upper[lmax], int l_lower[kmax], int l_upper[kmax], int k_mid[lmax]
  int l, k
  do 1000 l = 1, lmax {{
    call vmeos(p[1, l], kmax)
    call vmeos(q[1, l], kmax)
    call init(work2, k_upper[l])
    call fvsr(work2, k_upper[l])
    do 1010 k = 1, kmax {{
      u[k, l] = u[k, l] + work2[min(k, k_upper[l])] * 0.001
    }}
    call sesind(u[1, l], v[1, l], kmax)
  }}
}}
proc vsetuv() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  common /bnds/ int k_lower[lmax], int k_upper[lmax], int l_lower[kmax], int l_upper[kmax], int k_mid[lmax]
  real dkrc[kmax2], aif3[kmax2]
  int l, k, k1, k2, k1p1, k2p1, k3
  dkrc[1] = 0.3
  do 85 l = 2, lmax {{
    k1 = k_lower[l]
    k2 = k_upper[l]
    if k1 > 0 {{
      k1p1 = k1
      if k1 == 1 {{
        k1p1 = k1 + 1
      }}
      k2p1 = k2 + 1
      call init(aif3, k2p1)
      do 60 k = k1p1, k2p1 {{
        dkrc[k] = u[k - 1, l] * 0.5 + aif3[k - 1]
      }}
      do 80 k = k1, k2 {{
        v[k, l] = dkrc[k] + dkrc[k + 1]
      }}
    }}
  }}
  do 105 l = 2, lmax {{
    k1 = k_lower[l]
    k2 = k_upper[l]
    k3 = k_mid[l]
    call init(aif3[k1], k2 - k1 + 1)
    do 110 k = k1, k3 {{
      u[k, l] = u[k, l] * 0.99 + aif3[k] * 0.01
    }}
  }}
  do 155 l = 2, lmax {{
    k1 = k_lower[l]
    k2 = k_upper[l]
    do 160 k = k_lower[l], k_upper[l] {{
      dkrc[k] = p[k, l] - q[k, l]
    }}
    do 170 k = k1, k2 {{
      q[k, l] = q[k, l] + dkrc[k] * 0.05
    }}
  }}
}}
proc vqterm() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  common /bnds/ int k_lower[lmax], int k_upper[lmax], int l_lower[kmax], int l_upper[kmax], int k_mid[lmax]
  real wrk[kmax2]
  int k, l, l1, l2
  do 85 k = 2, kmax {{
    l1 = l_lower[k]
    l2 = l_upper[k]
    call init(wrk[l1], l2 - l1 + 1)
    call fvsr(wrk[l1], l_upper[k] - l1 + 1)
    do 80 l = l1 + 1, l2 {{
      q[k, l] = v[k, l] - v[k, l - 1] + wrk[l - l1 + 1] * 0.01
    }}
  }}
}}
proc vh2200() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  common /bnds/ int k_lower[lmax], int k_upper[lmax], int l_lower[kmax], int l_upper[kmax], int k_mid[lmax]
  real hold[kmax2]
  int l, k, k1, k2
  do 1000 l = 2, lmax - 1 {{
    k1 = k_lower[l]
    k2 = k_upper[l]
    do 1010 k = k_lower[l], k_upper[l] {{
      hold[k] = p[k, l] * 0.3 + u[k, l] * 0.7
    }}
    do 1020 k = k1, k2 {{
      p[k, l] = hold[k]
    }}
  }}
}}
proc vsetgc() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  common /bnds/ int k_lower[lmax], int k_upper[lmax], int l_lower[kmax], int l_upper[kmax], int k_mid[lmax]
  real gc[kmax2]
  int l, k, k1, k2
  do 200 l = 2, lmax {{
    k1 = k_lower[l]
    k2 = k_upper[l]
    do 210 k = k_lower[l], k_upper[l] {{
      gc[k] = v[k, l] * v[k, l]
    }}
    do 220 k = k1, k2 {{
      v[k, l] = v[k, l] - gc[k] * 0.01
    }}
  }}
}}
proc main() {{
  common /mesh/ real u[kmax, lmax], real v[kmax, lmax], real p[kmax, lmax], real q[kmax, lmax]
  int step, k, l
  real chk
  call setbnd()
  call setfld()
  do 1 step = 1, steps {{
    call update()
    call vsetuv()
    call vqterm()
    call vh2200()
    call vsetgc()
  }}
  chk = 0
  do 2 l = 1, lmax {{
    do 3 k = 1, kmax {{
      chk = chk + u[k, l] + v[k, l] + p[k, l] + q[k, l]
    }}
  }}
  print chk
}}
"#
    );
    BenchProgram {
        name: "hydro",
        description: "2-D Lagrangian hydrodynamics",
        source,
        input: vec![],
        assertions: vec![
            UserAssertion::priv_("vsetuv/85", "dkrc"),
            UserAssertion::priv_("vsetuv/85", "aif3"),
            UserAssertion::priv_("vsetuv/105", "aif3"),
            UserAssertion::priv_("vsetuv/155", "dkrc"),
            UserAssertion::priv_("vqterm/85", "wrk"),
            UserAssertion::priv_("vh2200/1000", "hold"),
            UserAssertion::priv_("vsetgc/200", "gc"),
            UserAssertion::priv_("update/1000", "work2"),
        ],
    }
}

/// `arc3d`: 3-D implicit solver kernel.  `stepf3d/701`'s `SN` scalar is
/// initialized under *data-dependent* conditions covering the whole
/// iteration space — only the user can see that, and privatizing `SN` (one
/// of the three privatizable-scalar assertions of Fig. 4-9) unlocks the
/// loop (§4.4.1).
pub fn arc3d(scale: Scale) -> BenchProgram {
    let (jmax, lm, steps) = match scale {
        Scale::Test => (24, 12, 2),
        Scale::Bench => (96, 48, 3),
    };
    let jm3 = jmax * 3;
    let source = format!(
        r#"program arc3d
const jmax = {jmax}
const lm = {lm}
const jm3 = {jm3}
const steps = {steps}
proc setup() {{
  common /flow/ real s[jmax, 3, lm], real r[jmax, 3, lm]
  common /kind/ int ntype[5]
  int j, n, l
  do 10 l = 1, lm {{
    do 11 n = 1, 3 {{
      do 12 j = 1, jmax {{
        s[j, n, l] = sin(float(j + n * 3 + l * 7) * 0.19) + 1.5
        r[j, n, l] = 0
      }}
    }}
  }}
  ntype[3] = 1
  ntype[4] = 1
  ntype[5] = 1
}}
proc filter(real col[*], int n) {{
  real t[jmax]
  int j
  do 20 j = 1, n {{
    t[j] = col[j] * 0.25
  }}
  do 21 j = 2, n {{
    col[j] = col[j] * 0.5 + t[j - 1] + t[j]
  }}
}}
proc filter3d() {{
  common /flow/ real s[jmax, 3, lm], real r[jmax, 3, lm]
  int l, n
  do 701 l = 1, lm {{
    do 702 n = 1, 3 {{
      call filter(s[1, n, l], jmax)
    }}
  }}
}}
proc stepf3d() {{
  common /flow/ real s[jmax, 3, lm], real r[jmax, 3, lm]
  common /kind/ int ntype[5]
  real sn
  real smth[jmax]
  int l, n, j
  do 600 l = 2, lm {{
    do 601 j = 1, jmax {{
      smth[j] = s[j, 1, l] * 0.5 + s[j, 1, l - 1] * 0.5
    }}
    do 602 j = 1, jmax {{
      r[j, 1, l] = r[j, 1, l] + smth[j] * 0.01
    }}
  }}
  do 701 l = 2, lm {{
    do 300 n = 3, 5 {{
      if ntype[n] == 1 {{
        sn = float(n) * 0.2
      }}
      do 310 j = 1, jmax {{
        r[j, n - 2, l] = s[j, n - 2, l] * sn
      }}
    }}
  }}
  do 702 l = 2, lm {{
    do 320 n = 3, 5 {{
      if ntype[n] == 1 {{
        sn = float(n) * 0.1
      }}
      do 330 j = 1, jmax {{
        s[j, n - 2, l] = s[j, n - 2, l] + r[j, n - 2, l] * sn
      }}
    }}
  }}
  do 801 l = 2, lm {{
    do 340 n = 3, 5 {{
      if ntype[n] == 1 {{
        sn = 0.05
      }}
      do 350 j = 1, jmax {{
        r[j, n - 2, l] = r[j, n - 2, l] * (1.0 - sn)
      }}
    }}
  }}
}}
proc specw() {{
  common /spect/ real sw[jmax, 3]
  int j, n
  do 1 n = 1, 3 {{
    do 2 j = 1, jmax {{
      sw[j, n] = float(j * n) * 0.01
    }}
  }}
}}
proc specr() {{
  common /spect/ real sw[jmax, 3]
  common /chk2/ real sacc
  int j, n
  do 1 n = 1, 3 {{
    do 2 j = 1, jmax {{
      sacc = sacc + sw[j, n]
    }}
  }}
}}
proc filtw() {{
  common /spect/ real sf[jm3]
  int j
  do 1 j = 1, jm3 {{
    sf[j] = float(j) * 0.002
  }}
}}
proc filtr() {{
  common /spect/ real sf[jm3]
  common /chk2/ real sacc
  int j
  do 1 j = 1, jm3 {{
    sacc = sacc + sf[j] * 0.5
  }}
}}
proc main() {{
  common /flow/ real s[jmax, 3, lm], real r[jmax, 3, lm]
  common /chk2/ real sacc
  int step, j, n, l
  real chk
  call setup()
  do 1 step = 1, steps {{
    call filter3d()
    call stepf3d()
    call specw()
    call specr()
    call filtw()
    call filtr()
  }}
  chk = 0
  do 2 l = 1, lm {{
    do 3 n = 1, 3 {{
      do 4 j = 1, jmax {{
        chk = chk + s[j, n, l] + r[j, n, l]
      }}
    }}
  }}
  print chk + sacc
}}
"#
    );
    BenchProgram {
        name: "arc3d",
        description: "3-D Euler equations solver",
        source,
        input: vec![],
        assertions: vec![
            UserAssertion::priv_("stepf3d/701", "sn"),
            UserAssertion::priv_("stepf3d/702", "sn"),
            UserAssertion::priv_("stepf3d/801", "sn"),
        ],
    }
}

/// `flo88`: transonic-flow kernel.  Each `psmoo`/`eflux`/`dflux` pass is a
/// `k`-sweep over independent planes with 2-D scratch arrays reused per
/// plane (the Fig. 5-4 structure).  With `contract_variant = false`, sweeps
/// run to `IE - 1` where `IE` is read from the input file (`IE = IL + 1`, a
/// relation only the user knows, §4.4.1), so privatizing the scratch arrays
/// needs assertions.  With `contract_variant = true`, bounds are constants
/// (the affine-partitioned Fig. 5-11(b) form): the compiler privatizes the
/// temporaries itself and can *contract* them (Fig. 5-11(c)).
pub fn flo88(scale: Scale, contract_variant: bool) -> BenchProgram {
    let (il, jl, kl, steps) = match scale {
        Scale::Test => (12, 10, 6, 2),
        Scale::Bench => (40, 32, 20, 2),
    };
    let ilp = il + 1;
    // The user variant guards the temporary writes with an always-true but
    // statically opaque condition (the paper's compiler failed on the
    // IL/IE input relation; ours needs genuine static may-exposure — see
    // the doc comment).
    let (guard_open, guard_close) = if contract_variant {
        ("", "")
    } else {
        ("        if abs(t[i, j]) >= 0.0 {\n  ", "        }\n")
    };
    let (guard2_open, guard2_close) = if contract_variant {
        ("", "")
    } else {
        ("        if abs(w[i, j, k]) >= 0.0 {\n  ", "        }\n")
    };
    let input: Vec<f64> = vec![];
    // One smoothing pass (a k-sweep over independent planes with 2-D
    // temporaries reused per plane — the Fig. 5-4 structure).
    let psmoo_pass = |label: u32| {
        format!(
            r#"  do {label} k = 2, kl {{
    do {b0} j = 2, jl {{
      d[1, j] = 0
      do {b1} i = 2, il {{
        t[i, j] = d[i - 1, j] * 0.5 + w[i, j, k]
{guard_open}        d[i, j] = t[i, j] * 0.8
{guard_close}      }}
      do {b2} i = il, 2, -1 {{
        w[i, j, k] = w[i, j, k] + d[i, j] * 0.1
      }}
    }}
  }}
"#,
            b0 = label + 1,
            b1 = label + 2,
            b2 = label + 3,
            guard_open = guard_open,
            guard_close = guard_close,
        )
    };
    let passes = if contract_variant {
        psmoo_pass(50)
    } else {
        format!("{}{}{}", psmoo_pass(50), psmoo_pass(100), psmoo_pass(150))
    };
    let source = format!(
        r#"program flo88
const il = {il}
const ilp = {ilp}
const jl = {jl}
const kl = {kl}
const steps = {steps}
proc setw() {{
  common /fld/ real w[ilp, jl, kl], real fw[ilp, jl, kl]
  int i, j, k
  do 10 k = 1, kl {{
    do 11 j = 1, jl {{
      do 12 i = 1, ilp {{
        w[i, j, k] = sin(float(i * 3 + j + k * 5) * 0.17) + 2.0
        fw[i, j, k] = 0
      }}
    }}
  }}
}}
proc psmoo() {{
  common /fld/ real w[ilp, jl, kl], real fw[ilp, jl, kl]
  real d[ilp, jl], t[ilp, jl]
  int i, j, k
{passes}}}
proc eflux() {{
  common /fld/ real w[ilp, jl, kl], real fw[ilp, jl, kl]
  real fs[ilp]
  int i, j, k
  do 50 k = 2, kl {{
    do 51 j = 2, jl - 1 {{
      do 52 i = 1, il {{
{guard2_open}        fs[i] = w[i, j + 1, k] - w[i, j - 1, k]
{guard2_close}      }}
      do 53 i = 2, il {{
        fw[i, j, k] = fw[i, j, k] + fs[i] - fs[i - 1]
      }}
    }}
  }}
}}
proc dflux() {{
  common /fld/ real w[ilp, jl, kl], real fw[ilp, jl, kl]
  real dg[ilp]
  int i, j, k
  do 30 k = 2, kl {{
    do 31 j = 2, jl - 1 {{
      do 32 i = 2, il {{
{guard2_open}        dg[i] = w[i, j, k] - w[i - 1, j, k]
{guard2_close}      }}
      do 33 i = 2, il {{
        fw[i, j, k] = fw[i, j, k] + dg[i] * 0.5
      }}
    }}
  }}
  do 50 k = 2, kl {{
    do 51 j = 2, jl - 1 {{
      do 52 i = 2, il {{
{guard2_open}        dg[i] = fw[i, j, k] * 0.5
{guard2_close}      }}
      do 53 i = 2, il {{
        w[i, j, k] = w[i, j, k] + dg[i] * 0.1
      }}
    }}
  }}
  do 70 k = 2, kl {{
    do 71 j = 2, jl - 1 {{
      do 72 i = 2, il {{
{guard2_open}        dg[i] = w[i, j, k] * 0.25
{guard2_close}      }}
      do 73 i = 2, il {{
        fw[i, j, k] = fw[i, j, k] * 0.9 + dg[i] * 0.1
      }}
    }}
  }}
}}
proc main() {{
  common /fld/ real w[ilp, jl, kl], real fw[ilp, jl, kl]
  int step, i, j, k
  real chk
  call setw()
  do 1 step = 1, steps {{
    call psmoo()
    call eflux()
    call dflux()
  }}
  chk = 0
  do 2 k = 1, kl {{
    do 3 j = 1, jl {{
      do 4 i = 1, ilp {{
        chk = chk + w[i, j, k] + fw[i, j, k]
      }}
    }}
  }}
  print chk
}}
"#
    );
    let assertions = if contract_variant {
        vec![]
    } else {
        vec![
            UserAssertion::priv_("psmoo/50", "d"),
            UserAssertion::priv_("psmoo/100", "d"),
            UserAssertion::priv_("psmoo/150", "d"),
            UserAssertion::priv_("eflux/50", "fs"),
            UserAssertion::priv_("dflux/30", "dg"),
            UserAssertion::priv_("dflux/50", "dg"),
            UserAssertion::priv_("dflux/70", "dg"),
        ]
    };
    BenchProgram {
        name: if contract_variant { "flo88c" } else { "flo88" },
        description: "Wing-body analysis solving transonic flow",
        source,
        input,
        assertions,
    }
}

/// `hydro2d`: astrophysics kernel with the Fig. 5-9 `varh` pattern: five
/// common blocks reused under different shapes in disjoint phases — the
/// full liveness analysis splits all five (Fig. 5-10).
pub fn hydro2d(scale: Scale) -> BenchProgram {
    let (mp, np, steps) = match scale {
        Scale::Test => (12, 8, 3),
        Scale::Bench => (64, 48, 4),
    };
    let sz = mp * np;
    let sz2 = 2 * sz;
    // Five blocks varh1..varh5, each with a 2-D producer/consumer phase and
    // a flat-view producer/consumer phase.
    let mut blocks = String::new();
    for b in 1..=5 {
        blocks.push_str(&format!(
            r#"proc tistep{b}() {{
  common /varh{b}/ real vz{b}[mp, np]
  common /acc/ real chk
  int i, j
  do 1 j = 1, np {{
    do 2 i = 1, mp {{
      chk = chk + vz{b}[i, j]
    }}
  }}
}}
proc vps{b}() {{
  common /varh{b}/ real vz{b}[mp, np]
  int i, j
  do 1 j = 1, np {{
    do 2 i = 1, mp {{
      vz{b}[i, j] = float(i + j * {b}) * 0.01
    }}
  }}
}}
proc trans{b}() {{
  common /varh{b}/ real vz1_{b}[sz]
  int i
  do 1 i = 1, sz {{
    vz1_{b}[i] = float(i) * 0.002 + float({b})
  }}
}}
proc fct{b}() {{
  common /varh{b}/ real vz1_{b}[sz]
  common /acc/ real chk
  int i
  do 1 i = 1, sz {{
    chk = chk + vz1_{b}[i] * 0.5
  }}
}}
"#
        ));
    }
    let mut phase_calls = String::new();
    for b in 1..=5 {
        phase_calls.push_str(&format!(
            "    call tistep{b}()\n    call trans{b}()\n    call fct{b}()\n    call vps{b}()\n"
        ));
    }
    let mut init_calls = String::new();
    for b in 1..=5 {
        init_calls.push_str(&format!("  call vps{b}()\n"));
    }
    let source = format!(
        r#"program hydro2d
const mp = {mp}
const np = {np}
const sz = {sz}
const sz2 = {sz2}
const steps = {steps}
{blocks}proc stat() {{
  common /acc/ real chk
  common /wrk/ real half[sz2]
  int i
  do 1 i = 1, sz {{
    half[i] = float(i) * 0.003
  }}
  do 2 i = sz + 1, sz2 {{
    chk = chk + half[i] * 0.0001
  }}
}}
proc order() {{
  common /acc/ real chk
  real obuf[mp]
  int i
  do 1 i = 1, mp {{
    chk = chk + obuf[i] * 0.00001
  }}
  do 2 i = 1, mp {{
    obuf[i] = float(i) * 0.002
  }}
}}
proc main() {{
  common /acc/ real chk
  int icnt
  chk = 0
{init_calls}  do 100 icnt = 1, steps {{
{phase_calls}    call stat()
    call order()
  }}
  print chk
}}
"#
    );
    BenchProgram {
        name: "hydro2d",
        description: "Astrophysical program using Navier Stokes equations",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// `wave5`: particle/field kernel whose newly-parallelized loops are small
/// (their parallel execution is suppressed at run time, §5.4) and whose
/// scratch arrays are dead at loop exits — liveness finds them, speedup
/// stays flat.
pub fn wave5(scale: Scale) -> BenchProgram {
    let (n, steps) = match scale {
        Scale::Test => (16, 2),
        Scale::Bench => (48, 3),
    };
    let n2 = 2 * n;
    let source = format!(
        r#"program wave5
const n = {n}
const n2 = {n2}
const steps = {steps}
proc field(real e[*], int m) {{
  real tmp[n]
  int i, span
  span = m - 1
  do 10 i = 1, span {{
    tmp[i] = e[i] + e[i + 1]
  }}
  do 11 i = 1, span {{
    e[i] = tmp[i] * 0.5
  }}
}}
proc smooth(real e[*], int m) {{
  real buf[n]
  int i, lim
  lim = m - 2
  do 20 i = 2, lim {{
    buf[i] = e[i - 1] * 0.25 + e[i] * 0.5 + e[i + 1] * 0.25
  }}
  do 21 i = 2, lim {{
    e[i] = buf[i]
  }}
}}
proc push() {{
  common /fields/ real ex[n], real ey[n]
  common /parts/ real px[n], real pv[n]
  real acc[n]
  int i, j
  do 30 i = 1, n {{
    acc[i] = 0
  }}
  do 31 i = 1, n {{
    j = mod(i * 3, n) + 1
    pv[i] = pv[i] + ex[j] * 0.01
    px[i] = px[i] + pv[i]
  }}
  do 32 i = 1, n {{
    ey[i] = ey[i] * 0.99 + acc[i]
  }}
}}
proc diag() {{
  common /fields/ real ex[n], real ey[n]
  common /stats/ real hbuf[n2], real dacc
  int i
  do 40 i = 1, n {{
    hbuf[i] = ex[i] * ex[i]
  }}
  do 41 i = n + 1, n2 {{
    dacc = dacc + hbuf[i]
  }}
}}
proc prewrite() {{
  common /fields/ real ex[n], real ey[n]
  common /stats/ real hbuf[n2], real dacc
  real sbuf[n]
  int i
  do 45 i = 1, n {{
    dacc = dacc + sbuf[i] * 0.001
  }}
  do 46 i = 1, n {{
    sbuf[i] = ex[i] + ey[i]
  }}
}}
proc scat() {{
  common /fields/ real ex[n], real ey[n]
  real tmp[n]
  int i, j, m
  do 50 i = 1, n {{
    m = mod(i, 5) + 1
    do 51 j = 1, m {{
      tmp[j] = float(i + j) * 0.01
    }}
    do 52 j = 1, m {{
      ey[i] = ey[i] + tmp[j]
    }}
  }}
}}
proc gather() {{
  common /fields/ real ex[n], real ey[n]
  common /stats/ real hbuf[n2], real dacc
  real tmp[n2]
  int i, j
  do 60 i = 1, n {{
    do 62 j = 1, i {{
      tmp[j] = ex[i] * float(j) * 0.1
    }}
    do 63 j = 1, i {{
      ey[i] = ey[i] + tmp[j] * 0.001
    }}
  }}
  do 61 i = n + 1, n2 {{
    dacc = dacc + tmp[i] * 0.0001
  }}
}}
proc modew() {{
  common /modes/ real mw[n, 2]
  int i, k
  do 1 k = 1, 2 {{
    do 2 i = 1, n {{
      mw[i, k] = float(i + k) * 0.004
    }}
  }}
}}
proc moder() {{
  common /modes/ real mw[n, 2]
  common /stats/ real hbuf[n2], real dacc
  int i, k
  do 1 k = 1, 2 {{
    do 2 i = 1, n {{
      dacc = dacc + mw[i, k] * 0.01
    }}
  }}
}}
proc flatw() {{
  common /modes/ real mf[n2]
  int i
  do 1 i = 1, n2 {{
    mf[i] = float(i) * 0.001
  }}
}}
proc flatr() {{
  common /modes/ real mf[n2]
  common /stats/ real hbuf[n2], real dacc
  int i
  do 1 i = 1, n2 {{
    dacc = dacc + mf[i] * 0.02
  }}
}}
proc main() {{
  common /fields/ real ex[n], real ey[n]
  common /parts/ real px[n], real pv[n]
  common /stats/ real hbuf[n2], real dacc
  int step, i
  real chk
  do 1 i = 1, n {{
    ex[i] = sin(float(i) * 0.3)
    ey[i] = cos(float(i) * 0.4)
    px[i] = float(i)
    pv[i] = 0.001 * float(i)
  }}
  do 2 step = 1, steps {{
    call field(ex, n)
    call field(ey, n)
    call smooth(ex, n)
    call smooth(ey, n)
    call push()
    call diag()
    call prewrite()
    call scat()
    call gather()
    call modew()
    call moder()
    call flatw()
    call flatr()
  }}
  chk = dacc
  do 3 i = 1, n {{
    chk = chk + ex[i] + ey[i] + px[i] + pv[i]
  }}
  print chk
}}
"#
    );
    BenchProgram {
        name: "wave5",
        description: "Maxwell's equations and particle equations of motion",
        source,
        input: vec![],
        assertions: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_parse() {
        for p in [
            mdg(Scale::Test),
            hydro(Scale::Test),
            arc3d(Scale::Test),
            flo88(Scale::Test, false),
            flo88(Scale::Test, true),
            hydro2d(Scale::Test),
            wave5(Scale::Test),
        ] {
            p.parse();
        }
    }
}
