//! MiniF reproductions of the benchmark applications of the SUIF Explorer
//! evaluation (Ch. 4–6).
//!
//! These are not the physics codes — they are kernels reproducing the *named
//! loops and dependence patterns* the evaluation discusses (see DESIGN.md's
//! substitution table):
//!
//! * [`mdg`] — the `interf/1000` RL/KC/CUT2 conditional-privatization
//!   pattern (Fig. 4-3), interprocedural force-array reductions, fine-grain
//!   auto-parallel inner loops;
//! * [`hydro`] — `vsetuv/85`'s conditionally-based `dkrc` ranges (Fig. 4-5),
//!   the `CALL init(aif3(k1), …)` sub-array pattern (Fig. 5-1), row/column
//!   loops with symbolic bounds from index arrays;
//! * [`arc3d`] — the `stepf3d/701` data-dependent `SN` scalar-privatization
//!   pattern (§4.4.1);
//! * [`flo88`] — the `psmoo` recurrence (Fig. 5-4/5-11) with
//!   input-dependent bounds (`IE = IL + 1`, §4.4.1) and the
//!   contraction-ready constant-bound variant;
//! * [`hydro2d`] — the `varh` common-block live-range-splitting pattern
//!   (Fig. 5-9) with five splittable blocks (Fig. 5-10);
//! * [`wave5`] — many small liveness-privatizable loops whose parallel
//!   execution the runtime suppresses (§5.4);
//! * [`reductions`] — the reduction suite standing in for the SPEC92 / NAS /
//!   Perfect programs of Fig. 6-2/6-3 (`bdna`, `cgm`, `ora`, `mdljdp2`,
//!   `dyfesm`, `trfd`).

#![warn(missing_docs)]

pub mod apps;
pub mod reductions;

/// How big to build a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small: fast enough for unit/integration tests.
    Test,
    /// Large: meaningful wall-clock for the speedup figures.
    Bench,
}

/// A user assertion a case study applies (kept string-typed so this crate
/// only depends on `suif-ir`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserAssertion {
    /// `true` = privatizable, `false` = independent.
    pub privatize: bool,
    /// Loop name (`proc/label`).
    pub loop_name: String,
    /// Variable name in the loop's procedure.
    pub var: String,
}

impl UserAssertion {
    /// Privatization assertion.
    pub fn priv_(loop_name: &str, var: &str) -> UserAssertion {
        UserAssertion {
            privatize: true,
            loop_name: loop_name.into(),
            var: var.into(),
        }
    }

    /// Independence assertion.
    pub fn indep(loop_name: &str, var: &str) -> UserAssertion {
        UserAssertion {
            privatize: false,
            loop_name: loop_name.into(),
            var: var.into(),
        }
    }
}

/// One benchmark program instance.
#[derive(Clone, Debug)]
pub struct BenchProgram {
    /// Program name.
    pub name: &'static str,
    /// One-line description (the Fig. 4-1 / 5-5 "program description").
    pub description: &'static str,
    /// MiniF source.
    pub source: String,
    /// `read` input values.
    pub input: Vec<f64>,
    /// The assertions the case-study user supplies (§4.1.4/§4.2.4).
    pub assertions: Vec<UserAssertion>,
}

impl BenchProgram {
    /// Parse the source.
    pub fn parse(&self) -> suif_ir::Program {
        suif_ir::parse_program(&self.source)
            .unwrap_or_else(|e| panic!("benchmark `{}` failed to parse: {e}", self.name))
    }

    /// Number of non-empty source lines (the "No. of lines" program-info
    /// column).
    pub fn num_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// The four Ch. 4 applications in paper order.
pub fn ch4_apps(scale: Scale) -> Vec<BenchProgram> {
    vec![
        apps::mdg(scale),
        apps::arc3d(scale),
        apps::hydro(scale),
        apps::flo88(scale, false),
    ]
}

/// The five Ch. 5 liveness-suite programs (Fig. 5-5 order).
pub fn ch5_apps(scale: Scale) -> Vec<BenchProgram> {
    vec![
        apps::hydro(scale),
        apps::flo88(scale, true),
        apps::arc3d(scale),
        apps::wave5(scale),
        apps::hydro2d(scale),
    ]
}

/// The Ch. 6 reduction suite.
pub fn ch6_apps(scale: Scale) -> Vec<BenchProgram> {
    reductions::suite(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_parse_and_run_shapes() {
        for scale in [Scale::Test] {
            for prog in ch4_apps(scale)
                .into_iter()
                .chain(ch5_apps(scale))
                .chain(ch6_apps(scale))
            {
                let p = prog.parse();
                assert!(!p.procedures.is_empty(), "{}", prog.name);
                assert!(prog.num_lines() > 12, "{} too small", prog.name);
            }
        }
    }
}
