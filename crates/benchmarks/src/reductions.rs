//! The Ch. 6 reduction suite: kernels standing in for the SPEC92 / NAS /
//! Perfect Club programs on which reductions have an impact (Fig. 6-3/6-5).
//!
//! Operation-type distribution follows Fig. 6-2: sums dominate, with some
//! MIN/MAX reductions and a product.

use crate::{BenchProgram, Scale};

/// `bdna`-like: regular array-region reductions inside a coarse loop
/// (`FAX(IA) = FAX(IA) + …` over `1:NATOMS` of a 2000-element array —
/// the §6.3.3 region-minimization example) plus indirect `FOX(IND(J))`
/// updates (§6.3.5's example).
pub fn bdna(scale: Scale) -> BenchProgram {
    let (nsp, natoms, big) = match scale {
        Scale::Test => (40, 24, 400),
        Scale::Bench => (400, 64, 2000),
    };
    let source = format!(
        r#"program bdna
const nsp = {nsp}
const natoms = {natoms}
const big = {big}
proc main() {{
  real fax[big], fox[big], foxp[nsp], w[nsp]
  int ind[nsp]
  int i, ia, j
  real chk
  do 5 i = 1, nsp {{
    w[i] = sin(float(i) * 0.21) + 1.5
    foxp[i] = cos(float(i) * 0.13)
    ind[i] = mod(i * 17, big) + 1
  }}
  do 10 i = 1, nsp {{
    do 20 ia = 1, natoms {{
      fax[ia] = fax[ia] + w[i] * float(ia) * 0.001
    }}
  }}
  do 30 j = 1, nsp {{
    fox[ind[j]] = fox[ind[j]] + foxp[j]
  }}
  chk = 0
  do 40 i = 1, big {{
    chk = chk + fax[i] + fox[i]
  }}
  print chk
}}
"#
    );
    BenchProgram {
        name: "bdna",
        description: "Molecular dynamics of DNA (array-region and indirect reductions)",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// `cgm`-like: sparse conjugate-gradient step — dot products (scalar sums)
/// and a sparse `y(row(k)) += …` histogram-style reduction.
pub fn cgm(scale: Scale) -> BenchProgram {
    let (n, nz, iters) = match scale {
        Scale::Test => (32, 128, 4),
        Scale::Bench => (256, 2048, 8),
    };
    let source = format!(
        r#"program cgm
const n = {n}
const nz = {nz}
const iters = {iters}
proc main() {{
  real x[n], y[n], aval[nz]
  int rowi[nz], coli[nz]
  int k, it, i
  real dot, nrm
  do 5 i = 1, n {{
    x[i] = sin(float(i) * 0.37) + 1.2
    y[i] = 0
  }}
  do 6 k = 1, nz {{
    aval[k] = cos(float(k) * 0.11) * 0.5
    rowi[k] = mod(k * 7, n) + 1
    coli[k] = mod(k * 13, n) + 1
  }}
  do 10 it = 1, iters {{
    do 20 i = 1, n {{
      y[i] = 0
    }}
    do 30 k = 1, nz {{
      y[rowi[k]] = y[rowi[k]] + aval[k] * x[coli[k]]
    }}
    dot = 0
    nrm = 0
    do 40 i = 1, n {{
      dot = dot + x[i] * y[i]
      nrm = nrm + y[i] * y[i]
    }}
    do 50 i = 1, n {{
      x[i] = x[i] + y[i] / (1.0 + nrm) * 0.1
    }}
  }}
  print dot, nrm
}}
"#
    );
    BenchProgram {
        name: "cgm",
        description: "Sparse conjugate gradient (sparse and dot-product reductions)",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// `ora`-like: ray tracing — scalar sum and *product* reductions.
pub fn ora(scale: Scale) -> BenchProgram {
    let n = match scale {
        Scale::Test => 400,
        Scale::Bench => 20000,
    };
    let source = format!(
        r#"program ora
const n = {n}
proc main() {{
  real s, prod, t
  int i
  s = 0
  prod = 1
  do 10 i = 1, n {{
    t = sqrt(abs(sin(float(i) * 0.01)) + 0.5)
    s = s + t
    prod = prod * (1.0 + t * 0.0001)
  }}
  print s, prod
}}
"#
    );
    BenchProgram {
        name: "ora",
        description: "Optical ray tracing (sum and product reductions)",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// `mdljdp2`-like: Lennard-Jones step with MIN/MAX reductions (both the
/// intrinsic form and the `if (e < t) t = e` form of §6.2.2.1) and a force
/// sum.
pub fn mdljdp2(scale: Scale) -> BenchProgram {
    let n = match scale {
        Scale::Test => 300,
        Scale::Bench => 8000,
    };
    let source = format!(
        r#"program mdljdp2
const n = {n}
proc main() {{
  real e[n]
  real emin, emax, etot
  int i
  do 5 i = 1, n {{
    e[i] = sin(float(i) * 0.05) * float(mod(i, 13) + 1)
  }}
  emin = 1000000.0
  emax = -1000000.0
  etot = 0
  do 10 i = 1, n {{
    etot = etot + e[i]
    emin = min(emin, e[i])
    if e[i] > emax {{
      emax = e[i]
    }}
  }}
  print emin, emax, etot
}}
"#
    );
    BenchProgram {
        name: "mdljdp2",
        description: "Molecular dynamics (min/max and sum reductions)",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// `dyfesm`-like: finite-element assembly with an **interprocedural**
/// array reduction — the update happens two calls deep (§6.2.2.4).
pub fn dyfesm(scale: Scale) -> BenchProgram {
    let (nelem, nodes) = match scale {
        Scale::Test => (60, 40),
        Scale::Bench => (1200, 300),
    };
    let source = format!(
        r#"program dyfesm
const nelem = {nelem}
const nodes = {nodes}
proc addpnt(real force[*], int at, real v) {{
  force[at] = force[at] + v
}}
proc element(real force[*], int el) {{
  int na, nb
  real v
  na = mod(el * 3, nodes) + 1
  nb = mod(el * 5, nodes) + 1
  v = sin(float(el) * 0.07) * 0.5
  call addpnt(force, na, v)
  call addpnt(force, nb, -(v))
}}
proc main() {{
  real force[nodes]
  int el, i
  real chk
  do 10 el = 1, nelem {{
    call element(force, el)
  }}
  chk = 0
  do 20 i = 1, nodes {{
    chk = chk + force[i] * force[i]
  }}
  print chk
}}
"#
    );
    BenchProgram {
        name: "dyfesm",
        description: "Structural dynamics (interprocedural array reductions)",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// `trfd`-like: two-electron integral transformation — accumulation into a
/// triangular region with coarse-grain outer parallelism through a sum
/// reduction over a shared array.
pub fn trfd(scale: Scale) -> BenchProgram {
    let n = match scale {
        Scale::Test => 24,
        Scale::Bench => 96,
    };
    let nn = n * n;
    let source = format!(
        r#"program trfd
const n = {n}
const nn = {nn}
proc main() {{
  real xr[n], v[n], x[nn]
  int i, j
  real chk
  do 5 i = 1, n {{
    v[i] = cos(float(i) * 0.23) + 1.1
  }}
  do 10 i = 1, n {{
    do 20 j = 1, n {{
      xr[j] = xr[j] + v[i] * v[j]
    }}
  }}
  do 30 i = 1, n {{
    do 40 j = 1, n {{
      x[(j - 1) * n + i] = x[(j - 1) * n + i] + xr[i] * 0.01
    }}
  }}
  chk = 0
  do 50 i = 1, nn {{
    chk = chk + x[i]
  }}
  do 60 i = 1, n {{
    chk = chk + xr[i]
  }}
  print chk
}}
"#
    );
    BenchProgram {
        name: "trfd",
        description: "Two-electron integral transformation (array sum reductions)",
        source,
        input: vec![],
        assertions: vec![],
    }
}

/// The whole suite.
pub fn suite(scale: Scale) -> Vec<BenchProgram> {
    vec![
        bdna(scale),
        cgm(scale),
        ora(scale),
        mdljdp2(scale),
        dyfesm(scale),
        trfd(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parses() {
        for p in suite(Scale::Test) {
            p.parse();
        }
    }
}
