//! The certifying parallel loop executor.
//!
//! Where `suif-parallel`'s executor runs a compiler-parallelized loop for
//! *speed*, this module runs one for *evidence*: it executes the loop's
//! iterations on real worker threads over a shared view of the machine's
//! memory, but serializes them through a token-passing [`Gate`] with a
//! preemption point at every shared memory access.  At each point a seeded
//! [`AdversarialScheduler`](crate::sched::AdversarialScheduler) picks the
//! next worker, so the interleaving is deterministic and replayable from a
//! `u64` seed, and a [`RaceDetector`](crate::race::RaceDetector) checks the
//! access against the happens-before order in which each *iteration* is a
//! logical thread forked at loop entry and joined at exit.
//!
//! The privatization layout (which variables are redirected into a
//! per-worker tail, and how tails are merged back) is supplied by the caller
//! as a [`CertSpec`] built per invocation by a [`SpecFn`] closure — the
//! `suif-parallel` crate derives it from the same plans its fast executor
//! uses, so a certification run exercises exactly the transformed loop the
//! production runtime would execute.

use crate::machine::{Frame, Hooks, LoopHandler, Machine, RuntimeError};
use crate::race::{AccessKind, Race, RaceDetector};
use crate::sched::AdversarialScheduler;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use suif_ir::{Program, Stmt, StmtId, VarId};

/// Reduction operator, mirrored from the analysis crate so this crate stays
/// dependency-free of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertOp {
    /// Sum reduction.
    Add,
    /// Product reduction.
    Mul,
    /// Minimum reduction.
    Min,
    /// Maximum reduction.
    Max,
}

impl CertOp {
    /// The operator's identity element.
    pub fn identity(&self) -> f64 {
        match self {
            CertOp::Add => 0.0,
            CertOp::Mul => 1.0,
            CertOp::Min => f64::INFINITY,
            CertOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Combine two partial results.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            CertOp::Add => a + b,
            CertOp::Mul => a * b,
            CertOp::Min => a.min(b),
            CertOp::Max => a.max(b),
        }
    }
}

/// How a privatized segment is merged back into shared memory at the join.
#[derive(Clone, Debug)]
pub enum CertRole {
    /// Pure scratch: discarded at the join.
    Private,
    /// Live-out privatized storage: the last iteration's copy wins.
    FinalizeLast,
    /// Reduction storage: per-worker copies are combined with `op` over the
    /// 0-based inclusive region `[lo, hi]` of the segment.
    Reduction {
        /// Combining operator.
        op: CertOp,
        /// Region start (0-based, inclusive).
        lo: usize,
        /// Region end (0-based, inclusive).
        hi: usize,
    },
}

/// One privatized storage group in the per-worker tail.
#[derive(Clone, Debug)]
pub struct CertSegment {
    /// Offset within the private tail.
    pub tail_base: usize,
    /// Length in cells.
    pub len: usize,
    /// Shared base address the segment mirrors.
    pub shared_base: usize,
    /// Merge-back role.
    pub role: CertRole,
}

/// Everything the certifying executor needs to run one loop invocation in
/// parallel: the privatization segments, the variable→tail-offset overrides
/// (relative to the tail; the executor rebases them past shared memory), and
/// the initial tail contents.
#[derive(Clone, Debug)]
pub struct CertSpec {
    /// Privatized segments.
    pub segments: Vec<CertSegment>,
    /// Variable overrides, relative to the tail base.
    pub overrides: HashMap<VarId, usize>,
    /// Initial contents of each worker's tail.
    pub template: Vec<Value>,
}

/// Builds a [`CertSpec`] for a loop invocation, or `None` when the loop
/// cannot be laid out (the executor then falls back to sequential).
pub type SpecFn = Box<dyn FnMut(&mut Machine<'_>, &Stmt) -> Option<CertSpec> + Send>;

/// Accumulated result of all certified invocations of the target loop.
#[derive(Clone, Debug, Default)]
pub struct CertOutcome {
    /// Races detected, in interleaved execution order (first pair first).
    pub races: Vec<Race>,
    /// First runtime error raised inside a worker, if any.
    pub error: Option<RuntimeError>,
    /// Scheduling decisions taken at preemption points.
    pub schedule_decisions: u64,
    /// Decisions that preempted the running worker.
    pub schedule_switches: u64,
    /// Shared memory accesses examined by the detector.
    pub shared_accesses: u64,
    /// Loop iterations executed under certification.
    pub iterations: u64,
    /// Certified invocations of the target loop.
    pub loops_run: u64,
    /// Invocations skipped because no [`CertSpec`] could be built.
    pub unplannable: u64,
    /// Shared-memory ranges `(base, len)` of privatized storage with no
    /// merge-back (dead after the loop): the certified run leaves these cells
    /// at their pre-loop values while a sequential run mutates them in place,
    /// so differential memory comparisons must mask them out.
    pub dead_private: Vec<(usize, usize)>,
}

/// Number of iterations for bounds `(lo, hi, step)` (Fortran trip count).
pub fn trip_count(lo: i64, hi: i64, step: i64) -> i64 {
    if step > 0 {
        (hi - lo).div_euclid(step) + 1
    } else {
        (lo - hi).div_euclid(-step) + 1
    }
    .max(0)
}

struct GateState {
    registered: usize,
    holder: Option<usize>,
    finished: Vec<bool>,
    current_tid: Vec<usize>,
    sched: AdversarialScheduler,
    detector: RaceDetector,
    error: Option<RuntimeError>,
}

impl GateState {
    fn runnable(&self) -> Vec<usize> {
        (0..self.finished.len())
            .filter(|&w| !self.finished[w])
            .collect()
    }
}

/// Token-passing gate serializing the certification workers.
///
/// Exactly one worker (the token holder) executes at any time; every shared
/// memory access and every iteration boundary is a preemption point where
/// the scheduler may pass the token.  Because the machine's hooks fire
/// *after* each access and the holder yields before performing its next one,
/// the interleaving of shared accesses is fully determined by the
/// scheduler's decisions — no physical data race can occur.
pub struct Gate {
    workers: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    /// A gate for `workers` workers with a seeded scheduler and a detector
    /// pre-loaded with the loop's fork edges.
    pub fn new(workers: usize, sched: AdversarialScheduler, detector: RaceDetector) -> Gate {
        Gate {
            workers,
            state: Mutex::new(GateState {
                registered: 0,
                holder: None,
                finished: vec![false; workers],
                current_tid: vec![0; workers],
                sched,
                detector,
                error: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Block until every worker has registered and this worker is picked to
    /// run first.
    pub fn register(&self, w: usize) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.registered += 1;
        if st.registered == self.workers {
            let runnable = st.runnable();
            let first = st.sched.pick(None, &runnable);
            st.holder = Some(first);
            self.cv.notify_all();
        }
        while st.holder != Some(w) {
            st = self.cv.wait(st).expect("gate poisoned");
        }
    }

    /// Reschedule at a preemption point: possibly pass the token and, if so,
    /// wait until it comes back.  Caller must hold the token.
    fn preempt(&self, w: usize, mut st: std::sync::MutexGuard<'_, GateState>) {
        debug_assert_eq!(st.holder, Some(w));
        let runnable = st.runnable();
        if runnable.is_empty() {
            st.holder = None;
            self.cv.notify_all();
            return;
        }
        let next = st.sched.pick(Some(w), &runnable);
        if next != w {
            st.holder = Some(next);
            self.cv.notify_all();
            while st.holder != Some(w) {
                st = self.cv.wait(st).expect("gate poisoned");
            }
        }
    }

    /// Record a shared memory access by worker `w` (attributed to the
    /// iteration it is executing) and hit a preemption point.
    pub fn access(
        &self,
        w: usize,
        var: VarId,
        addr: usize,
        stmt: StmtId,
        line: u32,
        kind: AccessKind,
    ) {
        let mut st = self.state.lock().expect("gate poisoned");
        let tid = st.current_tid[w];
        st.detector.on_access(tid, var, addr, stmt, line, kind);
        self.preempt(w, st);
    }

    /// Mark worker `w` as beginning iteration `tid` (a logical-thread id,
    /// `k + 1` for iteration index `k`); also a preemption point.
    pub fn begin_iter(&self, w: usize, tid: usize) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.current_tid[w] = tid;
        self.preempt(w, st);
    }

    /// Record the first worker error.
    pub fn set_error(&self, e: RuntimeError) {
        let mut st = self.state.lock().expect("gate poisoned");
        if st.error.is_none() {
            st.error = Some(e);
        }
    }

    /// Mark worker `w` finished and pass the token on.
    pub fn finish(&self, w: usize) {
        let mut st = self.state.lock().expect("gate poisoned");
        st.finished[w] = true;
        let runnable = st.runnable();
        if runnable.is_empty() {
            st.holder = None;
        } else {
            let next = st.sched.pick(Some(w), &runnable);
            st.holder = Some(next);
        }
        self.cv.notify_all();
    }

    /// Tear down after the join, returning detector, scheduler and the first
    /// worker error.
    pub fn into_parts(self) -> (RaceDetector, AdversarialScheduler, Option<RuntimeError>) {
        let st = self.state.into_inner().expect("gate poisoned");
        (st.detector, st.sched, st.error)
    }
}

/// Per-worker [`Hooks`]: tracks the current statement (the load/store hooks
/// carry no source line) and routes every memory access through the gate.
struct CertHooks<'g> {
    gate: &'g Gate,
    worker: usize,
    stmt: StmtId,
    line: u32,
}

impl Hooks for CertHooks<'_> {
    fn on_stmt(&mut self, id: StmtId, line: u32) {
        self.stmt = id;
        self.line = line;
    }

    fn load(&mut self, var: VarId, addr: usize) {
        self.gate.access(
            self.worker,
            var,
            addr,
            self.stmt,
            self.line,
            AccessKind::Read,
        );
    }

    fn store(&mut self, var: VarId, addr: usize) {
        self.gate.access(
            self.worker,
            var,
            addr,
            self.stmt,
            self.line,
            AccessKind::Write,
        );
    }
}

/// A [`LoopHandler`] that executes one target loop under race certification.
///
/// Install it on a machine, run the program, then recover the handler with
/// [`Machine::take_handler`] and read the accumulated [`CertOutcome`].
/// Every invocation of the target loop is certified (an inner loop reached
/// several times accumulates across invocations); all other loops run
/// sequentially.
pub struct CertifyHandler {
    target: StmtId,
    threads: usize,
    seed: u64,
    spec_for: SpecFn,
    /// Accumulated certification result.
    pub outcome: CertOutcome,
}

impl CertifyHandler {
    /// Certify loop `target`, running up to `threads` workers, with all
    /// scheduling decisions derived from `seed`.  `spec_for` supplies the
    /// privatization layout per invocation.
    pub fn new(target: StmtId, threads: usize, seed: u64, spec_for: SpecFn) -> CertifyHandler {
        CertifyHandler {
            target,
            threads: threads.max(1),
            seed,
            spec_for,
            outcome: CertOutcome::default(),
        }
    }

    fn run_certified(
        &mut self,
        m: &mut Machine<'_>,
        do_stmt: &Stmt,
    ) -> Option<Result<(), RuntimeError>> {
        let Stmt::Do {
            line, var, body, ..
        } = do_stmt
        else {
            return None;
        };
        let (lo, hi, step) = match m.eval_do_bounds(do_stmt) {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        let n = trip_count(lo, hi, step);
        if n < 1 {
            // Zero-trip: nothing to certify; run sequentially.
            return None;
        }
        let Some(spec) = (self.spec_for)(m, do_stmt) else {
            self.outcome.unplannable += 1;
            return None;
        };
        self.outcome.loops_run += 1;
        self.outcome.iterations += n as u64;
        for seg in &spec.segments {
            if matches!(seg.role, CertRole::Private) {
                let range = (seg.shared_base, seg.len);
                if !self.outcome.dead_private.contains(&range) {
                    self.outcome.dead_private.push(range);
                }
            }
        }

        let workers = self.threads.min(n as usize);
        let (shared_ptr, shared_len) = m.mem_parts();
        let shared_addr = shared_ptr as usize;
        let program: &Program = m.program;
        let layout = Arc::clone(m.layout());
        let frame: Frame = m.current_frame().clone();

        let mut overrides = spec.overrides.clone();
        for b in overrides.values_mut() {
            *b += shared_len;
        }

        // One logical thread per iteration, plus the parent (thread 0);
        // fork edges order everything before the loop with every iteration.
        let mut detector = RaceDetector::new(n as usize + 1, shared_len);
        for k in 0..n as usize {
            detector.fork(0, k + 1);
        }
        let sched = AdversarialScheduler::new(self.seed, workers);
        let gate = Gate::new(workers, sched, detector);

        let tails: Vec<(Vec<Value>, Vec<String>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..workers {
                // Block schedule, matching the production executor.
                let k0 = (n * t as i64) / workers as i64;
                let k1 = (n * (t as i64 + 1)) / workers as i64;
                let frame = frame.clone();
                let overrides = overrides.clone();
                let template = spec.template.clone();
                let layout = Arc::clone(&layout);
                let gate = &gate;
                handles.push(scope.spawn(move || {
                    let mut hooks = CertHooks {
                        gate,
                        worker: t,
                        stmt: StmtId(0),
                        line: *line,
                    };
                    let shared = (shared_addr as *mut Value, shared_len);
                    let mut worker = Machine::thread_view(
                        program, layout, shared, frame, overrides, template, &mut hooks,
                    );
                    gate.register(t);
                    for k in k0..k1 {
                        gate.begin_iter(t, k as usize + 1);
                        let i = lo + k * step;
                        let r = worker
                            .set_scalar_raw(*var, Value::Int(i), *line)
                            .and_then(|_| worker.exec_body(body));
                        if let Err(e) = r {
                            gate.set_error(e);
                            break;
                        }
                    }
                    gate.finish(t);
                    let out = std::mem::take(&mut worker.output);
                    (worker.into_private(), out)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("certification worker panicked"))
                .collect()
        });

        let (detector, sched, error) = gate.into_parts();
        self.outcome.shared_accesses += detector.accesses;
        self.outcome.races.extend(detector.into_races());
        self.outcome.schedule_decisions += sched.decisions;
        self.outcome.schedule_switches += sched.switches;
        if let Some(e) = error {
            if self.outcome.error.is_none() {
                self.outcome.error = Some(e.clone());
            }
            return Some(Err(e));
        }

        // Deterministic post-join effects, in worker order.
        for (_, out) in &tails {
            m.output.extend(out.iter().cloned());
        }
        for seg in &spec.segments {
            match &seg.role {
                CertRole::Private => {}
                CertRole::FinalizeLast => {
                    // Block schedule: the last worker owns iteration n-1.
                    let last = &tails[workers - 1].0;
                    for k in 0..seg.len {
                        m.poke(seg.shared_base + k, last[seg.tail_base + k]);
                    }
                }
                CertRole::Reduction {
                    op,
                    lo: rlo,
                    hi: rhi,
                } => {
                    for (tail, _) in &tails {
                        for k in *rlo..=*rhi {
                            let cur = m
                                .peek(seg.shared_base + k)
                                .unwrap_or(Value::Real(0.0))
                                .as_real();
                            let mine = tail[seg.tail_base + k].as_real();
                            m.poke(seg.shared_base + k, Value::Real(op.apply(cur, mine)));
                        }
                    }
                }
            }
        }

        // Fortran post-loop induction value.
        let final_i = lo + n * step;
        if let Err(e) = m.set_scalar_raw(*var, Value::Int(final_i), *line) {
            return Some(Err(e));
        }
        Some(Ok(()))
    }
}

impl LoopHandler for CertifyHandler {
    fn on_loop(&mut self, m: &mut Machine<'_>, do_stmt: &Stmt) -> Option<Result<(), RuntimeError>> {
        if do_stmt.id() != self.target {
            return None;
        }
        self.run_certified(m, do_stmt)
    }
}
