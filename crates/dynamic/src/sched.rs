//! Seeded adversarial scheduling of certified parallel loops.
//!
//! The certifying executor (see [`crate::certify`]) serializes its worker
//! threads through a token-passing gate with a preemption point at every
//! shared memory access.  This module decides *which* worker runs next at
//! each preemption point.  Decisions are a pure function of the `u64` seed
//! and the sequence of `pick` calls, so any interleaving is deterministic
//! and replayable by re-running with the same seed.
//!
//! Two policies are provided, chosen from the seed's low bit so a schedule
//! sweep alternates between them:
//!
//! * **PCT-style priorities** ([`SchedPolicy::Pct`]): each worker draws a
//!   random priority up front; the highest-priority runnable worker always
//!   runs, and at each preemption point a small random fraction of decisions
//!   demotes the running worker below everyone else (a "change point").
//!   This concentrates the schedule on few, deep preemptions.
//! * **Random walk** ([`SchedPolicy::RandomWalk`]): continue the current
//!   worker with probability 3/4, otherwise switch to a uniformly random
//!   runnable worker.  This spreads many shallow preemptions around.

/// SplitMix64 — a tiny, high-quality deterministic PRNG (public-domain
/// algorithm by Sebastiano Vigna).  Identical seeds yield identical streams
/// on every platform, which is what makes schedules replayable.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Start a stream from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Scheduling policy of an [`AdversarialScheduler`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// PCT-style random priorities with occasional change points.
    Pct,
    /// Randomized round-robin: mostly continue, sometimes switch.
    RandomWalk,
}

/// Deterministic adversarial scheduler over a fixed set of workers.
pub struct AdversarialScheduler {
    rng: SplitMix64,
    policy: SchedPolicy,
    priorities: Vec<u64>,
    /// Number of scheduling decisions taken.
    pub decisions: u64,
    /// Number of decisions that preempted the running worker.
    pub switches: u64,
}

impl AdversarialScheduler {
    /// A scheduler for `workers` workers; the policy is taken from the
    /// seed's low bit (even → [`SchedPolicy::Pct`], odd →
    /// [`SchedPolicy::RandomWalk`]).
    pub fn new(seed: u64, workers: usize) -> AdversarialScheduler {
        let policy = if seed & 1 == 0 {
            SchedPolicy::Pct
        } else {
            SchedPolicy::RandomWalk
        };
        AdversarialScheduler::with_policy(seed, workers, policy)
    }

    /// A scheduler with an explicit policy.
    pub fn with_policy(seed: u64, workers: usize, policy: SchedPolicy) -> AdversarialScheduler {
        let mut rng = SplitMix64::new(seed);
        let priorities = (0..workers).map(|_| rng.next_u64() | 1).collect();
        AdversarialScheduler {
            rng,
            policy,
            priorities,
            decisions: 0,
            switches: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Choose the next worker to run.  `current` is the worker at the
    /// preemption point (if still runnable it appears in `runnable`);
    /// `runnable` is the non-empty set of workers able to run.
    pub fn pick(&mut self, current: Option<usize>, runnable: &[usize]) -> usize {
        debug_assert!(!runnable.is_empty());
        self.decisions += 1;
        let chosen = match self.policy {
            SchedPolicy::Pct => {
                // A change point with probability 1/8: demote the running
                // worker below every other priority.
                if let Some(c) = current {
                    if self.rng.below(8) == 0 {
                        self.priorities[c] = 0;
                    }
                }
                *runnable
                    .iter()
                    .max_by_key(|&&w| self.priorities[w])
                    .expect("runnable is non-empty")
            }
            SchedPolicy::RandomWalk => match current {
                Some(c) if runnable.contains(&c) && self.rng.below(4) != 0 => c,
                _ => runnable[self.rng.below(runnable.len())],
            },
        };
        if current != Some(chosen) {
            self.switches += 1;
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_trace(seed: u64) -> Vec<usize> {
        let mut s = AdversarialScheduler::new(seed, 4);
        let mut trace = Vec::new();
        let mut cur = None;
        for _ in 0..64 {
            let w = s.pick(cur, &[0, 1, 2, 3]);
            trace.push(w);
            cur = Some(w);
        }
        trace
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(run_trace(42), run_trace(42));
        assert_eq!(run_trace(43), run_trace(43));
    }

    #[test]
    fn different_seeds_diverge() {
        // Not guaranteed in principle, but these seeds do diverge and the
        // assertion pins the property for the seeds the harness uses.
        assert_ne!(run_trace(2), run_trace(4));
        assert_ne!(run_trace(1), run_trace(3));
    }

    #[test]
    fn policy_from_seed_low_bit() {
        assert_eq!(AdversarialScheduler::new(2, 2).policy(), SchedPolicy::Pct);
        assert_eq!(
            AdversarialScheduler::new(3, 2).policy(),
            SchedPolicy::RandomWalk
        );
    }

    #[test]
    fn pct_eventually_preempts() {
        let mut s = AdversarialScheduler::with_policy(7, 3, SchedPolicy::Pct);
        let mut cur = None;
        for _ in 0..200 {
            cur = Some(s.pick(cur, &[0, 1, 2]));
        }
        assert!(s.switches > 1, "change points must fire over 200 decisions");
    }

    #[test]
    fn pick_respects_runnable_set() {
        let mut s = AdversarialScheduler::new(9, 4);
        for _ in 0..50 {
            let w = s.pick(Some(0), &[1, 3]);
            assert!(w == 1 || w == 3);
        }
    }
}
