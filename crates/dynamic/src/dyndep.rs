//! The Dynamic Dependence Analyzer (§2.5.2).
//!
//! Instruments the reads and writes of the program and keeps track of the
//! most recent write for each memory location.  Reports, per monitored loop,
//! the variables observed to carry a **loop-carried flow dependence**.
//!
//! Faithful to the paper's design:
//! * it is "aware of the induction variables and reduction operations found
//!   by the compiler, and will ignore dependences on these variables"
//!   (the [`DynDepConfig`] carries those ignore sets);
//! * "it also ignores anti-dependences" — only write→read (flow) pairs are
//!   examined;
//! * it "can detect parallelism that requires data to be privatized" — a
//!   read preceded by a same-iteration write compares equal stamps and
//!   reports nothing;
//! * "the instrumentation can skip batches of iterations because the
//!   analysis result is used only as a hint" — `max_iterations_per_invocation`
//!   caps tracking per loop invocation.

use crate::machine::Hooks;
use std::collections::{HashMap, HashSet};
use suif_ir::{StmtId, VarId};

/// Configuration of the analyzer.
#[derive(Clone, Debug, Default)]
pub struct DynDepConfig {
    /// Variables whose accesses are ignored entirely (compiler-recognized
    /// induction variables and the like).
    pub ignore_vars: HashSet<VarId>,
    /// Per-loop ignores: `(loop, var)` pairs the compiler proved to be
    /// reduction updates — dependences on them are expected and skipped.
    pub ignore_loop_vars: HashSet<(StmtId, VarId)>,
    /// Only these loops are monitored (`None` = all loops).
    pub monitor: Option<HashSet<StmtId>>,
    /// Stop tracking after this many iterations of each loop invocation
    /// (sampling optimization; `None` = track everything).
    pub max_iterations_per_invocation: Option<u64>,
}

/// A stamp identifying a point in the dynamic loop-iteration space:
/// `(loop, invocation, iteration)` for every active monitored loop,
/// outermost first.
type IterVec = Box<[(StmtId, u64, i64)]>;

/// The analyzer: plug into a [`crate::Machine`] as its hooks.
pub struct DynDepAnalyzer {
    config: DynDepConfig,
    /// Active monitored loops, outermost first.
    active: Vec<ActiveLoop>,
    /// Most recent write stamp per address.
    last_write: HashMap<usize, IterVec>,
    /// Observed loop-carried flow dependences: loop → variables.
    deps: HashMap<StmtId, HashSet<VarId>>,
    /// Per-loop invocation counters.
    invocations: HashMap<StmtId, u64>,
    /// Nesting depth at which tracking was suspended by sampling (if any).
    suspended_at: Option<usize>,
}

struct ActiveLoop {
    stmt: StmtId,
    invocation: u64,
    iter: i64,
    iters_seen: u64,
}

impl DynDepAnalyzer {
    /// Fresh analyzer.
    pub fn new(config: DynDepConfig) -> DynDepAnalyzer {
        DynDepAnalyzer {
            config,
            active: Vec::new(),
            last_write: HashMap::new(),
            deps: HashMap::new(),
            invocations: HashMap::new(),
            suspended_at: None,
        }
    }

    fn monitored(&self, stmt: StmtId) -> bool {
        match &self.config.monitor {
            Some(set) => set.contains(&stmt),
            None => true,
        }
    }

    fn tracking(&self) -> bool {
        self.suspended_at.is_none()
    }

    fn stamp(&self) -> IterVec {
        self.active
            .iter()
            .map(|a| (a.stmt, a.invocation, a.iter))
            .collect()
    }

    /// Finish and extract the report.
    pub fn report(self) -> DynDepReport {
        DynDepReport { deps: self.deps }
    }
}

impl Hooks for DynDepAnalyzer {
    fn loop_enter(&mut self, stmt: StmtId, _ops: u64) {
        if !self.monitored(stmt) {
            return;
        }
        let inv = self.invocations.entry(stmt).or_insert(0);
        *inv += 1;
        self.active.push(ActiveLoop {
            stmt,
            invocation: *inv,
            iter: 0,
            iters_seen: 0,
        });
    }

    fn loop_iter(&mut self, stmt: StmtId, iter: i64) {
        if !self.monitored(stmt) {
            return;
        }
        let depth = self.active.len().saturating_sub(1);
        if let Some(top) = self.active.last_mut() {
            if top.stmt == stmt {
                top.iter = iter;
                top.iters_seen += 1;
                if let Some(cap) = self.config.max_iterations_per_invocation {
                    if top.iters_seen > cap && self.suspended_at.is_none() {
                        self.suspended_at = Some(depth);
                    }
                }
            }
        }
    }

    fn loop_exit(&mut self, stmt: StmtId, _ops: u64) {
        if !self.monitored(stmt) {
            return;
        }
        if let Some(top) = self.active.last() {
            if top.stmt == stmt {
                let depth = self.active.len() - 1;
                if self.suspended_at == Some(depth) {
                    self.suspended_at = None;
                }
                self.active.pop();
            }
        }
    }

    fn load(&mut self, var: VarId, addr: usize) {
        if !self.tracking() || self.config.ignore_vars.contains(&var) || self.active.is_empty() {
            return;
        }
        let Some(w) = self.last_write.get(&addr) else {
            return;
        };
        // Scan the common prefix of the write stamp and the current stack,
        // outermost first.
        for (k, a) in self.active.iter().enumerate() {
            let Some(&(ws, winv, witer)) = w.get(k) else {
                // Write happened outside this loop (before it started):
                // upwards-exposed read from pre-loop data, no carried dep.
                break;
            };
            if ws != a.stmt || winv != a.invocation {
                // Different loop structure or an earlier invocation at this
                // level — the write precedes this loop instance entirely.
                break;
            }
            if witer != a.iter {
                // Same loop instance, different iteration: loop-carried
                // flow dependence at this loop.
                if !self.config.ignore_loop_vars.contains(&(a.stmt, var)) {
                    self.deps.entry(a.stmt).or_default().insert(var);
                }
                break;
            }
        }
    }

    fn store(&mut self, var: VarId, addr: usize) {
        if !self.tracking() || self.config.ignore_vars.contains(&var) {
            return;
        }
        self.last_write.insert(addr, self.stamp());
    }
}

/// Result of a dynamic-dependence run.
#[derive(Clone, Debug, Default)]
pub struct DynDepReport {
    /// Loop → variables observed carrying a flow dependence.
    pub deps: HashMap<StmtId, HashSet<VarId>>,
}

impl DynDepReport {
    /// Did the loop carry any observed flow dependence?
    pub fn has_dep(&self, stmt: StmtId) -> bool {
        self.deps.get(&stmt).map(|s| !s.is_empty()).unwrap_or(false)
    }

    /// Variables with observed carried dependences for a loop.
    pub fn dep_vars(&self, stmt: StmtId) -> impl Iterator<Item = VarId> + '_ {
        self.deps.get(&stmt).into_iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use suif_ir::{parse_program, Program, RegionTree};

    fn analyze(src: &str, config: DynDepConfig) -> (Program, RegionTree, DynDepReport) {
        let p = parse_program(src).unwrap();
        let tree = RegionTree::build(&p);
        let mut dd = DynDepAnalyzer::new(config);
        {
            let mut m = Machine::new(&p, &mut dd).unwrap();
            m.run().unwrap();
        }
        let rep = dd.report();
        (p, tree, rep)
    }

    fn loop_stmt(tree: &RegionTree, name: &str) -> suif_ir::StmtId {
        tree.loops.iter().find(|l| l.name == name).unwrap().stmt
    }

    #[test]
    fn independent_loop_has_no_deps() {
        let (_, tree, rep) = analyze(
            "program t\nproc main() {\n real a[10]\n int i\n do 1 i = 1, 10 {\n a[i] = i\n }\n}",
            DynDepConfig::default(),
        );
        assert!(!rep.has_dep(loop_stmt(&tree, "main/1")));
    }

    #[test]
    fn recurrence_is_detected() {
        let (p, tree, rep) = analyze(
            "program t\nproc main() {\n real a[10]\n int i\n a[1] = 1\n do 1 i = 2, 10 {\n a[i] = a[i - 1] + 1\n }\n}",
            DynDepConfig::default(),
        );
        let l = loop_stmt(&tree, "main/1");
        assert!(rep.has_dep(l));
        let a = p.var_by_name("main", "a").unwrap();
        assert!(rep.dep_vars(l).any(|v| v == a));
    }

    #[test]
    fn same_iteration_write_then_read_is_private() {
        // tmp written then read in each iteration — privatizable, no dep.
        let (_, tree, rep) = analyze(
            "program t\nproc main() {\n real tmp[4], out[10]\n int i, j\n do 1 i = 1, 10 {\n do 2 j = 1, 4 {\n tmp[j] = i * j\n }\n do 3 j = 1, 4 {\n out[i] = out[i] + tmp[j]\n }\n }\n}",
            DynDepConfig::default(),
        );
        assert!(!rep.has_dep(loop_stmt(&tree, "main/1")));
    }

    #[test]
    fn read_before_write_within_iteration_is_carried() {
        // tmp read BEFORE being written each iteration: the value flows from
        // the previous iteration — privatization illegal, dep expected.
        let (_, tree, rep) = analyze(
            "program t\nproc main() {\n real tmp, out[10]\n int i\n tmp = 0\n do 1 i = 1, 10 {\n out[i] = tmp\n tmp = i\n }\n}",
            DynDepConfig::default(),
        );
        assert!(rep.has_dep(loop_stmt(&tree, "main/1")));
    }

    #[test]
    fn anti_dependence_is_ignored() {
        // a[i+1] read then a[i+1] written next iteration? Construct pure
        // anti: read a[i+1], write a[i].
        let (_, tree, rep) = analyze(
            "program t\nproc main() {\n real a[12]\n int i\n do 1 i = 1, 10 {\n a[i] = a[i + 1]\n }\n}",
            DynDepConfig::default(),
        );
        assert!(!rep.has_dep(loop_stmt(&tree, "main/1")));
    }

    #[test]
    fn reduction_var_can_be_ignored() {
        let src =
            "program t\nproc main() {\n real s\n int i\n s = 0\n do 1 i = 1, 10 {\n s = s + i\n }\n print s\n}";
        let (p, tree, rep) = analyze(src, DynDepConfig::default());
        let l = loop_stmt(&tree, "main/1");
        assert!(rep.has_dep(l), "sum recurrence should be seen");
        // Now ignore the reduction variable for that loop.
        let s = p.var_by_name("main", "s").unwrap();
        let mut cfg = DynDepConfig::default();
        cfg.ignore_loop_vars.insert((l, s));
        let (_, _, rep2) = analyze(src, cfg);
        assert!(!rep2.has_dep(l));
    }

    #[test]
    fn deps_through_procedure_calls() {
        // The callee writes a common array the next iteration reads.
        let (_, tree, rep) = analyze(
            r#"program t
proc produce(int i) {
  common /c/ real buf[16]
  buf[i] = i
}
proc main() {
  common /c/ real buf[16]
  real acc
  int i
  acc = 0
  do 1 i = 2, 10 {
    acc = acc + buf[i - 1]
    call produce(i)
  }
  print acc
}
"#,
            DynDepConfig::default(),
        );
        assert!(rep.has_dep(loop_stmt(&tree, "main/1")));
    }

    #[test]
    fn cross_invocation_writes_do_not_count() {
        // Each outer iteration, inner loop 2 fully writes b, then inner loop
        // 3 reads it.  The write precedes the read within the same outer
        // iteration, so b carries no dependence at the outer loop; the reads
        // in loop 3 see writes from a *different invocation* of loop 2, which
        // must not be misattributed either.  Only acc (a scalar
        // read-modify-write) genuinely carries at the outer loop.
        let (p, tree, rep) = analyze(
            "program t\nproc main() {\n real b[4]\n real acc\n int i, j\n acc = 0\n do 1 i = 1, 6 {\n do 2 j = 1, 4 {\n b[j] = i * j\n }\n do 3 j = 1, 4 {\n acc = acc + b[j]\n }\n }\n print acc\n}",
            DynDepConfig::default(),
        );
        let outer = loop_stmt(&tree, "main/1");
        let read_loop = loop_stmt(&tree, "main/3");
        let b = p.var_by_name("main", "b").unwrap();
        let acc = p.var_by_name("main", "acc").unwrap();
        let outer_vars: Vec<_> = rep.dep_vars(outer).collect();
        assert!(outer_vars.contains(&acc));
        assert!(!outer_vars.contains(&b), "b falsely carried at outer loop");
        // The read loop carries only acc (its own reduction), never b.
        assert!(!rep.dep_vars(read_loop).any(|v| v == b));
    }

    #[test]
    fn sampling_caps_tracking() {
        let cfg = DynDepConfig {
            max_iterations_per_invocation: Some(3),
            ..DynDepConfig::default()
        };
        // Dep appears only between iterations 8 and 9 — sampling misses it.
        let (_, tree, rep) = analyze(
            "program t\nproc main() {\n real a[12]\n int i\n do 1 i = 1, 10 {\n if i == 9 {\n a[1] = a[2]\n }\n if i == 8 {\n a[2] = 1\n }\n }\n}",
            cfg,
        );
        assert!(!rep.has_dep(loop_stmt(&tree, "main/1")));
        // Without sampling it is caught.
        let (_, tree2, rep2) = analyze(
            "program t\nproc main() {\n real a[12]\n int i\n do 1 i = 1, 10 {\n if i == 9 {\n a[1] = a[2]\n }\n if i == 8 {\n a[2] = 1\n }\n }\n}",
            DynDepConfig::default(),
        );
        assert!(rep2.has_dep(loop_stmt(&tree2, "main/1")));
    }
}
