//! Static storage layout.
//!
//! Fortran-77 storage model: common blocks are shared segments; procedure
//! locals and scalar-parameter slots are statically allocated (SAVE
//! semantics — legal because MiniF rejects recursion).  Array parameters get
//! no storage of their own: they bind to a base address at call time.

use crate::value::Value;
use suif_ir::{Extent, Program, Type, VarId, VarKind};

/// The program-wide storage layout.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Base address per variable; `None` for array parameters (bound at call
    /// time).
    base: Vec<Option<usize>>,
    /// Base address of each common block.
    pub common_base: Vec<usize>,
    /// Total number of cells.
    pub total: usize,
    /// Initial value per cell (typed zeros).
    init: Vec<Value>,
}

/// Layout construction failure (e.g. a local array with a non-constant
/// extent, which Fortran 77 does not allow either).
#[derive(Debug, Clone)]
pub struct LayoutError(pub String);

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "layout error: {}", self.0)
    }
}

impl Layout {
    /// Compute the layout for a program.
    pub fn build(program: &Program) -> Result<Layout, LayoutError> {
        let mut base: Vec<Option<usize>> = vec![None; program.vars.len()];
        let mut init: Vec<Value> = Vec::new();
        let mut next = 0usize;

        // Common blocks first.
        let mut common_base = Vec::new();
        for blk in &program.commons {
            common_base.push(next);
            let size = blk.size.max(0) as usize;
            // Element types may differ between views; initialize to Real
            // zeros and let views reinterpret (all cells are `Value`).
            init.extend(std::iter::repeat_n(Value::Real(0.0), size));
            next += size;
        }
        for (vi, info) in program.vars.iter().enumerate() {
            if let VarKind::Common { block, offset } = &info.kind {
                base[vi] = Some(common_base[block.0 as usize] + *offset as usize);
            }
        }

        // Locals and scalar-parameter slots.
        for proc in &program.procedures {
            for &v in proc.params.iter().chain(proc.locals.iter()) {
                let info = program.var(v);
                let vi = v.0 as usize;
                if info.is_array() {
                    match info.kind {
                        VarKind::Param { .. } => {
                            // bound at call time; no storage
                        }
                        _ => {
                            let Some(size) = info.const_size() else {
                                return Err(LayoutError(format!(
                                    "local array `{}` in `{}` must have constant extents",
                                    info.name, proc.name
                                )));
                            };
                            if size < 0 {
                                return Err(LayoutError(format!(
                                    "negative extent on `{}`",
                                    info.name
                                )));
                            }
                            base[vi] = Some(next);
                            let zero = zero_of(info.ty);
                            init.extend(std::iter::repeat_n(zero, size as usize));
                            next += size as usize;
                        }
                    }
                } else {
                    base[vi] = Some(next);
                    init.push(zero_of(info.ty));
                    next += 1;
                }
            }
        }

        Ok(Layout {
            base,
            common_base,
            total: next,
            init,
        })
    }

    /// Static base of a variable (`None` for array parameters).
    pub fn base_of(&self, v: VarId) -> Option<usize> {
        self.base[v.0 as usize]
    }

    /// Fresh memory initialized with typed zeros.
    pub fn fresh_memory(&self) -> Vec<Value> {
        self.init.clone()
    }

    /// The constant extents of a variable when all are constant.
    pub fn const_extents(program: &Program, v: VarId) -> Option<Vec<i64>> {
        program
            .var(v)
            .dims
            .iter()
            .map(|d| match d {
                Extent::Const(c) => Some(*c),
                _ => None,
            })
            .collect()
    }
}

fn zero_of(t: Type) -> Value {
    match t {
        Type::Int => Value::Int(0),
        Type::Real => Value::Real(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    #[test]
    fn lays_out_commons_and_locals() {
        let p = parse_program(
            "program t\nproc main() {\n common /c/ real a[10]\n real b[5]\n int n\n a[1] = 0\n call f()\n}\nproc f() {\n common /c/ real z[12]\n z[1] = 0\n}",
        )
        .unwrap();
        let l = Layout::build(&p).unwrap();
        let a = p.var_by_name("main", "a").unwrap();
        let z = p.var_by_name("f", "z").unwrap();
        // a and z share the common segment base.
        assert_eq!(l.base_of(a), l.base_of(z));
        assert_eq!(l.base_of(a), Some(0));
        // block size is max of views = 12.
        let b = p.var_by_name("main", "b").unwrap();
        assert_eq!(l.base_of(b), Some(12));
        assert_eq!(l.total, 12 + 5 + 1);
    }

    #[test]
    fn array_params_have_no_storage() {
        let p = parse_program(
            "program t\nproc f(real a[*], int n) { a[1] = n }\nproc main() {\n real b[4]\n call f(b, 1)\n}",
        )
        .unwrap();
        let l = Layout::build(&p).unwrap();
        let a = p.var_by_name("f", "a").unwrap();
        let n = p.var_by_name("f", "n").unwrap();
        assert_eq!(l.base_of(a), None);
        assert!(l.base_of(n).is_some());
    }

    #[test]
    fn rejects_symbolic_local_extent() {
        let p = parse_program(
            "program t\nproc f(int n) {\n real tmp[n]\n tmp[1] = 0\n}\nproc main() { call f(3) }",
        )
        .unwrap();
        assert!(Layout::build(&p).is_err());
    }
}
