//! The MiniF interpreter.
//!
//! One [`Machine`] executes one thread of control.  The `suif-parallel`
//! crate creates additional machines over a [`MemStore::View`] of the main
//! machine's memory to execute compiler-parallelized loops — the safety
//! contract for that sharing is documented on [`MemStore`].

use crate::layout::{Layout, LayoutError};
use crate::value::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use suif_ir::ast::{BinOp, Intrinsic, UnaryOp};
use suif_ir::{Arg, Expr, Extent, ProcId, Program, Ref, Stmt, StmtId, Type, VarId};

/// A runtime failure.
#[derive(Debug, Clone)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
    /// Source line (0 when unknown).
    pub line: u32,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuntimeError {}

fn rerr<T>(line: u32, msg: impl Into<String>) -> Result<T, RuntimeError> {
    Err(RuntimeError {
        message: msg.into(),
        line,
    })
}

/// Instrumentation callbacks (the Execution Analyzers implement this).
///
/// The interpreter does **not** fire `load`/`store` for loop-induction-
/// variable updates or parameter-slot copies (those are runtime-internal),
/// but does fire them for the caller-side effects of copy-in/copy-out.
pub trait Hooks {
    /// A statement is about to execute.
    fn on_stmt(&mut self, _id: StmtId, _line: u32) {}
    /// A `do` loop was entered; `ops` is the machine's virtual-op counter.
    fn loop_enter(&mut self, _stmt: StmtId, _ops: u64) {}
    /// A new iteration begins with induction value `iter`.
    fn loop_iter(&mut self, _stmt: StmtId, _iter: i64) {}
    /// The loop finished; `ops` is the virtual-op counter at exit.
    fn loop_exit(&mut self, _stmt: StmtId, _ops: u64) {}
    /// A memory cell was read through variable `var`.
    fn load(&mut self, _var: VarId, _addr: usize) {}
    /// A memory cell was written through variable `var`.
    fn store(&mut self, _var: VarId, _addr: usize) {}
}

/// No-op hooks.
pub struct NoHooks;
impl Hooks for NoHooks {}

/// Memory backing a machine.
///
/// # Safety contract for `View`
///
/// A `View` aliases another machine's memory through a raw pointer.  The
/// parallel runtime only creates views for loops the compiler (or the user,
/// via checked assertions) proved free of cross-iteration conflicts, with
/// all conflicting variables redirected into the view's `private` tail.
/// This mirrors how a real SPMD runtime executes compiler-parallelized
/// Fortran: data-race freedom is an analysis *result*, not a type-system
/// guarantee.  Tests validate parallel results against sequential runs.
pub enum MemStore {
    /// Machine-owned memory.
    Owned(Vec<Value>),
    /// A shared view of another machine's memory plus a private tail.
    View {
        /// Base of the shared segment.
        base: *mut Value,
        /// Length of the shared segment; private addresses start here.
        len: usize,
        /// Thread-private cells (privatized variables, reduction copies).
        private: Vec<Value>,
    },
}

// SAFETY: see the `View` contract above — views are only sent to scoped
// worker threads whose writes the parallelizer proved disjoint.
unsafe impl Send for MemStore {}

impl MemStore {
    fn load(&self, addr: usize) -> Option<Value> {
        match self {
            MemStore::Owned(v) => v.get(addr).copied(),
            MemStore::View { base, len, private } => {
                if addr < *len {
                    // SAFETY: within the shared segment per the View contract.
                    Some(unsafe { *base.add(addr) })
                } else {
                    private.get(addr - len).copied()
                }
            }
        }
    }

    fn store(&mut self, addr: usize, val: Value) -> bool {
        match self {
            MemStore::Owned(v) => match v.get_mut(addr) {
                Some(slot) => {
                    *slot = val;
                    true
                }
                None => false,
            },
            MemStore::View { base, len, private } => {
                if addr < *len {
                    // SAFETY: see the View contract.
                    unsafe { *base.add(addr) = val };
                    true
                } else {
                    match private.get_mut(addr - *len) {
                        Some(slot) => {
                            *slot = val;
                            true
                        }
                        None => false,
                    }
                }
            }
        }
    }

    /// Total addressable length.
    pub fn len(&self) -> usize {
        match self {
            MemStore::Owned(v) => v.len(),
            MemStore::View { len, private, .. } => len + private.len(),
        }
    }

    /// True when no cells exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One procedure activation.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Executing procedure.
    pub proc: ProcId,
    /// Array-parameter bindings: formal → base address of its element 1.
    pub bindings: HashMap<VarId, usize>,
    /// Copy-out actions performed at return: (formal, actual address).
    copy_out: Vec<(VarId, usize)>,
}

impl Frame {
    /// A fresh frame for a procedure.
    pub fn new(proc: ProcId) -> Frame {
        Frame {
            proc,
            bindings: HashMap::new(),
            copy_out: Vec::new(),
        }
    }
}

/// A handler consulted before each `do` loop executes; used by the parallel
/// runtime to take over loops the compiler parallelized.  Returning `None`
/// lets the machine run the loop sequentially.
pub trait LoopHandler: Send {
    /// Offered the loop (always a [`Stmt::Do`]); may execute it entirely.
    fn on_loop(
        &mut self,
        machine: &mut Machine<'_>,
        do_stmt: &Stmt,
    ) -> Option<Result<(), RuntimeError>>;
}

/// The interpreter.
pub struct Machine<'a> {
    /// The program being executed.
    pub program: &'a Program,
    layout: Arc<Layout>,
    mem: MemStore,
    frames: Vec<Frame>,
    /// Privatization overlay: redirects a variable's storage base.
    pub overrides: HashMap<VarId, usize>,
    hooks: &'a mut dyn Hooks,
    handler: Option<Box<dyn LoopHandler + 'a>>,
    ops: u64,
    /// Captured `print` output, one line per statement.
    pub output: Vec<String>,
    input: VecDeque<f64>,
}

impl<'a> Machine<'a> {
    /// Build a machine with fresh memory.
    pub fn new(program: &'a Program, hooks: &'a mut dyn Hooks) -> Result<Machine<'a>, LayoutError> {
        let layout = Arc::new(Layout::build(program)?);
        let mem = MemStore::Owned(layout.fresh_memory());
        Ok(Machine {
            program,
            layout,
            mem,
            frames: vec![Frame::new(program.main)],
            overrides: HashMap::new(),
            hooks,
            handler: None,
            ops: 0,
            output: Vec::new(),
            input: VecDeque::new(),
        })
    }

    /// Build a worker machine over a shared view of another machine's
    /// memory.  `frame` is the (cloned) activation in which the parallel
    /// loop body runs; `overrides` redirect privatized variables into the
    /// `private` tail (addresses `shared_len..`).
    pub fn thread_view(
        program: &'a Program,
        layout: Arc<Layout>,
        shared: (*mut Value, usize),
        frame: Frame,
        overrides: HashMap<VarId, usize>,
        private: Vec<Value>,
        hooks: &'a mut dyn Hooks,
    ) -> Machine<'a> {
        Machine {
            program,
            layout,
            mem: MemStore::View {
                base: shared.0,
                len: shared.1,
                private,
            },
            frames: vec![frame],
            overrides,
            hooks,
            handler: None,
            ops: 0,
            output: Vec::new(),
            input: VecDeque::new(),
        }
    }

    /// Supply `read` input values.
    pub fn set_input(&mut self, input: Vec<f64>) {
        self.input = input.into();
    }

    /// Install a loop handler (parallel runtime hook).
    pub fn set_handler(&mut self, h: Box<dyn LoopHandler + 'a>) {
        self.handler = Some(h);
    }

    /// Remove and return the loop handler.
    pub fn take_handler(&mut self) -> Option<Box<dyn LoopHandler + 'a>> {
        self.handler.take()
    }

    /// The storage layout.
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// Virtual-operation counter (deterministic cost metric).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Raw parts of this machine's memory for sharing with worker views.
    pub fn mem_parts(&mut self) -> (*mut Value, usize) {
        match &mut self.mem {
            MemStore::Owned(v) => (v.as_mut_ptr(), v.len()),
            MemStore::View { base, len, private } => {
                // Nested views share the same underlying segment; private
                // tails are not re-shared.
                let _ = private;
                (*base, *len)
            }
        }
    }

    /// The private tail of a `View` machine (worker results), if any.
    pub fn into_private(self) -> Vec<Value> {
        match self.mem {
            MemStore::View { private, .. } => private,
            MemStore::Owned(_) => Vec::new(),
        }
    }

    /// Current (innermost) frame.
    pub fn current_frame(&self) -> &Frame {
        self.frames.last().expect("machine always has a frame")
    }

    /// Read memory directly (no hooks).
    pub fn peek(&self, addr: usize) -> Option<Value> {
        self.mem.load(addr)
    }

    /// Write memory directly (no hooks).
    pub fn poke(&mut self, addr: usize, val: Value) -> bool {
        self.mem.store(addr, val)
    }

    /// Run the whole program from `main`.
    pub fn run(&mut self) -> Result<(), RuntimeError> {
        debug_assert_eq!(self.frames.len(), 1);
        let body = &self.program.proc(self.program.main).body;
        self.exec_body(body)
    }

    /// Execute a statement list in the current frame.
    pub fn exec_body(&mut self, body: &[Stmt]) -> Result<(), RuntimeError> {
        for s in body {
            self.exec_stmt(s)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<(), RuntimeError> {
        self.ops += 1;
        self.hooks.on_stmt(s.id(), s.line());
        match s {
            Stmt::Assign { lhs, rhs, line, .. } => {
                let val = self.eval(rhs)?;
                self.store_ref(lhs, val, *line)
            }
            Stmt::Read { lhs, line, .. } => {
                let Some(raw) = self.input.pop_front() else {
                    return rerr(*line, "read: input exhausted");
                };
                self.store_ref(lhs, Value::Real(raw), *line)
            }
            Stmt::Print { args, .. } => {
                let mut parts = Vec::with_capacity(args.len());
                for a in args {
                    parts.push(self.eval(a)?.to_string());
                }
                self.output.push(parts.join(" "));
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_body(then_body)
                } else {
                    self.exec_body(else_body)
                }
            }
            Stmt::Do { .. } => {
                if let Some(mut h) = self.handler.take() {
                    let intercepted = h.on_loop(self, s);
                    self.handler = Some(h);
                    if let Some(res) = intercepted {
                        return res;
                    }
                }
                self.exec_do_sequential(s)
            }
            Stmt::Call {
                callee, args, line, ..
            } => self.exec_call(*callee, args, *line),
        }
    }

    /// Execute a `do` loop sequentially (also used by the parallel runtime
    /// for serial fallback by simply not intercepting).
    pub fn exec_do_sequential(&mut self, s: &Stmt) -> Result<(), RuntimeError> {
        let Stmt::Do {
            id,
            line,
            var,
            lo,
            hi,
            step,
            body,
            ..
        } = s
        else {
            return rerr(0, "exec_do_sequential on a non-loop");
        };
        let lo = self.eval(lo)?.as_int();
        let hi = self.eval(hi)?.as_int();
        let step = match step {
            Some(e) => self.eval(e)?.as_int(),
            None => 1,
        };
        if step == 0 {
            return rerr(*line, "do loop with zero step");
        }
        let ops0 = self.ops;
        self.hooks.loop_enter(*id, ops0);
        let mut i = lo;
        while (step > 0 && i <= hi) || (step < 0 && i >= hi) {
            self.set_scalar_raw(*var, Value::Int(i), *line)?;
            self.hooks.loop_iter(*id, i);
            self.exec_body(body)?;
            i += step;
        }
        // Fortran DO semantics: after the loop the control variable holds
        // the first value that failed the test (`lo` for zero-trip loops).
        self.set_scalar_raw(*var, Value::Int(i), *line)?;
        let ops1 = self.ops;
        self.hooks.loop_exit(*id, ops1);
        Ok(())
    }

    /// Evaluate the `(lo, hi, step)` bounds of a `do` statement in the
    /// current frame (used by the parallel runtime before forking).
    pub fn eval_do_bounds(&mut self, s: &Stmt) -> Result<(i64, i64, i64), RuntimeError> {
        let Stmt::Do {
            lo, hi, step, line, ..
        } = s
        else {
            return rerr(0, "eval_do_bounds on a non-loop");
        };
        let lo = self.eval(lo)?.as_int();
        let hi = self.eval(hi)?.as_int();
        let step = match step {
            Some(e) => self.eval(e)?.as_int(),
            None => 1,
        };
        if step == 0 {
            return rerr(*line, "do loop with zero step");
        }
        Ok((lo, hi, step))
    }

    fn exec_call(&mut self, callee: ProcId, args: &[Arg], line: u32) -> Result<(), RuntimeError> {
        let cproc = self.program.proc(callee);
        let mut frame = Frame::new(callee);
        // Evaluate actuals in the caller frame, then populate the callee.
        let mut scalar_inits: Vec<(VarId, Value)> = Vec::new();
        for (k, arg) in args.iter().enumerate() {
            let formal = cproc.params[k];
            match arg {
                Arg::ArrayWhole(v) => {
                    let base = self.array_base(*v, line)?;
                    frame.bindings.insert(formal, base);
                }
                Arg::ArrayPart { var, base } => {
                    let mut subs = Vec::with_capacity(base.len());
                    for e in base {
                        subs.push(self.eval(e)?.as_int());
                    }
                    let addr = self.element_addr(*var, &subs, line)?;
                    frame.bindings.insert(formal, addr);
                }
                Arg::ScalarVar(v) => {
                    let addr = self.scalar_addr(*v, line)?;
                    self.hooks.load(*v, addr);
                    let val = self.mem_load(addr, line)?;
                    scalar_inits.push((formal, val));
                    // Copy-out only when the callee may modify the formal —
                    // otherwise Fortran by-reference semantics are unchanged
                    // and the write would fabricate output dependences.
                    if cproc.modified_params[k] {
                        frame.copy_out.push((formal, addr));
                    }
                }
                Arg::Value(e) => {
                    let val = self.eval(e)?;
                    scalar_inits.push((formal, val));
                }
            }
        }
        self.frames.push(frame);
        for (formal, val) in scalar_inits {
            self.set_scalar_raw(formal, val, line)?;
        }
        let result = self.exec_body(&cproc.body);
        // Copy-out even on error paths would be wrong; only on success.
        if result.is_ok() {
            let frame = self.frames.last().unwrap().clone();
            for (formal, actual_addr) in &frame.copy_out {
                let faddr = self.scalar_addr(*formal, line)?;
                let val = self.mem_load(faddr, line)?;
                // Find the actual's variable for the hook: we only know the
                // address; hook with the formal id (the analyzer maps
                // addresses, not names).
                self.mem_store(*actual_addr, val, line)?;
                self.hooks.store(*formal, *actual_addr);
            }
        }
        self.frames.pop();
        result
    }

    // ----- addressing ------------------------------------------------

    /// Static/overridden/bound base address of an array variable.
    pub fn array_base(&self, v: VarId, line: u32) -> Result<usize, RuntimeError> {
        if let Some(&b) = self.overrides.get(&v) {
            return Ok(b);
        }
        if let Some(b) = self.layout.base_of(v) {
            return Ok(b);
        }
        match self.current_frame().bindings.get(&v) {
            Some(&b) => Ok(b),
            None => rerr(
                line,
                format!("array `{}` has no binding", self.program.var(v).name),
            ),
        }
    }

    fn scalar_addr(&self, v: VarId, line: u32) -> Result<usize, RuntimeError> {
        if let Some(&b) = self.overrides.get(&v) {
            return Ok(b);
        }
        match self.layout.base_of(v) {
            Some(b) => Ok(b),
            None => rerr(
                line,
                format!("scalar `{}` has no storage", self.program.var(v).name),
            ),
        }
    }

    /// Evaluate one declared extent in the current frame.
    fn extent_value(&self, e: &Extent, line: u32) -> Result<Option<i64>, RuntimeError> {
        match e {
            Extent::Const(c) => Ok(Some(*c)),
            Extent::Star => Ok(None),
            Extent::Var(v) => {
                let addr = self.scalar_addr(*v, line)?;
                Ok(Some(self.mem_load(addr, line)?.as_int()))
            }
        }
    }

    /// Address of `var[subs]` (1-based, column-major), with bounds checks.
    pub fn element_addr(&self, var: VarId, subs: &[i64], line: u32) -> Result<usize, RuntimeError> {
        let info = self.program.var(var);
        let base = self.array_base(var, line)?;
        let mut linear: i64 = 0;
        let mut mult: i64 = 1;
        for (k, &i) in subs.iter().enumerate() {
            let ext = self.extent_value(&info.dims[k], line)?;
            if i < 1 {
                return rerr(
                    line,
                    format!("subscript {} of `{}` is {i} (< 1)", k + 1, info.name),
                );
            }
            if let Some(e) = ext {
                if i > e {
                    return rerr(
                        line,
                        format!(
                            "subscript {} of `{}` is {i} (> extent {e})",
                            k + 1,
                            info.name
                        ),
                    );
                }
                linear += (i - 1) * mult;
                mult *= e;
            } else {
                // `*` extent: no upper bound; must be the last dimension.
                linear += (i - 1) * mult;
            }
        }
        let addr = base as i64 + linear;
        if addr < 0 || (addr as usize) >= self.mem.len() {
            return rerr(
                line,
                format!("access to `{}` out of memory bounds", info.name),
            );
        }
        Ok(addr as usize)
    }

    /// Number of elements of an array in the current frame, if computable
    /// (adjustable extents are evaluated; `*` extents yield `None`).
    pub fn array_elem_count(&self, var: VarId, line: u32) -> Result<Option<i64>, RuntimeError> {
        let info = self.program.var(var);
        let mut n = 1i64;
        for d in &info.dims {
            match self.extent_value(d, line)? {
                Some(e) => n = n.saturating_mul(e.max(0)),
                None => return Ok(None),
            }
        }
        Ok(Some(n))
    }

    // ----- loads/stores ----------------------------------------------

    fn mem_load(&self, addr: usize, line: u32) -> Result<Value, RuntimeError> {
        match self.mem.load(addr) {
            Some(v) => Ok(v),
            None => rerr(line, format!("load out of bounds at {addr}")),
        }
    }

    fn mem_store(&mut self, addr: usize, val: Value, line: u32) -> Result<(), RuntimeError> {
        if self.mem.store(addr, val) {
            Ok(())
        } else {
            rerr(line, format!("store out of bounds at {addr}"))
        }
    }

    /// Write a scalar without firing hooks (runtime-internal writes:
    /// induction variables, parameter slots, privatization setup).
    pub fn set_scalar_raw(&mut self, v: VarId, val: Value, line: u32) -> Result<(), RuntimeError> {
        let ty = self.program.var(v).ty;
        let addr = self.scalar_addr(v, line)?;
        self.mem_store(addr, convert(val, ty), line)
    }

    /// Read a scalar without firing hooks.
    pub fn get_scalar_raw(&self, v: VarId, line: u32) -> Result<Value, RuntimeError> {
        let addr = self.scalar_addr(v, line)?;
        self.mem_load(addr, line)
    }

    fn store_ref(&mut self, r: &Ref, val: Value, line: u32) -> Result<(), RuntimeError> {
        match r {
            Ref::Scalar(v) => {
                let ty = self.program.var(*v).ty;
                let addr = self.scalar_addr(*v, line)?;
                self.mem_store(addr, convert(val, ty), line)?;
                self.hooks.store(*v, addr);
                Ok(())
            }
            Ref::Element(v, subs) => {
                let mut ssubs = Vec::with_capacity(subs.len());
                for e in subs {
                    ssubs.push(self.eval(e)?.as_int());
                }
                let ty = self.program.var(*v).ty;
                let addr = self.element_addr(*v, &ssubs, line)?;
                self.mem_store(addr, convert(val, ty), line)?;
                self.hooks.store(*v, addr);
                Ok(())
            }
        }
    }

    // ----- expression evaluation ---------------------------------------

    /// Evaluate an expression in the current frame.
    pub fn eval(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        self.ops += 1;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v) => Ok(Value::Real(*v)),
            Expr::Scalar(v) => {
                let addr = self.scalar_addr(*v, 0)?;
                let val = self.mem_load(addr, 0)?;
                self.hooks.load(*v, addr);
                Ok(val)
            }
            Expr::Element(v, subs) => {
                let mut ssubs = Vec::with_capacity(subs.len());
                for s in subs {
                    ssubs.push(self.eval(s)?.as_int());
                }
                let addr = self.element_addr(*v, &ssubs, 0)?;
                let val = self.mem_load(addr, 0)?;
                self.hooks.load(*v, addr);
                Ok(val)
            }
            Expr::Unary(op, a) => {
                let v = self.eval(a)?;
                Ok(match op {
                    UnaryOp::Neg => match v {
                        Value::Int(x) => Value::Int(-x),
                        Value::Real(x) => Value::Real(-x),
                    },
                    UnaryOp::Not => Value::Int(if v.truthy() { 0 } else { 1 }),
                })
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        let l = self.eval(a)?;
                        if !l.truthy() {
                            return Ok(Value::Int(0));
                        }
                        let r = self.eval(b)?;
                        return Ok(Value::Int(if r.truthy() { 1 } else { 0 }));
                    }
                    BinOp::Or => {
                        let l = self.eval(a)?;
                        if l.truthy() {
                            return Ok(Value::Int(1));
                        }
                        let r = self.eval(b)?;
                        return Ok(Value::Int(if r.truthy() { 1 } else { 0 }));
                    }
                    _ => {}
                }
                let l = self.eval(a)?;
                let r = self.eval(b)?;
                eval_binop(*op, l, r)
            }
            Expr::Intrinsic(which, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                eval_intrinsic(*which, &vals)
            }
        }
    }
}

fn convert(v: Value, ty: Type) -> Value {
    match ty {
        Type::Int => Value::Int(v.as_int()),
        Type::Real => Value::Real(v.as_real()),
    }
}

fn eval_binop(op: BinOp, l: Value, r: Value) -> Result<Value, RuntimeError> {
    use BinOp::*;
    let both_int = l.is_int() && r.is_int();
    Ok(match op {
        Add | Sub | Mul | Div | Rem => {
            if both_int {
                let (a, b) = (l.as_int(), r.as_int());
                match op {
                    Add => Value::Int(a.wrapping_add(b)),
                    Sub => Value::Int(a.wrapping_sub(b)),
                    Mul => Value::Int(a.wrapping_mul(b)),
                    Div => {
                        if b == 0 {
                            return rerr(0, "integer division by zero");
                        }
                        Value::Int(a / b)
                    }
                    Rem => {
                        if b == 0 {
                            return rerr(0, "integer remainder by zero");
                        }
                        Value::Int(a % b)
                    }
                    _ => unreachable!(),
                }
            } else {
                let (a, b) = (l.as_real(), r.as_real());
                match op {
                    Add => Value::Real(a + b),
                    Sub => Value::Real(a - b),
                    Mul => Value::Real(a * b),
                    Div => Value::Real(a / b),
                    Rem => Value::Real(a % b),
                    _ => unreachable!(),
                }
            }
        }
        Lt | Le | Gt | Ge | Eq | Ne => {
            let c = if both_int {
                let (a, b) = (l.as_int(), r.as_int());
                match op {
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    Eq => a == b,
                    Ne => a != b,
                    _ => unreachable!(),
                }
            } else {
                let (a, b) = (l.as_real(), r.as_real());
                match op {
                    Lt => a < b,
                    Le => a <= b,
                    Gt => a > b,
                    Ge => a >= b,
                    Eq => a == b,
                    Ne => a != b,
                    _ => unreachable!(),
                }
            };
            Value::Int(if c { 1 } else { 0 })
        }
        And | Or => unreachable!("handled with short-circuit"),
    })
}

fn eval_intrinsic(which: Intrinsic, vals: &[Value]) -> Result<Value, RuntimeError> {
    use Intrinsic::*;
    Ok(match which {
        Min | Max => {
            let (a, b) = (vals[0], vals[1]);
            if a.is_int() && b.is_int() {
                let (x, y) = (a.as_int(), b.as_int());
                Value::Int(if which == Min { x.min(y) } else { x.max(y) })
            } else {
                let (x, y) = (a.as_real(), b.as_real());
                Value::Real(if which == Min { x.min(y) } else { x.max(y) })
            }
        }
        Abs => match vals[0] {
            Value::Int(v) => Value::Int(v.abs()),
            Value::Real(v) => Value::Real(v.abs()),
        },
        Sqrt => Value::Real(vals[0].as_real().sqrt()),
        Mod => {
            let (a, b) = (vals[0], vals[1]);
            if a.is_int() && b.is_int() {
                if b.as_int() == 0 {
                    return rerr(0, "mod by zero");
                }
                Value::Int(a.as_int() % b.as_int())
            } else {
                Value::Real(a.as_real() % b.as_real())
            }
        }
        Sin => Value::Real(vals[0].as_real().sin()),
        Cos => Value::Real(vals[0].as_real().cos()),
        Exp => Value::Real(vals[0].as_real().exp()),
        Log => Value::Real(vals[0].as_real().ln()),
        Ifix => Value::Int(vals[0].as_int()),
        Float => Value::Real(vals[0].as_real()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    fn run_src(src: &str) -> (Vec<String>, u64) {
        let p = parse_program(src).unwrap();
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        m.run().unwrap_or_else(|e| panic!("{e}\n{src}"));
        (m.output.clone(), m.ops())
    }

    #[test]
    fn arithmetic_and_print() {
        let (out, ops) = run_src(
            "program t\nproc main() {\n real x\n int k\n k = 7 / 2\n x = 7 / 2.0\n print k, x\n}",
        );
        assert_eq!(out, vec!["3 3.5"]);
        assert!(ops > 0);
    }

    #[test]
    fn do_loop_sums() {
        let (out, _) = run_src(
            "program t\nproc main() {\n int i, s\n s = 0\n do i = 1, 10 {\n s = s + i\n }\n print s\n}",
        );
        assert_eq!(out, vec!["55"]);
    }

    #[test]
    fn do_loop_with_negative_step() {
        let (out, _) = run_src(
            "program t\nproc main() {\n int i, s\n s = 0\n do i = 10, 1, -2 {\n s = s + i\n }\n print s\n}",
        );
        assert_eq!(out, vec!["30"]); // 10+8+6+4+2
    }

    #[test]
    fn arrays_are_one_based_column_major() {
        let (out, _) = run_src(
            "program t\nproc main() {\n real a[2, 3]\n int i, j\n do i = 1, 2 {\n do j = 1, 3 {\n a[i, j] = i * 10 + j\n }\n }\n print a[1, 1], a[2, 3]\n}",
        );
        assert_eq!(out, vec!["11 23"]);
    }

    #[test]
    fn subarray_argument_passing() {
        // init(b[k], n) initializes b[k..k+n-1] — the Fig. 5-1 pattern.
        let (out, _) = run_src(
            "program t\nproc init(real q[*], int n) {\n int j\n do j = 1, n {\n q[j] = j\n }\n}\nproc main() {\n real b[10]\n call init(b[4], 3)\n print b[3], b[4], b[6], b[7]\n}",
        );
        assert_eq!(out, vec!["0 1 3 0"]);
    }

    #[test]
    fn scalar_copy_in_copy_out() {
        let (out, _) = run_src(
            "program t\nproc bump(int k) {\n k = k + 1\n}\nproc main() {\n int n\n n = 41\n call bump(n)\n print n\n call bump(n + 100)\n print n\n}",
        );
        // Expression args get no copy-out.
        assert_eq!(out, vec!["42", "42"]);
    }

    #[test]
    fn common_blocks_share_storage_across_procs() {
        let (out, _) = run_src(
            "program t\nproc set() {\n common /c/ real a[4]\n a[2] = 9.5\n}\nproc main() {\n common /c/ real x[2], real y[2]\n call set()\n print y[1] + x[1]\n}",
        );
        // set's a[2] is main's x[2]... wait: a[1..4] maps to x[1..2],y[1..2];
        // a[2] == x[2]. y[1] == a[3] == 0.
        assert_eq!(out, vec!["0"]);
    }

    #[test]
    fn common_block_overlap_elementwise() {
        let (out, _) = run_src(
            "program t\nproc set() {\n common /c/ real a[4]\n int i\n do i = 1, 4 {\n a[i] = i\n }\n}\nproc main() {\n common /c/ real x[2], real y[2]\n call set()\n print x[1], x[2], y[1], y[2]\n}",
        );
        assert_eq!(out, vec!["1 2 3 4"]);
    }

    #[test]
    fn adjustable_array_extents() {
        let (out, _) = run_src(
            "program t\nproc f(real a[n, m], int n, int m) {\n a[2, 3] = 7\n}\nproc main() {\n real b[6]\n int i\n call f(b, 2, 3)\n do i = 1, 6 {\n print b[i]\n }\n}",
        );
        // a[2,3] with extents (2,3) column-major = element (2-1) + 2*(3-1) = 5 → b[6].
        assert_eq!(out[5], "7");
        assert_eq!(out[4], "0");
    }

    #[test]
    fn bounds_violation_is_reported() {
        let p = parse_program("program t\nproc main() {\n real a[3]\n int i\n i = 4\n a[i] = 0\n}")
            .unwrap();
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        let e = m.run().unwrap_err();
        assert!(e.message.contains("extent"), "{e}");
    }

    #[test]
    fn short_circuit_guards_out_of_bounds() {
        let (out, _) = run_src(
            "program t\nproc main() {\n real a[3]\n int k\n k = 9\n if k <= 3 && a[k] > 0 {\n print 1\n } else {\n print 0\n }\n}",
        );
        assert_eq!(out, vec!["0"]);
    }

    #[test]
    fn read_consumes_input() {
        let p = parse_program(
            "program t\nproc main() {\n int n\n real x\n read n\n read x\n print n, x\n}",
        )
        .unwrap();
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        m.set_input(vec![5.0, 2.5]);
        m.run().unwrap();
        assert_eq!(m.output, vec!["5 2.5"]);
    }

    #[test]
    fn intrinsics() {
        let (out, _) = run_src(
            "program t\nproc main() {\n print min(3, 5), max(2.0, 7.0), abs(-4), sqrt(9.0), mod(7, 3)\n}",
        );
        assert_eq!(out, vec!["3 7 4 3 1"]);
    }

    #[test]
    fn mdg_style_conditional_flow() {
        // The Fig. 4-3 pattern: RL[6:9] written under one condition, read
        // under a stronger one.
        let src = r#"program t
proc main() {
  real rs[9], rl[14]
  int k, kc, i
  real cut2, acc
  cut2 = 5.0
  acc = 0
  do 1000 i = 1, 3 {
    kc = 0
    do 1110 k = 1, 9 {
      rs[k] = i * k
      if rs[k] > cut2 { kc = kc + 1 }
    }
    if kc != 9 {
      do 1130 k = 2, 5 {
        if rs[k + 4] <= cut2 { rl[k + 4] = rs[k + 4] * 2 }
      }
      if kc == 0 {
        do 1140 k = 11, 14 {
          acc = acc + rl[k - 5]
        }
      }
    }
  }
  print acc
}
"#;
        let (out, _) = run_src(src);
        // i=1: rs[k]=k, kc=4 (rs 6..9 > 5) → writes rl for rs[k+4]<=5 i.e. none... rs[6..9]=6..9>5 so no rl writes, kc!=0 so no reads.
        // i=2: rs=2k, kc = #(2k>5) = k>=3 → 7; no reads.
        // i=3: rs=3k, kc = #(3k>5)=k>=2 → 8; no reads.
        // acc stays 0.
        assert_eq!(out, vec!["0"]);
    }
}
