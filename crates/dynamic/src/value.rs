//! Runtime values.

use std::fmt;

/// A MiniF runtime value: 64-bit integer or 64-bit float.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
}

impl Value {
    /// Numeric value as a float (ints widen exactly up to 2^53).
    pub fn as_real(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Real(v) => v,
        }
    }

    /// Integer value; reals are truncated toward zero (Fortran `IFIX`).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Real(v) => v as i64,
        }
    }

    /// Fortran truthiness: non-zero.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Real(v) => v != 0.0,
        }
    }

    /// True when this is an integer value.
    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::Int(3).as_real(), 3.0);
        assert_eq!(Value::Real(3.9).as_int(), 3);
        assert_eq!(Value::Real(-3.9).as_int(), -3);
        assert!(Value::Int(1).truthy());
        assert!(!Value::Real(0.0).truthy());
    }
}
