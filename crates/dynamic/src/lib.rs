//! Execution substrate for the SUIF Explorer reproduction: a MiniF
//! interpreter plus the two *Execution Analyzers* of §2.5:
//!
//! * the **Loop Profile Analyzer** (§2.5.1) — per-loop execution time
//!   (virtual-op cost and wall clock), invocation counts, coverage and
//!   granularity metrics;
//! * the **Dynamic Dependence Analyzer** (§2.5.2) — shadow-memory tracking of
//!   the most recent write to every location, reporting loop-carried flow
//!   dependences while ignoring compiler-recognized induction variables and
//!   reduction updates, ignoring anti-dependences, and modelling
//!   privatization (a read preceded by a same-iteration write carries no
//!   dependence).  Iteration batching (§2.5.2's second optimization) is
//!   supported through a sampling configuration.
//!
//! The interpreter uses Fortran-77 storage semantics: statically allocated
//! locals (SAVE semantics), common blocks as shared segments, by-reference
//! array arguments (including sub-array bases) and copy-in/copy-out scalars.
//! Because MiniF has only bounded `do` loops and an acyclic call graph,
//! every program terminates — no fuel accounting is needed.
//!
//! The [`machine::Machine`] exposes a *loop handler* extension point through
//! which the `suif-parallel` crate executes compiler-parallelized loops on
//! worker threads over a shared view of this machine's memory.
//!
//! On top of that sits the **race-certification subsystem** (`docs/dynamic.md`):
//! [`race`] is a happens-before / vector-clock race detector, [`sched`] a
//! seeded adversarial scheduler, and [`certify`] a parallel loop executor
//! that runs a loop's iterations on real worker threads serialized through a
//! token-passing gate with a preemption point at every shared memory access,
//! certifying (or refuting) the static parallelizer's DOALL claims.
//!
//! ```
//! use suif_dynamic::machine::{Machine, NoHooks};
//! let program = suif_ir::parse_program(
//!     "program p\nproc main() {\n int i, s\n s = 0\n do i = 1, 10 {\n s = s + i\n }\n print s\n}",
//! ).unwrap();
//! let mut hooks = NoHooks;
//! let mut m = Machine::new(&program, &mut hooks).unwrap();
//! m.run().unwrap();
//! assert_eq!(m.output, vec!["55"]);
//! ```

#![warn(missing_docs)]

pub mod certify;
pub mod dyndep;
pub mod layout;
pub mod machine;
pub mod profile;
pub mod race;
pub mod sched;
pub mod value;

pub use certify::{CertOp, CertOutcome, CertRole, CertSegment, CertSpec, CertifyHandler, SpecFn};
pub use dyndep::{DynDepAnalyzer, DynDepConfig, DynDepReport};
pub use layout::Layout;
pub use machine::{Hooks, Machine, MemStore, NoHooks, RuntimeError};
pub use profile::{LoopProfile, LoopProfiler, ProfileReport};
pub use race::{AccessInfo, AccessKind, Race, RaceDetector, RaceHooks, VectorClock};
pub use sched::{AdversarialScheduler, SchedPolicy, SplitMix64};
pub use value::Value;
