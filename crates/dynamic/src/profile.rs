//! The Loop Profile Analyzer (§2.5.1).
//!
//! Runs the program sequentially and determines, for each loop, its total
//! (inclusive) execution cost and its average computation per invocation —
//! "which loops dominate the execution time and whether the computation time
//! is spread over many different invocations".
//!
//! Two cost metrics are kept: *virtual ops* (the machine's deterministic
//! operation counter — used by tests and for stable rankings) and wall-clock
//! nanoseconds (used for the speedup figures).

use crate::machine::Hooks;
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use suif_ir::{StmtId, VarId};

/// Per-loop profile data.
#[derive(Clone, Debug, Default)]
pub struct LoopProfile {
    /// Number of times the loop was entered.
    pub invocations: u64,
    /// Number of iterations executed in total.
    pub iterations: u64,
    /// Total inclusive virtual ops across invocations.
    pub total_ops: u64,
    /// Total inclusive wall time in nanoseconds.
    pub total_nanos: u64,
    /// Loops observed dynamically enclosing this one at least once.
    pub dynamic_ancestors: HashSet<StmtId>,
}

impl LoopProfile {
    /// Average virtual ops per invocation (granularity metric, §2.6).
    pub fn granularity_ops(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_ops as f64 / self.invocations as f64
        }
    }

    /// Average wall nanoseconds per invocation.
    pub fn granularity_nanos(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.invocations as f64
        }
    }
}

/// The profiler: plug into a [`crate::Machine`] as its hooks, run, then call
/// [`LoopProfiler::report`].
pub struct LoopProfiler {
    profiles: HashMap<StmtId, LoopProfile>,
    stack: Vec<ActiveLoop>,
    start: Instant,
    total_nanos: u64,
    final_ops: u64,
}

struct ActiveLoop {
    stmt: StmtId,
    enter_ops: u64,
    enter_time: Instant,
}

impl Default for LoopProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopProfiler {
    /// Fresh profiler.
    pub fn new() -> LoopProfiler {
        LoopProfiler {
            profiles: HashMap::new(),
            stack: Vec::new(),
            start: Instant::now(),
            total_nanos: 0,
            final_ops: 0,
        }
    }

    /// Finish and extract the report (call after the machine run completes).
    pub fn report(mut self) -> ProfileReport {
        self.total_nanos = self.start.elapsed().as_nanos() as u64;
        ProfileReport {
            profiles: self.profiles,
            total_nanos: self.total_nanos,
            total_ops: self.final_ops,
        }
    }
}

impl Hooks for LoopProfiler {
    fn loop_enter(&mut self, stmt: StmtId, ops: u64) {
        let prof = self.profiles.entry(stmt).or_default();
        for a in &self.stack {
            prof.dynamic_ancestors.insert(a.stmt);
        }
        self.stack.push(ActiveLoop {
            stmt,
            enter_ops: ops,
            enter_time: Instant::now(),
        });
    }

    fn loop_iter(&mut self, stmt: StmtId, _iter: i64) {
        self.profiles.entry(stmt).or_default().iterations += 1;
    }

    fn loop_exit(&mut self, stmt: StmtId, ops: u64) {
        let Some(top) = self.stack.pop() else { return };
        debug_assert_eq!(top.stmt, stmt);
        let prof = self.profiles.entry(stmt).or_default();
        prof.invocations += 1;
        prof.total_ops += ops.saturating_sub(top.enter_ops);
        prof.total_nanos += top.enter_time.elapsed().as_nanos() as u64;
        self.final_ops = self.final_ops.max(ops);
    }
}

/// The finished profile.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Per-loop profiles.
    pub profiles: HashMap<StmtId, LoopProfile>,
    /// Whole-run wall time in nanoseconds.
    pub total_nanos: u64,
    /// Whole-run virtual ops (max observed counter).
    pub total_ops: u64,
}

impl ProfileReport {
    /// Profile for one loop.
    pub fn loop_profile(&self, stmt: StmtId) -> Option<&LoopProfile> {
        self.profiles.get(&stmt)
    }

    /// Fraction of total ops spent inside a loop (inclusive).
    pub fn coverage_of(&self, stmt: StmtId) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        self.profiles
            .get(&stmt)
            .map(|p| p.total_ops as f64 / self.total_ops as f64)
            .unwrap_or(0.0)
    }

    /// Parallelism coverage of a *set* of loops (§2.6): the fraction of
    /// execution spent under at least one loop of the set.  Loops whose
    /// dynamic ancestors include another set member contribute nothing (the
    /// enclosing member already covers them) — this matches the runtime rule
    /// that only the outermost parallel loop executes in parallel.
    pub fn coverage(&self, set: &HashSet<StmtId>) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        let mut covered = 0u64;
        for (&stmt, prof) in &self.profiles {
            if set.contains(&stmt) && prof.dynamic_ancestors.is_disjoint(set) {
                covered += prof.total_ops;
            }
        }
        (covered as f64 / self.total_ops as f64).min(1.0)
    }

    /// Parallelism granularity of a set of loops (§2.6): the average
    /// inclusive cost per invocation over the dynamically-outermost members.
    pub fn granularity(&self, set: &HashSet<StmtId>) -> f64 {
        let mut ops = 0u64;
        let mut inv = 0u64;
        for (&stmt, prof) in &self.profiles {
            if set.contains(&stmt) && prof.dynamic_ancestors.is_disjoint(set) {
                ops += prof.total_ops;
                inv += prof.invocations;
            }
        }
        if inv == 0 {
            0.0
        } else {
            ops as f64 / inv as f64
        }
    }

    /// Loops sorted by decreasing total cost (the Guru's target ordering).
    pub fn loops_by_cost(&self) -> Vec<(StmtId, &LoopProfile)> {
        let mut v: Vec<_> = self.profiles.iter().map(|(&s, p)| (s, p)).collect();
        v.sort_by(|a, b| b.1.total_ops.cmp(&a.1.total_ops).then(a.0.cmp(&b.0)));
        v
    }
}

/// Convenience: variables are not profiled, but re-export the hook trait so
/// callers can combine analyzers.
pub fn _unused(_: VarId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use suif_ir::{parse_program, RegionTree};

    #[test]
    fn profiles_loop_costs_and_nesting() {
        let p = parse_program(
            r#"program t
proc main() {
  int i, j, s
  s = 0
  do 10 i = 1, 20 {
    do 20 j = 1, 50 {
      s = s + j
    }
  }
  do 30 i = 1, 5 {
    s = s + i
  }
  print s
}
"#,
        )
        .unwrap();
        let tree = RegionTree::build(&p);
        let mut prof = LoopProfiler::new();
        {
            let mut m = Machine::new(&p, &mut prof).unwrap();
            m.run().unwrap();
        }
        let rep = prof.report();
        let by_name = |n: &str| tree.loops.iter().find(|l| l.name == n).unwrap().stmt;
        let outer = by_name("main/10");
        let inner = by_name("main/20");
        let small = by_name("main/30");

        let pi = rep.loop_profile(inner).unwrap();
        assert_eq!(pi.invocations, 20);
        assert_eq!(pi.iterations, 20 * 50);
        assert!(pi.dynamic_ancestors.contains(&outer));

        let po = rep.loop_profile(outer).unwrap();
        assert_eq!(po.invocations, 1);
        // Outer cost dominates the small loop's.
        assert!(po.total_ops > rep.loop_profile(small).unwrap().total_ops);

        // Coverage of {outer, inner} counts only the outer.
        let mut set = HashSet::new();
        set.insert(outer);
        set.insert(inner);
        let cov_both = rep.coverage(&set);
        let mut souter = HashSet::new();
        souter.insert(outer);
        assert!((cov_both - rep.coverage(&souter)).abs() < 1e-9);
        assert!(cov_both > 0.8 && cov_both <= 1.0);

        // Granularity of the outer loop is much larger than the inner's.
        let mut sinner = HashSet::new();
        sinner.insert(inner);
        assert!(rep.granularity(&souter) > rep.granularity(&sinner) * 10.0);
    }
}
