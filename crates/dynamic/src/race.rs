//! Happens-before race detection over vector clocks.
//!
//! The certifying parallel executor (see [`crate::certify`]) models a
//! `DOALL` loop as a fork/join region: a parent logical thread forks one
//! logical thread per iteration, every iteration runs concurrently with all
//! others, and the parent joins them at loop exit.  This module implements
//! the generic happens-before machinery for that structure — vector clocks
//! per logical thread, fork/join edges, release/acquire edges through locks
//! — and a shadow-memory detector in the Djit+ style: per address it keeps
//! the last-write epoch and a bounded set of concurrent read epochs, and
//! reports the **first conflicting access pair** with source locations.
//!
//! Addresses at or beyond the `shared_limit` (the thread-private tail of a
//! worker's [`crate::machine::MemStore::View`]) are thread-private by
//! construction and are never recorded.

use crate::machine::Hooks;
use std::collections::HashMap;
use suif_ir::{StmtId, VarId};

/// A vector clock: component `t` counts the events of logical thread `t`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock(Vec::new())
    }

    /// Component `t` (0 when never touched).
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, v: u32) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Pointwise maximum (the join of two clocks).
    pub fn merge(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (k, &v) in other.0.iter().enumerate() {
            if self.0[k] < v {
                self.0[k] = v;
            }
        }
    }
}

/// An epoch: one event of one logical thread, `(thread, clock)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    /// Logical thread.
    pub thread: usize,
    /// That thread's own clock component at the event.
    pub clock: u32,
}

impl Epoch {
    /// Does this epoch happen-before (or equal) the point described by `vc`?
    pub fn happens_before(&self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.thread)
    }
}

/// Whether an access reads or writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A memory read.
    Read,
    /// A memory write.
    Write,
}

/// One recorded memory access, with its source location.
#[derive(Clone, Copy, Debug)]
pub struct AccessInfo {
    /// Logical thread (for loop certification: 0 is the parent, `k + 1` is
    /// iteration `k`).
    pub thread: usize,
    /// Variable through which the cell was accessed.
    pub var: VarId,
    /// Source line of the accessing statement.
    pub line: u32,
    /// Statement id of the accessing statement.
    pub stmt: StmtId,
    /// Read or write.
    pub kind: AccessKind,
}

/// A detected race: two concurrent conflicting accesses to one address.
#[derive(Clone, Debug)]
pub struct Race {
    /// The memory address both accesses touched.
    pub addr: usize,
    /// The earlier access (in the interleaved execution order).
    pub first: AccessInfo,
    /// The later access.
    pub second: AccessInfo,
}

impl Race {
    /// `"write-write"` or `"read-write"` label for reports.
    pub fn kind(&self) -> &'static str {
        match (self.first.kind, self.second.kind) {
            (AccessKind::Write, AccessKind::Write) => "write-write",
            _ => "read-write",
        }
    }
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race at addr {}: thread {} line {} vs thread {} line {}",
            self.kind(),
            self.addr,
            self.first.thread,
            self.first.line,
            self.second.thread,
            self.second.line
        )
    }
}

/// Shadow state per address: the last write epoch plus up to two concurrent
/// read epochs.  Two reads are enough: a later write conflicts with *some*
/// unordered read iff it conflicts with one of any two reads from distinct
/// threads (at most one of them can share the writer's thread).
#[derive(Clone, Debug, Default)]
struct Shadow {
    write: Option<(Epoch, AccessInfo)>,
    reads: Vec<(Epoch, AccessInfo)>,
}

/// The happens-before detector.
pub struct RaceDetector {
    clocks: Vec<VectorClock>,
    locks: HashMap<usize, VectorClock>,
    shadow: HashMap<usize, Shadow>,
    shared_limit: usize,
    races: Vec<Race>,
    /// Total shared accesses examined.
    pub accesses: u64,
    max_races: usize,
}

impl RaceDetector {
    /// A detector over `threads` logical threads; addresses `>= shared_limit`
    /// are thread-private and ignored.  Every thread starts with its own
    /// component at 1 (so epochs are never the zero clock).
    pub fn new(threads: usize, shared_limit: usize) -> RaceDetector {
        let mut clocks = Vec::with_capacity(threads);
        for t in 0..threads {
            let mut c = VectorClock::new();
            c.set(t, 1);
            clocks.push(c);
        }
        RaceDetector {
            clocks,
            locks: HashMap::new(),
            shadow: HashMap::new(),
            shared_limit,
            races: Vec::new(),
            accesses: 0,
            max_races: 64,
        }
    }

    fn epoch(&self, t: usize) -> Epoch {
        Epoch {
            thread: t,
            clock: self.clocks[t].get(t),
        }
    }

    /// Fork edge: everything `parent` did so far happens-before `child`.
    pub fn fork(&mut self, parent: usize, child: usize) {
        let pc = self.clocks[parent].clone();
        self.clocks[child].merge(&pc);
        let inc = self.clocks[parent].get(parent) + 1;
        self.clocks[parent].set(parent, inc);
    }

    /// Join edge: everything `child` did happens-before `parent` afterwards.
    pub fn join(&mut self, parent: usize, child: usize) {
        let cc = self.clocks[child].clone();
        self.clocks[parent].merge(&cc);
        let inc = self.clocks[child].get(child) + 1;
        self.clocks[child].set(child, inc);
    }

    /// Release edge: thread `t` releases lock `l`.
    pub fn release(&mut self, t: usize, l: usize) {
        let entry = self.locks.entry(l).or_default();
        entry.merge(&self.clocks[t]);
        let inc = self.clocks[t].get(t) + 1;
        self.clocks[t].set(t, inc);
    }

    /// Acquire edge: thread `t` acquires lock `l`.
    pub fn acquire(&mut self, t: usize, l: usize) {
        if let Some(lc) = self.locks.get(&l) {
            let lc = lc.clone();
            self.clocks[t].merge(&lc);
        }
    }

    /// Record one access and check it against the shadow state.  Returns the
    /// race this access completes, if any (also appended to [`Self::races`]).
    pub fn on_access(
        &mut self,
        thread: usize,
        var: VarId,
        addr: usize,
        stmt: StmtId,
        line: u32,
        kind: AccessKind,
    ) -> Option<Race> {
        if addr >= self.shared_limit || self.races.len() >= self.max_races {
            return None;
        }
        self.accesses += 1;
        let me = self.epoch(thread);
        let info = AccessInfo {
            thread,
            var,
            line,
            stmt,
            kind,
        };
        let vc = self.clocks[thread].clone();
        let shadow = self.shadow.entry(addr).or_default();
        let mut found: Option<Race> = None;
        // Write/write and read-after-write conflicts.
        if let Some((we, winfo)) = &shadow.write {
            if we.thread != thread && !we.happens_before(&vc) {
                found = Some(Race {
                    addr,
                    first: *winfo,
                    second: info,
                });
            }
        }
        match kind {
            AccessKind::Read => {
                // Keep at most two unordered read epochs from distinct
                // threads; drop reads ordered before this one.
                shadow.reads.retain(|(e, _)| !e.happens_before(&vc));
                if !shadow.reads.iter().any(|(e, _)| e.thread == thread) && shadow.reads.len() < 2 {
                    shadow.reads.push((me, info));
                } else if let Some(slot) = shadow.reads.iter_mut().find(|(e, _)| e.thread == thread)
                {
                    *slot = (me, info);
                }
            }
            AccessKind::Write => {
                // Write-after-read conflicts.
                if found.is_none() {
                    for (re, rinfo) in &shadow.reads {
                        if re.thread != thread && !re.happens_before(&vc) {
                            found = Some(Race {
                                addr,
                                first: *rinfo,
                                second: info,
                            });
                            break;
                        }
                    }
                }
                shadow.reads.clear();
                shadow.write = Some((me, info));
            }
        }
        if let Some(r) = &found {
            self.races.push(r.clone());
        }
        found
    }

    /// All races recorded so far (bounded by an internal cap).
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// The first conflicting access pair, if any.
    pub fn first_race(&self) -> Option<&Race> {
        self.races.first()
    }

    /// Consume the detector, returning the recorded races.
    pub fn into_races(self) -> Vec<Race> {
        self.races
    }
}

/// [`Hooks`] adapter that feeds a single-thread access stream into a
/// [`RaceDetector`] — used for monitored *sequential* replays where every
/// access belongs to one logical thread chosen by the caller.
pub struct RaceHooks {
    /// The detector being fed.
    pub detector: RaceDetector,
    /// Logical thread accesses are attributed to.
    pub thread: usize,
    stmt: StmtId,
    line: u32,
}

impl RaceHooks {
    /// Feed `detector` attributing every access to `thread`.
    pub fn new(detector: RaceDetector, thread: usize) -> RaceHooks {
        RaceHooks {
            detector,
            thread,
            stmt: StmtId(0),
            line: 0,
        }
    }
}

impl Hooks for RaceHooks {
    fn on_stmt(&mut self, id: StmtId, line: u32) {
        self.stmt = id;
        self.line = line;
    }

    fn load(&mut self, var: VarId, addr: usize) {
        self.detector.on_access(
            self.thread,
            var,
            addr,
            self.stmt,
            self.line,
            AccessKind::Read,
        );
    }

    fn store(&mut self, var: VarId, addr: usize) {
        self.detector.on_access(
            self.thread,
            var,
            addr,
            self.stmt,
            self.line,
            AccessKind::Write,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VarId {
        VarId(n)
    }

    fn s(n: u32) -> StmtId {
        StmtId(n)
    }

    #[test]
    fn concurrent_write_write_is_a_race() {
        let mut d = RaceDetector::new(3, 100);
        d.fork(0, 1);
        d.fork(0, 2);
        assert!(d
            .on_access(1, v(0), 5, s(1), 10, AccessKind::Write)
            .is_none());
        let r = d
            .on_access(2, v(0), 5, s(2), 11, AccessKind::Write)
            .expect("race");
        assert_eq!(r.kind(), "write-write");
        assert_eq!(r.first.line, 10);
        assert_eq!(r.second.line, 11);
        assert_eq!(d.races().len(), 1);
    }

    #[test]
    fn fork_and_join_order_accesses() {
        let mut d = RaceDetector::new(2, 100);
        // Parent writes before the fork: ordered.
        d.on_access(0, v(0), 7, s(1), 1, AccessKind::Write);
        d.fork(0, 1);
        assert!(d.on_access(1, v(0), 7, s(2), 2, AccessKind::Read).is_none());
        // Child writes; after the join the parent may read race-free.
        d.on_access(1, v(0), 7, s(3), 3, AccessKind::Write);
        d.join(0, 1);
        assert!(d.on_access(0, v(0), 7, s(4), 4, AccessKind::Read).is_none());
        assert!(d.races().is_empty());
    }

    #[test]
    fn unjoined_child_write_races_with_parent_read() {
        let mut d = RaceDetector::new(2, 100);
        d.fork(0, 1);
        d.on_access(1, v(0), 3, s(1), 5, AccessKind::Write);
        let r = d
            .on_access(0, v(0), 3, s(2), 6, AccessKind::Read)
            .expect("race");
        assert_eq!(r.kind(), "read-write");
    }

    #[test]
    fn lock_release_acquire_creates_order() {
        let mut d = RaceDetector::new(3, 100);
        d.fork(0, 1);
        d.fork(0, 2);
        d.acquire(1, 0);
        d.on_access(1, v(0), 9, s(1), 1, AccessKind::Write);
        d.release(1, 0);
        d.acquire(2, 0);
        assert!(
            d.on_access(2, v(0), 9, s(2), 2, AccessKind::Write)
                .is_none(),
            "lock-ordered writes must not race"
        );
        d.release(2, 0);
        // A third access without the lock still races with the second write.
        d.fork(0, 1); // parent clock moves, but thread 1 is still unordered
        let r = d.on_access(1, v(0), 9, s(3), 3, AccessKind::Write);
        assert!(r.is_some(), "unlocked write must race");
    }

    #[test]
    fn write_after_unordered_read_is_a_race() {
        let mut d = RaceDetector::new(3, 100);
        d.fork(0, 1);
        d.fork(0, 2);
        d.on_access(1, v(0), 4, s(1), 1, AccessKind::Read);
        let r = d
            .on_access(2, v(0), 4, s(2), 2, AccessKind::Write)
            .expect("race");
        assert_eq!(r.kind(), "read-write");
        assert_eq!(r.first.thread, 1);
        assert_eq!(r.second.thread, 2);
    }

    #[test]
    fn two_reads_then_write_catches_either_read() {
        // Reads by threads 1 and 2, then a write by thread 2: the write is
        // ordered after its own read but not after thread 1's.
        let mut d = RaceDetector::new(3, 100);
        d.fork(0, 1);
        d.fork(0, 2);
        d.on_access(1, v(0), 4, s(1), 1, AccessKind::Read);
        d.on_access(2, v(0), 4, s(2), 2, AccessKind::Read);
        let r = d
            .on_access(2, v(0), 4, s(3), 3, AccessKind::Write)
            .expect("race with thread 1's read");
        assert_eq!(r.first.thread, 1);
    }

    #[test]
    fn private_tail_addresses_are_ignored() {
        let mut d = RaceDetector::new(3, 10);
        d.fork(0, 1);
        d.fork(0, 2);
        d.on_access(1, v(0), 10, s(1), 1, AccessKind::Write);
        assert!(d
            .on_access(2, v(0), 10, s(2), 2, AccessKind::Write)
            .is_none());
        assert_eq!(d.accesses, 0);
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut d = RaceDetector::new(2, 100);
        d.fork(0, 1);
        d.on_access(1, v(0), 5, s(1), 1, AccessKind::Write);
        assert!(d
            .on_access(1, v(0), 5, s(2), 2, AccessKind::Write)
            .is_none());
        assert!(d.on_access(1, v(0), 5, s(3), 3, AccessKind::Read).is_none());
    }
}
