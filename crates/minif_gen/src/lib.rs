//! Seeded MiniF program generator, shared by the property/certification
//! harnesses (`tests/prop_random_programs.rs`, `tests/certify_differential.rs`)
//! and the corpus driver (`suif-explorer corpus`).
//!
//! The generator produces small but structurally varied programs: nested
//! loops, conditionals, array/scalar assignments with in-bounds subscripts,
//! and reduction-style updates.  Control flow and subscripts depend only on
//! loop indices (never on data values), so the set of memory addresses a
//! program touches is schedule-independent — the property the certification
//! harness relies on when comparing interleavings.
//!
//! # Determinism
//!
//! Generation is a pure function of a `u64` seed: [`program_for_seed`] /
//! [`source_for_seed`] drive the proptest strategies with the vendored
//! shim's SplitMix64 stream seeded exactly (no wall clock, no ambient
//! randomness anywhere in the path), so a corpus materialized from a seed
//! range is bit-identical across machines and runs.  The proptest harnesses
//! consume the same strategies ([`gprogram`]) through their own per-test
//! streams — a generator fix propagates to both consumers.

use proptest::prelude::*;

/// Array extent used throughout generated programs.
pub const N: i64 = 12;

#[derive(Clone, Debug)]
pub enum GExpr {
    Const(f64),
    Scalar(usize),     // s<k>
    Elem(usize, GSub), // a<k>[sub]
    Add(Box<GExpr>, Box<GExpr>),
    Mul(Box<GExpr>, f64),
}

#[derive(Clone, Debug)]
pub enum GSub {
    LoopVar,         // i (innermost loop var)
    LoopVarOff(i64), // clamped i + c
    Mixed(i64),      // mod(i * c, N) + 1
    Const(i64),
}

#[derive(Clone, Debug)]
pub enum GStmt {
    AssignScalar(usize, GExpr),
    AssignElem(usize, GSub, GExpr),
    Update(usize, GSub, GExpr), // a[sub] = a[sub] + e
    ScalarSum(usize, GExpr),    // s = s + e
    If(GSub, Vec<GStmt>),       // if a0[sub] >= 0 { .. } (always true: a0 >= 0)
    Loop(Vec<GStmt>),           // nested do over a fresh variable
}

pub fn gsub() -> impl Strategy<Value = GSub> {
    prop_oneof![
        Just(GSub::LoopVar),
        (1i64..=3).prop_map(GSub::LoopVarOff),
        (1i64..=7).prop_map(GSub::Mixed),
        (1i64..=N).prop_map(GSub::Const),
    ]
}

pub fn gexpr() -> impl Strategy<Value = GExpr> {
    let leaf = prop_oneof![
        (-4.0..4.0f64).prop_map(GExpr::Const),
        (0usize..3).prop_map(GExpr::Scalar),
        ((0usize..3), gsub()).prop_map(|(a, s)| GExpr::Elem(a, s)),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| GExpr::Add(Box::new(a), Box::new(b))),
            (inner, -2.0..2.0f64).prop_map(|(a, c)| GExpr::Mul(Box::new(a), c)),
        ]
    })
}

pub fn gstmt(depth: u32) -> BoxedStrategy<GStmt> {
    let base = prop_oneof![
        ((0usize..3), gexpr()).prop_map(|(s, e)| GStmt::AssignScalar(s, e)),
        ((0usize..3), gsub(), gexpr()).prop_map(|(a, s, e)| GStmt::AssignElem(a, s, e)),
        ((0usize..3), gsub(), gexpr()).prop_map(|(a, s, e)| GStmt::Update(a, s, e)),
        ((0usize..3), gexpr()).prop_map(|(s, e)| GStmt::ScalarSum(s, e)),
    ];
    if depth == 0 {
        base.boxed()
    } else {
        prop_oneof![
            4 => base,
            1 => (gsub(), prop::collection::vec(gstmt(0), 1..3))
                .prop_map(|(s, body)| GStmt::If(s, body)),
            1 => prop::collection::vec(gstmt(0), 1..3)
                .prop_map(GStmt::Loop),
        ]
        .boxed()
    }
}

pub fn gprogram() -> impl Strategy<Value = Vec<Vec<GStmt>>> {
    // 1-3 top-level loops, each with 1-4 body statements.
    prop::collection::vec(prop::collection::vec(gstmt(1), 1..4), 1..3)
}

/// The program for one corpus seed: [`gprogram`] driven by a SplitMix64
/// stream seeded exactly with `seed`.  Pure — same seed, same program,
/// everywhere.
pub fn program_for_seed(seed: u64) -> Vec<Vec<GStmt>> {
    let mut rng = TestRng::from_seed(seed);
    gprogram().generate(&mut rng)
}

/// [`program_for_seed`] rendered to MiniF source.
pub fn source_for_seed(seed: u64) -> String {
    render_program(&program_for_seed(seed))
}

/// The canonical file-stem / report name of one corpus seed (`gen-<seed>`,
/// zero-padded so lexicographic order is seed order).
pub fn name_for_seed(seed: u64) -> String {
    format!("gen-{seed:08}")
}

fn render_sub(s: &GSub, var: &str) -> String {
    match s {
        GSub::LoopVar => var.to_string(),
        GSub::LoopVarOff(c) => format!("min({var} + {c}, {N})"),
        GSub::Mixed(c) => format!("mod({var} * {c}, {N}) + 1"),
        GSub::Const(c) => c.to_string(),
    }
}

fn render_expr(e: &GExpr, var: &str) -> String {
    match e {
        GExpr::Const(c) => format!("{c:.3}"),
        GExpr::Scalar(k) => format!("s{k}"),
        GExpr::Elem(a, s) => format!("a{a}[{}]", render_sub(s, var)),
        GExpr::Add(x, y) => format!("({} + {})", render_expr(x, var), render_expr(y, var)),
        GExpr::Mul(x, c) => format!("({} * {c:.3})", render_expr(x, var)),
    }
}

fn render_body(body: &[GStmt], var: &str, indent: usize, out: &mut String, label: &mut u32) {
    let pad = "  ".repeat(indent);
    for s in body {
        match s {
            GStmt::AssignScalar(k, e) => {
                out.push_str(&format!("{pad}s{k} = {}\n", render_expr(e, var)));
            }
            GStmt::AssignElem(a, sub, e) => {
                out.push_str(&format!(
                    "{pad}a{a}[{}] = {}\n",
                    render_sub(sub, var),
                    render_expr(e, var)
                ));
            }
            GStmt::Update(a, sub, e) => {
                let s = render_sub(sub, var);
                out.push_str(&format!(
                    "{pad}a{a}[{s}] = a{a}[{s}] + {}\n",
                    render_expr(e, var)
                ));
            }
            GStmt::ScalarSum(k, e) => {
                out.push_str(&format!("{pad}s{k} = s{k} + {}\n", render_expr(e, var)));
            }
            GStmt::If(sub, body) => {
                out.push_str(&format!(
                    "{pad}if abs(a0[{}]) >= 0.0 {{\n",
                    render_sub(sub, var)
                ));
                render_body(body, var, indent + 1, out, label);
                out.push_str(&format!("{pad}}}\n"));
            }
            GStmt::Loop(body) => {
                *label += 1;
                let inner = format!("j{label}");
                out.push_str(&format!(
                    "{pad}do {} {} = 1, {N} {{\n",
                    1000 + *label,
                    inner
                ));
                render_body(body, &inner, indent + 1, out, label);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

pub fn render_program(loops: &[Vec<GStmt>]) -> String {
    let mut out = String::new();
    out.push_str("program fuzz\n");
    out.push_str(&format!("const n = {N}\n"));
    out.push_str("proc main() {\n");
    out.push_str("  real a0[n], a1[n], a2[n]\n");
    out.push_str("  real s0, s1, s2\n");
    // Declare enough loop variables.
    let mut nloops = 0u32;
    fn count(body: &[GStmt], n: &mut u32) {
        for s in body {
            match s {
                GStmt::Loop(b) => {
                    *n += 1;
                    count(b, n);
                }
                GStmt::If(_, b) => count(b, n),
                _ => {}
            }
        }
    }
    for l in loops {
        nloops += 1;
        count(l, &mut nloops);
    }
    let vars: Vec<String> = (1..=nloops.max(1)).map(|k| format!("j{k}")).collect();
    out.push_str(&format!("  int i, {}\n", vars.join(", ")));
    // Initialize arrays deterministically.
    out.push_str("  do 1 i = 1, n {\n    a0[i] = sin(float(i) * 0.7)\n    a1[i] = cos(float(i) * 0.3)\n    a2[i] = float(i) * 0.1\n  }\n");
    let mut label = 0u32;
    for (k, l) in loops.iter().enumerate() {
        label += 1;
        let var = format!("j{label}");
        out.push_str(&format!("  do {} {} = 1, {N} {{\n", 100 + k, var));
        render_body(l, &var, 2, &mut out, &mut label);
        out.push_str("  }\n");
    }
    out.push_str("  print s0, s1, s2, a0[1], a1[5], a2[11]\n");
    out.push_str("}\n");
    out
}

/// Round for FP-reassociation tolerance.
pub fn canon(lines: &[String]) -> Vec<Vec<String>> {
    lines
        .iter()
        .map(|l| {
            l.split_whitespace()
                .map(|t| match t.parse::<f64>() {
                    Ok(0.0) => "0".to_string(),
                    Ok(v) => {
                        let mag = v.abs().log10().floor();
                        let scale = 10f64.powf(mag - 6.0);
                        format!("{:.4e}", (v / scale).round() * scale)
                    }
                    Err(_) => t.to_string(),
                })
                .collect()
        })
        .collect()
}

/// The shrunk counterexamples recorded in
/// `tests/prop_random_programs.proptest-regressions`, hand-translated into
/// the current `GStmt` shape.  Both harnesses replay these before generating
/// novel cases (the vendored proptest shim has no persistence of its own).
pub fn known_regressions() -> Vec<Vec<Vec<GStmt>>> {
    use GExpr::*;
    use GStmt::*;
    vec![
        // cc 1bcf75c9…: an If-guarded scalar sum over a2[i] followed by a
        // nested loop clobbering a2[2].
        vec![vec![
            If(
                GSub::LoopVar,
                vec![ScalarSum(
                    0,
                    Add(Box::new(Elem(2, GSub::LoopVar)), Box::new(Const(0.0))),
                )],
            ),
            Loop(vec![AssignElem(2, GSub::Const(2), Const(0.0))]),
        ]],
        // cc d92f2958…: a nested update/assign pair on a2, then a second
        // top-level loop mixing scalar flow with a Mixed-subscript read.
        vec![
            vec![Loop(vec![
                Update(2, GSub::Const(1), Const(0.0)),
                AssignElem(2, GSub::Const(7), Const(0.0)),
            ])],
            vec![
                If(
                    GSub::LoopVar,
                    vec![AssignScalar(
                        1,
                        Add(Box::new(Scalar(0)), Box::new(Const(0.0))),
                    )],
                ),
                AssignScalar(
                    0,
                    Mul(Box::new(Elem(2, GSub::Mixed(6))), 1.4011181564965163),
                ),
            ],
        ],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xdead_beef, u64::MAX] {
            assert_eq!(
                source_for_seed(seed),
                source_for_seed(seed),
                "seed {seed} must reproduce bit-identically"
            );
        }
    }

    #[test]
    fn distinct_seeds_vary() {
        let distinct: std::collections::HashSet<String> = (0..64).map(source_for_seed).collect();
        assert!(
            distinct.len() > 48,
            "seed range collapses to {} distinct programs",
            distinct.len()
        );
    }

    #[test]
    fn generated_sources_parse() {
        for seed in 0..32 {
            let src = source_for_seed(seed);
            suif_ir::parse_program(&src)
                .unwrap_or_else(|e| panic!("seed {seed} failed to parse: {e}\n{src}"));
        }
        for (i, case) in known_regressions().iter().enumerate() {
            let src = render_program(case);
            suif_ir::parse_program(&src)
                .unwrap_or_else(|e| panic!("regression {i} failed to parse: {e}\n{src}"));
        }
    }

    #[test]
    fn seed_names_sort_in_seed_order() {
        assert_eq!(name_for_seed(3), "gen-00000003");
        assert!(name_for_seed(9) < name_for_seed(10));
        assert!(name_for_seed(99) < name_for_seed(100));
    }
}
