//! Materialize a deterministic MiniF corpus by seed range.
//!
//! ```text
//! gen_corpus --out DIR --count N [--seed-base S] [--manifest FILE]
//! ```
//!
//! Writes `DIR/gen-<seed>.mf` for each seed in `[S, S+N)`.  Output is a pure
//! function of the seed range — no wall clock, no ambient randomness — so a
//! corpus re-materialized anywhere is bit-identical.  With `--manifest`, also
//! writes a plain-text manifest (one program path per line, `#` comments)
//! that `suif-explorer corpus` accepts in place of a directory.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: gen_corpus --out DIR --count N [--seed-base S] [--manifest FILE]");
    exit(2);
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut count: Option<u64> = None;
    let mut seed_base: u64 = 0;
    let mut manifest: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--count" => {
                count = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--seed-base" => {
                seed_base = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--manifest" => manifest = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    let (out, count) = match (out, count) {
        (Some(o), Some(c)) => (o, c),
        _ => usage(),
    };

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("gen_corpus: cannot create {}: {e}", out.display());
        exit(1);
    }

    let mut paths = Vec::with_capacity(count as usize);
    for seed in seed_base..seed_base + count {
        let path = out.join(format!("{}.mf", minif_gen::name_for_seed(seed)));
        if let Err(e) = std::fs::write(&path, minif_gen::source_for_seed(seed)) {
            eprintln!("gen_corpus: cannot write {}: {e}", path.display());
            exit(1);
        }
        paths.push(path);
    }

    if let Some(mpath) = manifest {
        let mut body = format!(
            "# MiniF corpus manifest: seeds [{seed_base}, {})\n",
            seed_base + count
        );
        for p in &paths {
            body.push_str(&format!("{}\n", p.display()));
        }
        if let Err(e) = std::fs::write(&mpath, body) {
            eprintln!("gen_corpus: cannot write {}: {e}", mpath.display());
            exit(1);
        }
    }

    let mut stdout = std::io::stdout();
    let _ = writeln!(
        stdout,
        "gen_corpus: wrote {count} programs (seeds {seed_base}..{}) to {}",
        seed_base + count,
        out.display()
    );
}
