//! Hand-written MiniF kernels pinning the race detector's reports: a known
//! write-write race, a read-write race across iterations, and a reduction
//! that is race-free only under the reduction transform.  Each test pins the
//! exact reported access pair (variable, race kind, source lines).

use suif_analysis::{ParallelizeConfig, Parallelizer, VarClass};
use suif_dynamic::race::Race;
use suif_ir::{parse_program, Program, StmtId};
use suif_parallel::plan::minimal_plan;
use suif_parallel::{capture_sequential, certify_loop, CertifyOptions, ParallelPlans};

fn loop_named(src: &str, name: &str) -> (Program, StmtId) {
    let p = parse_program(src).unwrap();
    let stmt = {
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        pa.ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("no loop {name}"))
            .stmt
    };
    (p, stmt)
}

fn first_race(program: &Program, target: StmtId, seed: u64) -> Race {
    let plan = minimal_plan(program, target).unwrap();
    let cert = certify_loop(
        program,
        target,
        &plan,
        &CertifyOptions {
            seed,
            ..Default::default()
        },
    );
    assert!(!cert.race_free(), "expected a race");
    cert.schedules[0]
        .outcome
        .races
        .first()
        .expect("first schedule reports the race")
        .clone()
}

#[test]
fn write_write_race_pins_access_pair() {
    // Every iteration writes a[5]: iterations conflict write-vs-write.
    let src = "program t
proc main() {
  real a[8]
  int i
  do 1 i = 1, 16 {
    a[5] = i
  }
  print a[5]
}
";
    let (p, target) = loop_named(src, "main/1");
    let race = first_race(&p, target, 11);
    assert_eq!(race.kind(), "write-write");
    assert_eq!(p.var(race.first.var).name, "a");
    assert_eq!(p.var(race.second.var).name, "a");
    // Both sides are the `a[5] = i` assignment on line 6.
    assert_eq!((race.first.line, race.second.line), (6, 6));
    assert_ne!(race.first.thread, race.second.thread);
}

#[test]
fn read_write_race_across_iterations_pins_access_pair() {
    // a[i] = a[i - 1] + 1: iteration i reads the cell iteration i-1 writes.
    let src = "program t
proc main() {
  real a[32]
  int i
  a[1] = 1
  do 1 i = 2, 32 {
    a[i] = a[i - 1] + 1
  }
  print a[32]
}
";
    let (p, target) = loop_named(src, "main/1");
    // Statically serial: the carried flow dependence is reported on `a`.
    let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
    assert!(!pa.verdicts[&target].is_parallel());
    let race = first_race(&p, target, 12);
    assert_eq!(race.kind(), "read-write");
    assert_eq!(p.var(race.first.var).name, "a");
    assert_eq!(p.var(race.second.var).name, "a");
    // Both accesses come from the single body statement on line 7.
    assert_eq!((race.first.line, race.second.line), (7, 7));
    assert_ne!(race.first.thread, race.second.thread);
}

#[test]
fn reduction_race_free_only_under_reduction_transform() {
    let src = "program t
proc main() {
  real a[64], s
  int i
  do 0 i = 1, 64 {
    a[i] = i
  }
  s = 0
  do 1 i = 1, 64 {
    s = s + a[i]
  }
  print s
}
";
    let (p, target) = loop_named(src, "main/1");
    let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
    // Statically parallel *because of* the reduction transform on s.
    assert!(pa.verdicts[&target].is_parallel());
    assert!(pa.verdicts[&target]
        .classes()
        .values()
        .any(|c| matches!(c, VarClass::Reduction(_))));

    // Under the production plan: race-free and sequential-identical.
    let plans = ParallelPlans::from_analysis(&pa);
    let plan = plans.loops[&target].clone();
    let seq = capture_sequential(&p, &[]);
    let cert = certify_loop(&p, target, &plan, &CertifyOptions::default());
    assert!(
        cert.race_free(),
        "transformed reduction must certify race-free: {:?}",
        cert.schedules[0].outcome.races
    );
    for s in &cert.schedules {
        // 1 + 2 + … + 64 reassociates exactly in binary floating point.
        assert_eq!(s.capture.output, seq.output, "seed {}", s.seed);
    }

    // Under the minimal (untransformed) plan: the update races on `s`, and
    // the first conflicting pair is the read and write of `s = s + a[i]`.
    let race = first_race(&p, target, 13);
    assert_eq!(race.kind(), "read-write");
    assert_eq!(p.var(race.first.var).name, "s");
    assert_eq!(p.var(race.second.var).name, "s");
    assert_eq!((race.first.line, race.second.line), (10, 10));
}
