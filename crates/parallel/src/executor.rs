//! The parallel loop executor: a [`LoopHandler`] that forks worker machines
//! over a shared memory view.

use crate::plan::{ParallelPlans, PlanEntry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use suif_analysis::RedOp;
use suif_dynamic::machine::{Frame, LoopHandler, Machine, NoHooks, RuntimeError};
use suif_dynamic::Value;
use suif_ir::{Program, Stmt, StmtId, VarId, VarKind};

/// Reduction finalization strategy (§6.3.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Finalization {
    /// Post-join serialized merging by the spawning thread (the naive
    /// implementation whose elapsed time grows with the thread count).
    Serialized,
    /// Workers merge their own copies into the shared array under
    /// per-section locks, with staggered starting sections ("the i-th
    /// processor finalizes the sections in the order i, i+1, …, n, 1, …").
    StaggeredLocks {
        /// Number of lock-protected sections per reduction object.
        sections: usize,
    },
}

/// Iteration-to-thread assignment policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Schedule {
    /// Contiguous blocks ("the iterations … are evenly divided between the
    /// processors", §4.5) — the paper's policy.
    #[default]
    Block,
    /// Cyclic (round-robin) — an extension that balances triangular loops
    /// like mdg's pair loop at the cost of locality.
    Cyclic,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker thread count (the "processor" count of the figures).
    pub threads: usize,
    /// Loops with fewer iterations run sequentially (run-time granularity
    /// suppression, §4.5).
    pub min_parallel_iters: i64,
    /// Loops whose estimated work (iterations × static body weight) falls
    /// below this run sequentially — "the run-time system estimates the
    /// amount of computation … and runs the loop sequentially if it is
    /// considered too fine-grained" (§4.5).
    pub min_parallel_cost: i64,
    /// Reduction finalization strategy.
    pub finalization: Finalization,
    /// Iteration scheduling policy.
    pub schedule: Schedule,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            threads: 2,
            min_parallel_iters: 2,
            min_parallel_cost: 2048,
            finalization: Finalization::StaggeredLocks { sections: 8 },
            schedule: Schedule::Block,
        }
    }
}

/// Execution statistics.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Parallel invocations per loop.
    pub parallel_invocations: HashMap<StmtId, u64>,
    /// Serial-fallback invocations per loop (too few iterations).
    pub serial_fallbacks: HashMap<StmtId, u64>,
    /// Loops skipped because privatization sizes were not computable.
    pub unplannable: HashMap<StmtId, u64>,
    /// Simulated-multiprocessor cost contributed by parallel regions: per
    /// invocation, the **maximum** worker op count (the critical path) plus
    /// the spawn/finalization overhead model.  Added to the main machine's
    /// op counter this gives a deterministic parallel "time" that is
    /// architecture-independent (see `measure::Measurement::ops`).
    pub sim_parallel_ops: u64,
    /// Total ops executed inside workers (for utilization reporting).
    pub worker_ops: u64,
}

/// Simulated overhead model (virtual ops): the cost of spawning and joining
/// one parallel region.  Chosen so that sub-thousand-op loops lose from
/// parallelization, matching the granularity story of §2.6/§4.5.
pub const SPAWN_OVERHEAD_OPS: u64 = 1500;
/// Additional per-thread spawn cost.
pub const PER_THREAD_OVERHEAD_OPS: u64 = 400;

/// The loop handler driving parallel execution.
pub struct ParallelExecutor {
    /// The plans.
    pub plans: ParallelPlans,
    /// Configuration.
    pub config: RuntimeConfig,
    /// Statistics (readable after the run).
    pub stats: RunStats,
}

/// One privatized storage group in the per-thread tail.  Shared with the
/// certification glue in [`crate::certify`].
pub(crate) struct Segment {
    /// Offset in the private tail.
    pub(crate) tail_base: usize,
    /// Length in cells.
    pub(crate) len: usize,
    /// Shared base it mirrors.
    pub(crate) shared_base: usize,
    /// Role of the segment.
    pub(crate) role: SegRole,
}

pub(crate) enum SegRole {
    Private,
    FinalizeLast,
    Reduction {
        op: RedOp,
        /// 0-based start/end (inclusive) of the reduction region within the
        /// segment.
        lo: usize,
        hi: usize,
    },
}

impl ParallelExecutor {
    /// Create an executor.
    pub fn new(plans: ParallelPlans, config: RuntimeConfig) -> ParallelExecutor {
        ParallelExecutor {
            plans,
            config,
            stats: RunStats::default(),
        }
    }
}

/// Compute the privatization layout for a loop plan in the current frame.
/// Returns the segments, the per-variable overrides (relative to the
/// tail), and the tail length.  Also used by [`crate::certify`] so the
/// certified loop runs under exactly the production privatization.
#[allow(clippy::type_complexity)]
pub(crate) fn build_layout(
    m: &Machine<'_>,
    plan: &PlanEntry,
    line: u32,
) -> Result<(Vec<Segment>, HashMap<VarId, usize>, usize), RuntimeError> {
    let program = m.program;
    let mut segments: Vec<Segment> = Vec::new();
    let mut overrides: HashMap<VarId, usize> = HashMap::new();
    let mut next = 0usize;
    // Storage groups already privatized (by shared base).
    let mut group_of: HashMap<usize, usize> = HashMap::new();

    let add_group = |m: &Machine<'_>,
                     v: VarId,
                     role_for_new: SegRole,
                     segments: &mut Vec<Segment>,
                     overrides: &mut HashMap<VarId, usize>,
                     next: &mut usize,
                     group_of: &mut HashMap<usize, usize>|
     -> Result<(), RuntimeError> {
        let info = program.var(v);
        // Group commons by block: privatize the whole block once.
        let (shared_base, len, member_off) = match info.kind {
            VarKind::Common { block, offset } => {
                let blk_size = program.commons[block.0 as usize].size.max(1) as usize;
                let member_base = if info.is_array() {
                    m.array_base(v, line)?
                } else {
                    m.array_base(v, line).unwrap_or(0)
                };
                let blk_base = member_base - offset as usize;
                (blk_base, blk_size, offset as usize)
            }
            _ => {
                if info.is_array() {
                    let base = m.array_base(v, line)?;
                    let n = m.array_elem_count(v, line)?.ok_or_else(|| RuntimeError {
                        message: format!("cannot size private copy of `{}`", info.name),
                        line,
                    })?;
                    (base, n.max(0) as usize, 0)
                } else {
                    let base = scalar_base(m, v, line)?;
                    (base, 1, 0)
                }
            }
        };
        let seg_idx = match group_of.get(&shared_base) {
            Some(&i) => i,
            None => {
                let i = segments.len();
                segments.push(Segment {
                    tail_base: *next,
                    len,
                    shared_base,
                    role: role_for_new,
                });
                group_of.insert(shared_base, i);
                *next += len;
                i
            }
        };
        overrides.insert(v, segments[seg_idx].tail_base + member_off);
        Ok(())
    };

    for &v in &plan.private_vars {
        add_group(
            m,
            v,
            SegRole::Private,
            &mut segments,
            &mut overrides,
            &mut next,
            &mut group_of,
        )?;
    }
    for &v in &plan.finalize_last {
        add_group(
            m,
            v,
            SegRole::FinalizeLast,
            &mut segments,
            &mut overrides,
            &mut next,
            &mut group_of,
        )?;
    }
    for red in &plan.reductions {
        for &v in &red.vars {
            // Determine the 0-based region inside the segment.
            let info = program.var(v);
            let member_off = match info.kind {
                VarKind::Common { offset, .. } => offset as usize,
                _ => 0,
            };
            let total = if info.is_array() {
                m.array_elem_count(v, line)?.unwrap_or(1).max(1) as usize
            } else {
                1
            };
            let (lo, hi) = match red.range {
                // range is 1-based within the storage *object*.
                Some((l, h)) => {
                    let l = (l.max(1) - 1) as usize;
                    let h = (h.max(1) - 1) as usize;
                    (l, h)
                }
                None => (member_off, member_off + total - 1),
            };
            add_group(
                m,
                v,
                SegRole::Reduction { op: red.op, lo, hi },
                &mut segments,
                &mut overrides,
                &mut next,
                &mut group_of,
            )?;
        }
    }
    Ok((segments, overrides, next))
}

/// Build the initial contents of each worker's private tail for a segment
/// layout: privatized and finalize-last groups copy in the current shared
/// values; reduction groups start at the operator identity inside the
/// reduction region and copy shared values outside it.  Also used by
/// [`crate::certify`].
pub(crate) fn build_template(m: &Machine<'_>, segments: &[Segment], tail_len: usize) -> Vec<Value> {
    let mut template: Vec<Value> = vec![Value::Real(0.0); tail_len];
    for seg in segments {
        match &seg.role {
            SegRole::Private => {
                // Copy-in: privatization guarantees no *cross-iteration*
                // value flow, but cells the loop never writes (e.g. the
                // upwards-exposed `dkrc(1)` of §4.2.3) keep their
                // pre-loop values and must be visible in the copy.
                for k in 0..seg.len {
                    if let Some(v) = m.peek(seg.shared_base + k) {
                        template[seg.tail_base + k] = v;
                    }
                }
            }
            SegRole::FinalizeLast => {
                for k in 0..seg.len {
                    if let Some(v) = m.peek(seg.shared_base + k) {
                        template[seg.tail_base + k] = v;
                    }
                }
            }
            SegRole::Reduction { op, lo, hi } => {
                for k in 0..seg.len {
                    template[seg.tail_base + k] = if k >= *lo && k <= *hi {
                        Value::Real(op.identity())
                    } else {
                        m.peek(seg.shared_base + k).unwrap_or(Value::Real(0.0))
                    };
                }
            }
        }
    }
    template
}

fn scalar_base(m: &Machine<'_>, v: VarId, line: u32) -> Result<usize, RuntimeError> {
    // Scalars always have static storage; reuse array_base which consults
    // the same layout (scalars are not bound, so layout base exists).
    match m.layout().base_of(v) {
        Some(b) => Ok(b),
        None => Err(RuntimeError {
            message: format!("scalar `{}` has no storage", m.program.var(v).name),
            line,
        }),
    }
}

impl LoopHandler for ParallelExecutor {
    fn on_loop(&mut self, m: &mut Machine<'_>, do_stmt: &Stmt) -> Option<Result<(), RuntimeError>> {
        let Stmt::Do {
            id,
            line,
            var,
            body,
            ..
        } = do_stmt
        else {
            return None;
        };
        let plan = self.plans.loops.get(id)?.clone();
        let (lo, hi, step) = match m.eval_do_bounds(do_stmt) {
            Ok(b) => b,
            Err(e) => return Some(Err(e)),
        };
        let n = suif_dynamic::certify::trip_count(lo, hi, step);
        let threads = self.config.threads;
        let est_cost = n.saturating_mul(plan.body_weight as i64);
        if n < self.config.min_parallel_iters
            || n < threads as i64
            || est_cost < self.config.min_parallel_cost
            || threads <= 1
        {
            *self.stats.serial_fallbacks.entry(*id).or_insert(0) += 1;
            return None;
        }
        let (segments, overrides, tail_len) = match build_layout(m, &plan, *line) {
            Ok(x) => x,
            Err(_) => {
                *self.stats.unplannable.entry(*id).or_insert(0) += 1;
                return None;
            }
        };
        *self.stats.parallel_invocations.entry(*id).or_insert(0) += 1;

        let (shared_ptr, shared_len) = m.mem_parts();
        let shared_addr = shared_ptr as usize;
        let program: &Program = m.program;
        let layout = Arc::clone(m.layout());
        let frame: Frame = m.current_frame().clone();

        // Template for each thread's private tail.
        let template = build_template(m, &segments, tail_len);

        // Section locks for staggered finalization.
        let finalization = self.config.finalization;
        let nsections = match finalization {
            Finalization::StaggeredLocks { sections } => sections.max(1),
            Finalization::Serialized => 1,
        };
        let locks: Vec<Mutex<()>> = (0..nsections).map(|_| Mutex::new(())).collect();

        let adjust = |v: &mut HashMap<VarId, usize>| {
            for b in v.values_mut() {
                *b += shared_len;
            }
        };
        let mut base_overrides = overrides;
        adjust(&mut base_overrides);

        let result: Result<Vec<(Vec<Value>, u64)>, RuntimeError> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let schedule = self.config.schedule;
            for t in 0..threads {
                let k0 = (n * t as i64) / threads as i64;
                let k1 = (n * (t as i64 + 1)) / threads as i64;
                let frame = frame.clone();
                let overrides = base_overrides.clone();
                let template = template.clone();
                let layout = Arc::clone(&layout);
                let segments = &segments;
                let locks = &locks;
                handles.push(
                    scope.spawn(move || -> Result<(Vec<Value>, u64), RuntimeError> {
                        let mut hooks = NoHooks;
                        let shared = (shared_addr as *mut Value, shared_len);
                        let mut worker = Machine::thread_view(
                            program, layout, shared, frame, overrides, template, &mut hooks,
                        );
                        let run_iter =
                            |worker: &mut Machine<'_>, k: i64| -> Result<(), RuntimeError> {
                                let i = lo + k * step;
                                worker.set_scalar_raw(*var, Value::Int(i), *line)?;
                                worker.exec_body(body)
                            };
                        match schedule {
                            Schedule::Block => {
                                for k in k0..k1 {
                                    run_iter(&mut worker, k)?;
                                }
                            }
                            Schedule::Cyclic => {
                                let mut k = t as i64;
                                while k < n {
                                    run_iter(&mut worker, k)?;
                                    k += threads as i64;
                                }
                            }
                        }
                        let ops = worker.ops();
                        let private = worker.into_private();
                        // Staggered in-worker finalization (§6.3.4).
                        if let Finalization::StaggeredLocks { .. } = finalization {
                            for seg in segments.iter() {
                                if let SegRole::Reduction {
                                    op,
                                    lo: rlo,
                                    hi: rhi,
                                } = &seg.role
                                {
                                    let span = rhi - rlo + 1;
                                    let per = span.div_ceil(nsections);
                                    for s in 0..nsections {
                                        let sec = (t + s) % nsections;
                                        let a = rlo + sec * per;
                                        let b = (a + per).min(rhi + 1);
                                        if a >= b {
                                            continue;
                                        }
                                        let _guard = locks[sec].lock();
                                        for k in a..b {
                                            // SAFETY: disjoint-section writes
                                            // serialized by the section lock;
                                            // the View contract covers aliasing.
                                            unsafe {
                                                let p = (shared_addr as *mut Value)
                                                    .add(seg.shared_base + k);
                                                let cur = (*p).as_real();
                                                let mine = private[seg.tail_base + k].as_real();
                                                *p = Value::Real(op.apply(cur, mine));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        Ok((private, ops))
                    }),
                );
            }
            let mut tails = Vec::new();
            for h in handles {
                match h.join() {
                    Ok(Ok(t)) => tails.push(t),
                    Ok(Err(e)) => return Err(e),
                    Err(_) => {
                        return Err(RuntimeError {
                            message: "worker thread panicked".into(),
                            line: *line,
                        })
                    }
                }
            }
            Ok(tails)
        });

        let pairs = match result {
            Ok(t) => t,
            Err(e) => return Some(Err(e)),
        };
        let max_worker_ops = pairs.iter().map(|(_, o)| *o).max().unwrap_or(0);
        let total_worker_ops: u64 = pairs.iter().map(|(_, o)| *o).sum();
        let tails: Vec<Vec<Value>> = pairs.into_iter().map(|(t, _)| t).collect();
        // Simulated critical path: max worker + spawn model.
        let mut sim =
            max_worker_ops + SPAWN_OVERHEAD_OPS + PER_THREAD_OVERHEAD_OPS * threads as u64;
        // Finalization model (§6.3.4): serialized merging costs
        // threads × region size on the critical path; staggered locking
        // parallelizes it (≈ one region sweep).
        for seg in &segments {
            if let SegRole::Reduction { lo, hi, .. } = &seg.role {
                let span = (hi - lo + 1) as u64;
                sim += match self.config.finalization {
                    Finalization::Serialized => 2 * span * threads as u64,
                    Finalization::StaggeredLocks { .. } => 2 * span,
                };
            }
        }
        self.stats.sim_parallel_ops += sim;
        self.stats.worker_ops += total_worker_ops;

        // Post-join finalization.
        for seg in &segments {
            match &seg.role {
                SegRole::Private => {}
                SegRole::FinalizeLast => {
                    let last_thread = match self.config.schedule {
                        // Block: the final chunk belongs to the last thread.
                        Schedule::Block => threads - 1,
                        // Cyclic: iteration n-1 ran on thread (n-1) mod T.
                        Schedule::Cyclic => ((n - 1) as usize) % threads,
                    };
                    let last = &tails[last_thread];
                    for k in 0..seg.len {
                        m.poke(seg.shared_base + k, last[seg.tail_base + k]);
                    }
                }
                SegRole::Reduction {
                    op,
                    lo: rlo,
                    hi: rhi,
                } => {
                    if let Finalization::Serialized = self.config.finalization {
                        for tail in &tails {
                            for k in *rlo..=*rhi {
                                let cur = m
                                    .peek(seg.shared_base + k)
                                    .unwrap_or(Value::Real(0.0))
                                    .as_real();
                                let mine = tail[seg.tail_base + k].as_real();
                                m.poke(seg.shared_base + k, Value::Real(op.apply(cur, mine)));
                            }
                        }
                    }
                }
            }
        }

        // Fortran post-loop induction value.
        let final_i = lo + n * step;
        if let Err(e) = m.set_scalar_raw(*var, Value::Int(final_i), *line) {
            return Some(Err(e));
        }
        Some(Ok(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ParallelPlans;
    use suif_analysis::{ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    fn run_both(
        src: &str,
        threads: usize,
        finalization: Finalization,
    ) -> (Vec<String>, Vec<String>, RunStats) {
        let p = parse_program(src).unwrap();
        // Sequential reference.
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        m.run().unwrap();
        let seq = m.output.clone();
        drop(m);
        // Parallel.
        let plans = {
            let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
            ParallelPlans::from_analysis(&pa)
        };
        let mut hooks2 = NoHooks;
        let mut m2 = Machine::new(&p, &mut hooks2).unwrap();
        m2.set_handler(Box::new(ParallelExecutor::new(
            plans,
            RuntimeConfig {
                threads,
                min_parallel_iters: 2,
                min_parallel_cost: 0,
                finalization,
                schedule: Default::default(),
            },
        )));
        m2.run().unwrap();
        let par = m2.output.clone();
        let h = m2.take_handler().unwrap();
        drop(m2);
        // Extract stats via Any-free downcast: rebuild is awkward; instead
        // re-run borrowing pattern — simpler: leak through Box into raw.
        let stats = {
            let raw = Box::into_raw(h) as *mut ParallelExecutor;
            // SAFETY: the only handler type we install is ParallelExecutor.
            let ex = unsafe { Box::from_raw(raw) };
            ex.stats.clone()
        };
        (seq, par, stats)
    }

    #[test]
    fn simple_parallel_loop_matches_sequential() {
        let src = r#"program t
proc main() {
  real a[64]
  real s
  int i
  do 1 i = 1, 64 {
    a[i] = i * 2
  }
  s = 0
  do 2 i = 1, 64 {
    s = s + a[i]
  }
  print s
}
"#;
        let (seq, par, stats) = run_both(src, 2, Finalization::Serialized);
        assert_eq!(seq, par);
        assert!(stats.parallel_invocations.values().sum::<u64>() >= 2);
    }

    #[test]
    fn reduction_strategies_agree() {
        let src = r#"program t
proc main() {
  real h[16]
  int idx[200]
  int i
  do 0 i = 1, 200 {
    idx[i] = mod(i * 7, 16) + 1
  }
  do 1 i = 1, 200 {
    h[idx[i]] = h[idx[i]] + 1
  }
  do 9 i = 1, 16 {
    print h[i]
  }
}
"#;
        let (seq, par_ser, _) = run_both(src, 4, Finalization::Serialized);
        assert_eq!(seq, par_ser);
        let (_, par_stag, _) = run_both(src, 4, Finalization::StaggeredLocks { sections: 4 });
        assert_eq!(seq, par_stag);
    }

    #[test]
    fn privatized_temps_through_calls() {
        let src = r#"program t
proc work(real q[*], int base) {
  real tmp[4]
  int j
  do j = 1, 4 {
    tmp[j] = base * 10 + j
  }
  do j = 1, 4 {
    q[j] = tmp[5 - j]
  }
}
proc main() {
  real a[80]
  int i
  do 1 i = 1, 20 {
    call work(a[(i - 1) * 4 + 1], i)
  }
  print a[1], a[4], a[77], a[80]
}
"#;
        let (seq, par, stats) = run_both(src, 2, Finalization::Serialized);
        assert_eq!(seq, par);
        assert_eq!(stats.parallel_invocations.values().sum::<u64>(), 1);
    }

    #[test]
    fn serial_fallback_for_tiny_loops() {
        let src = r#"program t
proc main() {
  real a[3]
  int i
  do 1 i = 1, 3 {
    a[i] = i
  }
  print a[3]
}
"#;
        let p = parse_program(src).unwrap();
        let plans = {
            let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
            ParallelPlans::from_analysis(&pa)
        };
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        m.set_handler(Box::new(ParallelExecutor::new(
            plans,
            RuntimeConfig {
                threads: 2,
                min_parallel_iters: 8,
                min_parallel_cost: 0,
                finalization: Finalization::Serialized,
                schedule: Default::default(),
            },
        )));
        m.run().unwrap();
        assert_eq!(m.output, vec!["3"]);
    }

    #[test]
    fn min_reduction_parallel() {
        let src = r#"program t
proc main() {
  real a[100], tmin
  int i
  do 0 i = 1, 100 {
    a[i] = abs(50.5 - i)
  }
  tmin = 1000000.0
  do 1 i = 1, 100 {
    if a[i] < tmin {
      tmin = a[i]
    }
  }
  print tmin
}
"#;
        let (seq, par, _) = run_both(src, 4, Finalization::Serialized);
        assert_eq!(seq, par);
        assert_eq!(seq, vec!["0.5"]);
    }

    #[test]
    fn privatizable_with_last_iteration_finalization() {
        // tmp written identically every iteration and read AFTER the loop:
        // finalize-last semantics must leave the last iteration's values.
        let src = r#"program t
proc main() {
  real tmp[4], out[32]
  int i, j
  do 1 i = 1, 32 {
    do 2 j = 1, 4 {
      tmp[j] = i * 100 + j
    }
    out[i] = tmp[1] + tmp[4]
  }
  print out[32], tmp[1], tmp[4]
}
"#;
        let (seq, par, _) = run_both(src, 2, Finalization::Serialized);
        assert_eq!(seq, par);
    }

    fn run_with(
        src: &str,
        threads: usize,
        schedule: Schedule,
        finalization: Finalization,
    ) -> (Vec<String>, Vec<String>, RunStats) {
        let p = parse_program(src).unwrap();
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        m.run().unwrap();
        let seq = m.output.clone();
        drop(m);
        let plans = {
            let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
            ParallelPlans::from_analysis(&pa)
        };
        let mut hooks2 = NoHooks;
        let mut m2 = Machine::new(&p, &mut hooks2).unwrap();
        m2.set_handler(Box::new(ParallelExecutor::new(
            plans,
            RuntimeConfig {
                threads,
                min_parallel_iters: 2,
                min_parallel_cost: 0,
                finalization,
                schedule,
            },
        )));
        m2.run().unwrap();
        let par = m2.output.clone();
        let h = m2.take_handler().unwrap();
        drop(m2);
        let stats = {
            let raw = Box::into_raw(h) as *mut ParallelExecutor;
            // SAFETY: the only handler type we install is ParallelExecutor.
            let ex = unsafe { Box::from_raw(raw) };
            ex.stats.clone()
        };
        (seq, par, stats)
    }

    #[test]
    fn finalize_last_with_more_threads_than_iterations() {
        // 3 iterations across 4 workers: some workers run nothing, and the
        // balanced block chunking must still hand the FINAL iteration to the
        // thread whose private copy is written back.
        let src = r#"program t
proc main() {
  real tmp[4], out[8]
  int i, j
  do 1 i = 1, 3 {
    do 2 j = 1, 4 {
      tmp[j] = i * 100 + j
    }
    out[i] = tmp[1] + tmp[4]
  }
  print out[1], out[2], out[3], tmp[1], tmp[4]
}
"#;
        for schedule in [Schedule::Block, Schedule::Cyclic] {
            let (seq, par, _) = run_with(src, 4, schedule, Finalization::Serialized);
            assert_eq!(seq, par, "{schedule:?}");
        }
    }

    #[test]
    fn cyclic_schedule_finalizes_last_iteration_owner() {
        // With 3 threads and 8 iterations, cyclic places the last iteration
        // (k = 7) on thread 7 mod 3 = 1 — NOT the last thread.  Finalization
        // must pick the owner, not just thread T-1.
        let src = r#"program t
proc main() {
  real tmp[2], out[8]
  int i, j
  do 1 i = 1, 8 {
    do 2 j = 1, 2 {
      tmp[j] = i * 10 + j
    }
    out[i] = tmp[1] * tmp[2]
  }
  print out[8], tmp[1], tmp[2]
}
"#;
        let (seq, par, _) = run_with(src, 3, Schedule::Cyclic, Finalization::Serialized);
        assert_eq!(seq, par);
        // The finalized values are the last iteration's: 81 and 82.
        assert_eq!(seq, vec!["6642 81 82"]);
    }

    #[test]
    fn max_reduction_with_negative_values() {
        // All data negative: a max-reduction identity of the runtime must
        // not leak into the result (e.g. initializing private copies to 0.0
        // would wrongly yield 0).
        let src = r#"program t
proc main() {
  real a[64], tmax
  int i
  do 0 i = 1, 64 {
    a[i] = 0.0 - float(i)
  }
  tmax = 0.0 - 1000000.0
  do 1 i = 1, 64 {
    if a[i] > tmax {
      tmax = a[i]
    }
  }
  print tmax
}
"#;
        let (seq, par, _) = run_both(src, 4, Finalization::Serialized);
        assert_eq!(seq, par);
        assert_eq!(seq, vec!["-1"]);
    }

    #[test]
    fn product_reduction_parallel() {
        let src = r#"program t
proc main() {
  real prod
  int i
  prod = 1.0
  do 1 i = 1, 16 {
    prod = prod * 1.5
  }
  print prod
}
"#;
        let (seq, par, _) = run_both(src, 4, Finalization::Serialized);
        // 1.5^16 reassociates exactly in binary floating point.
        assert_eq!(seq, par);
    }

    #[test]
    fn stats_account_parallel_and_fallback_invocations() {
        let src = r#"program t
proc main() {
  real a[64]
  int i, r
  do 9 r = 1, 3 {
    do 1 i = 1, 64 {
      a[i] = i + r
    }
  }
  print a[64]
}
"#;
        let p = parse_program(src).unwrap();
        let plans = {
            let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
            ParallelPlans::from_analysis(&pa)
        };
        let mut hooks = NoHooks;
        let mut m = Machine::new(&p, &mut hooks).unwrap();
        m.set_handler(Box::new(ParallelExecutor::new(
            plans.clone(),
            RuntimeConfig {
                threads: 2,
                min_parallel_iters: 2,
                min_parallel_cost: 0,
                finalization: Finalization::Serialized,
                schedule: Schedule::Block,
            },
        )));
        m.run().unwrap();
        let h = m.take_handler().unwrap();
        drop(m);
        let raw = Box::into_raw(h) as *mut ParallelExecutor;
        // SAFETY: the installed handler is a ParallelExecutor.
        let ex = unsafe { Box::from_raw(raw) };
        // The inner loop runs parallel on each of the 3 outer iterations
        // (the outer loop is itself parallel; whichever runs parallel, the
        // invocation totals must be positive and simulated ops accounted).
        let total: u64 = ex.stats.parallel_invocations.values().sum();
        assert!(total >= 1, "no parallel invocation recorded");
        assert!(ex.stats.sim_parallel_ops > 0);
    }
}
