//! Race certification of planned parallel loops.
//!
//! This module glues the static side (analysis verdicts lowered into
//! [`PlanEntry`]s) to the certifying executor in `suif-dynamic`: for one
//! target loop it runs the whole program under a
//! [`CertifyHandler`](suif_dynamic::CertifyHandler) once per adversarial
//! schedule, collecting per-schedule races, captured output and final shared
//! memory.  A sequential reference capture of the same program lets callers
//! check the differential invariant: a certified DOALL loop must be
//! race-free with sequential-identical observable behavior under every
//! schedule.

use crate::executor::{self, SegRole};
use crate::plan::PlanEntry;
use std::time::Instant;
use suif_analysis::RedOp;
use suif_dynamic::certify::{CertOp, CertOutcome, CertRole, CertSegment, CertSpec, CertifyHandler};
use suif_dynamic::machine::{Machine, NoHooks, RuntimeError};
use suif_dynamic::Value;
use suif_ir::{Program, StmtId};

/// Options for a certification run.
#[derive(Clone, Debug)]
pub struct CertifyOptions {
    /// Worker thread count (clamped to the iteration count per invocation).
    pub threads: usize,
    /// Number of adversarial schedules to run.
    pub schedules: u32,
    /// Base seed; schedule `s` runs with seed `seed + s`, which alternates
    /// the scheduling policy through the seed's low bit.
    pub seed: u64,
    /// Program `read` input, replayed identically on every run.
    pub input: Vec<f64>,
}

impl Default for CertifyOptions {
    fn default() -> CertifyOptions {
        CertifyOptions {
            threads: 3,
            schedules: 4,
            seed: 0,
            input: Vec::new(),
        }
    }
}

/// Observable result of one whole-program run: captured `print` output, the
/// final shared memory image, and the error that aborted the run, if any.
#[derive(Clone, Debug)]
pub struct ExecutionCapture {
    /// Captured output lines.
    pub output: Vec<String>,
    /// Final contents of shared memory.
    pub memory: Vec<Value>,
    /// Error that aborted the run, if any.
    pub error: Option<RuntimeError>,
}

/// One adversarial schedule's result for a certified loop.
#[derive(Clone, Debug)]
pub struct ScheduleReport {
    /// The seed this schedule ran under (replay with the same seed).
    pub seed: u64,
    /// Accumulated executor outcome (races, preemption counters).
    pub outcome: CertOutcome,
    /// Whole-program observable result under this schedule.
    pub capture: ExecutionCapture,
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
}

/// Certification result for one loop across all schedules.
#[derive(Clone, Debug)]
pub struct LoopCertification {
    /// The certified loop.
    pub stmt: StmtId,
    /// Per-schedule reports, in seed order.
    pub schedules: Vec<ScheduleReport>,
}

impl LoopCertification {
    /// True when no schedule detected a race.
    pub fn race_free(&self) -> bool {
        self.schedules.iter().all(|s| s.outcome.races.is_empty())
    }

    /// Total races across schedules.
    pub fn race_count(&self) -> usize {
        self.schedules.iter().map(|s| s.outcome.races.len()).sum()
    }

    /// Total schedules run.
    pub fn schedules_run(&self) -> u32 {
        self.schedules.len() as u32
    }
}

fn cert_role(role: &SegRole) -> CertRole {
    match role {
        SegRole::Private => CertRole::Private,
        SegRole::FinalizeLast => CertRole::FinalizeLast,
        SegRole::Reduction { op, lo, hi } => CertRole::Reduction {
            op: match op {
                RedOp::Add => CertOp::Add,
                RedOp::Mul => CertOp::Mul,
                RedOp::Min => CertOp::Min,
                RedOp::Max => CertOp::Max,
            },
            lo: *lo,
            hi: *hi,
        },
    }
}

/// Build the [`CertSpec`]-producing closure for a plan: per invocation it
/// computes the privatization layout and tail template with the same code
/// the production executor uses.
fn spec_fn(plan: PlanEntry) -> suif_dynamic::SpecFn {
    Box::new(move |m: &mut Machine<'_>, do_stmt| {
        let line = do_stmt.line();
        let (segments, overrides, tail_len) = executor::build_layout(m, &plan, line).ok()?;
        let template = executor::build_template(m, &segments, tail_len);
        Some(CertSpec {
            segments: segments
                .iter()
                .map(|s| CertSegment {
                    tail_base: s.tail_base,
                    len: s.len,
                    shared_base: s.shared_base,
                    role: cert_role(&s.role),
                })
                .collect(),
            overrides,
            template,
        })
    })
}

/// Run the program sequentially (no handler) and capture its observable
/// result — the reference side of the differential check.
pub fn capture_sequential(program: &Program, input: &[f64]) -> ExecutionCapture {
    let mut hooks = NoHooks;
    let mut m = match Machine::new(program, &mut hooks) {
        Ok(m) => m,
        Err(e) => {
            return ExecutionCapture {
                output: Vec::new(),
                memory: Vec::new(),
                error: Some(RuntimeError {
                    message: format!("layout error: {e:?}"),
                    line: 0,
                }),
            }
        }
    };
    m.set_input(input.to_vec());
    let error = m.run().err();
    capture_machine(m, error)
}

fn capture_machine(mut m: Machine<'_>, error: Option<RuntimeError>) -> ExecutionCapture {
    let (_, len) = m.mem_parts();
    let memory = (0..len)
        .map(|a| m.peek(a).unwrap_or(Value::Real(0.0)))
        .collect();
    ExecutionCapture {
        output: std::mem::take(&mut m.output),
        memory,
        error,
    }
}

/// Certify `target` under `opts.schedules` adversarial schedules, executing
/// the loop with the privatization described by `plan` (pass the production
/// plan to certify the transformed loop, or
/// [`crate::plan::minimal_plan`]'s result to probe the untransformed one).
pub fn certify_loop(
    program: &Program,
    target: StmtId,
    plan: &PlanEntry,
    opts: &CertifyOptions,
) -> LoopCertification {
    let mut schedules = Vec::with_capacity(opts.schedules as usize);
    for s in 0..opts.schedules {
        let seed = opts.seed.wrapping_add(s as u64);
        let start = Instant::now();
        let mut hooks = NoHooks;
        let mut m = match Machine::new(program, &mut hooks) {
            Ok(m) => m,
            Err(e) => {
                schedules.push(ScheduleReport {
                    seed,
                    outcome: CertOutcome::default(),
                    capture: ExecutionCapture {
                        output: Vec::new(),
                        memory: Vec::new(),
                        error: Some(RuntimeError {
                            message: format!("layout error: {e:?}"),
                            line: 0,
                        }),
                    },
                    elapsed: start.elapsed(),
                });
                continue;
            }
        };
        m.set_input(opts.input.clone());
        m.set_handler(Box::new(CertifyHandler::new(
            target,
            opts.threads,
            seed,
            spec_fn(plan.clone()),
        )));
        let error = m.run().err();
        let h = m.take_handler().expect("certify handler installed");
        let outcome = {
            let raw = Box::into_raw(h) as *mut CertifyHandler;
            // SAFETY: the only handler installed on this machine is the
            // CertifyHandler boxed a few lines above.
            let h = unsafe { Box::from_raw(raw) };
            h.outcome.clone()
        };
        let capture = capture_machine(m, error);
        schedules.push(ScheduleReport {
            seed,
            outcome,
            capture,
            elapsed: start.elapsed(),
        });
    }
    LoopCertification {
        stmt: target,
        schedules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{minimal_plan, ParallelPlans};
    use suif_analysis::{ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    fn loop_named(
        program: &Program,
        pa: &suif_analysis::ProgramAnalysis<'_>,
        name: &str,
    ) -> StmtId {
        let _ = program;
        pa.ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("no loop {name}"))
            .stmt
    }

    #[test]
    fn doall_certifies_race_free_and_matches_sequential() {
        let src = r#"program t
proc main() {
  real a[32]
  int i
  do 1 i = 1, 32 {
    a[i] = i * 2
  }
  print a[1], a[32]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let target = loop_named(&p, &pa, "main/1");
        let plans = ParallelPlans::from_analysis(&pa);
        let plan = plans.loops.get(&target).expect("loop planned").clone();
        let seq = capture_sequential(&p, &[]);
        let cert = certify_loop(&p, target, &plan, &CertifyOptions::default());
        assert!(
            cert.race_free(),
            "races: {:?}",
            cert.schedules[0].outcome.races
        );
        assert_eq!(cert.schedules_run(), 4);
        for s in &cert.schedules {
            assert!(s.outcome.loops_run >= 1, "loop not certified");
            assert_eq!(s.capture.output, seq.output, "seed {}", s.seed);
            assert_eq!(s.capture.memory, seq.memory, "seed {}", s.seed);
            assert!(s.capture.error.is_none());
        }
    }

    #[test]
    fn carried_dependence_races_under_minimal_plan() {
        // a[i] = a[i-1] + 1 carries a flow dependence: iterations conflict.
        let src = r#"program t
proc main() {
  real a[32]
  int i
  a[1] = 1
  do 1 i = 2, 32 {
    a[i] = a[i - 1] + 1
  }
  print a[32]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let target = loop_named(&p, &pa, "main/1");
        assert!(!pa.verdicts[&target].is_parallel(), "must be serial");
        let plan = minimal_plan(&p, target).unwrap();
        let cert = certify_loop(&p, target, &plan, &CertifyOptions::default());
        assert!(!cert.race_free(), "carried dependence must race");
        let race = cert.schedules[0].outcome.races.first().expect("race");
        assert_eq!(p.var(race.first.var).name, "a");
    }

    #[test]
    fn schedules_are_replayable() {
        let src = r#"program t
proc main() {
  real a[16]
  int i
  do 1 i = 1, 16 {
    a[i] = i
  }
  print a[16]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let target = loop_named(&p, &pa, "main/1");
        let plan = ParallelPlans::from_analysis(&pa).loops[&target].clone();
        let opts = CertifyOptions {
            schedules: 2,
            seed: 99,
            ..Default::default()
        };
        let a = certify_loop(&p, target, &plan, &opts);
        let b = certify_loop(&p, target, &plan, &opts);
        for (x, y) in a.schedules.iter().zip(&b.schedules) {
            assert_eq!(x.outcome.schedule_decisions, y.outcome.schedule_decisions);
            assert_eq!(x.outcome.schedule_switches, y.outcome.schedule_switches);
            assert_eq!(x.capture.output, y.capture.output);
        }
    }
}
