//! Timing harness: sequential vs parallel execution of a program.

use crate::executor::{ParallelExecutor, RunStats, RuntimeConfig};
use crate::plan::ParallelPlans;
use std::time::{Duration, Instant};
use suif_dynamic::machine::{Machine, NoHooks, RuntimeError};
use suif_ir::Program;

/// One measured run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall time.
    pub elapsed: Duration,
    /// Captured `print` output.
    pub output: Vec<String>,
    /// Deterministic virtual-op "time": for sequential runs, the machine's
    /// op counter; for parallel runs, the main machine's ops plus the
    /// simulated parallel-region critical path (max worker ops + the
    /// spawn/finalization overhead model).  Speedup figures use this — the
    /// host cannot be assumed to have real parallel capacity.
    pub ops: u64,
}

/// Run the program sequentially.
pub fn measure_sequential(program: &Program, input: Vec<f64>) -> Result<Measurement, RuntimeError> {
    let mut hooks = NoHooks;
    let mut m = Machine::new(program, &mut hooks).map_err(|e| RuntimeError {
        message: e.to_string(),
        line: 0,
    })?;
    m.set_input(input);
    let start = Instant::now();
    m.run()?;
    Ok(Measurement {
        elapsed: start.elapsed(),
        output: m.output.clone(),
        ops: m.ops(),
    })
}

/// Run the program with the parallel runtime.
pub fn measure_parallel(
    program: &Program,
    plans: &ParallelPlans,
    config: RuntimeConfig,
    input: Vec<f64>,
) -> Result<(Measurement, RunStats), RuntimeError> {
    let mut hooks = NoHooks;
    let mut m = Machine::new(program, &mut hooks).map_err(|e| RuntimeError {
        message: e.to_string(),
        line: 0,
    })?;
    m.set_input(input);
    m.set_handler(Box::new(ParallelExecutor::new(plans.clone(), config)));
    let start = Instant::now();
    m.run()?;
    let elapsed = start.elapsed();
    let output = m.output.clone();
    let main_ops = m.ops();
    let stats = match m.take_handler() {
        Some(h) => {
            let raw = Box::into_raw(h) as *mut ParallelExecutor;
            // SAFETY: the only handler installed above is a ParallelExecutor.
            let ex = unsafe { Box::from_raw(raw) };
            ex.stats.clone()
        }
        None => RunStats::default(),
    };
    Ok((
        Measurement {
            elapsed,
            output,
            ops: main_ops + stats.sim_parallel_ops,
        },
        stats,
    ))
}

/// Best-of-`n` sequential wall time (noise reduction when wall clocks are
/// wanted; the speedup figures use [`sequential_ops`]).
pub fn best_sequential_time(
    program: &Program,
    input: &[f64],
    n: usize,
) -> Result<Duration, RuntimeError> {
    let mut best = Duration::MAX;
    for _ in 0..n.max(1) {
        let m = measure_sequential(program, input.to_vec())?;
        best = best.min(m.elapsed);
    }
    Ok(best)
}

/// Best-of-`n` parallel wall time.
pub fn best_parallel_time(
    program: &Program,
    plans: &ParallelPlans,
    config: &RuntimeConfig,
    input: &[f64],
    n: usize,
) -> Result<Duration, RuntimeError> {
    let mut best = Duration::MAX;
    for _ in 0..n.max(1) {
        let (m, _) = measure_parallel(program, plans, config.clone(), input.to_vec())?;
        best = best.min(m.elapsed);
    }
    Ok(best)
}

/// Deterministic sequential cost in virtual ops.
pub fn sequential_ops(program: &Program, input: &[f64]) -> Result<u64, RuntimeError> {
    Ok(measure_sequential(program, input.to_vec())?.ops)
}

/// Deterministic simulated parallel cost in virtual ops.
pub fn parallel_ops(
    program: &Program,
    plans: &ParallelPlans,
    config: &RuntimeConfig,
    input: &[f64],
) -> Result<u64, RuntimeError> {
    let (m, _) = measure_parallel(program, plans, config.clone(), input.to_vec())?;
    Ok(m.ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Finalization, Schedule};
    use suif_analysis::{ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    const SRC: &str = r#"program t
proc main() {
  real a[4096]
  real s
  int i
  do 1 i = 1, 4096 {
    a[i] = float(i) * 0.5
  }
  s = 0
  do 2 i = 1, 4096 {
    s = s + a[i]
  }
  print s
}
"#;

    fn plans_of(p: &suif_ir::Program) -> ParallelPlans {
        let pa = Parallelizer::analyze(p, ParallelizeConfig::default());
        ParallelPlans::from_analysis(&pa)
    }

    fn config(threads: usize) -> RuntimeConfig {
        RuntimeConfig {
            threads,
            min_parallel_iters: 2,
            min_parallel_cost: 0,
            finalization: Finalization::Serialized,
            schedule: Schedule::Block,
        }
    }

    #[test]
    fn virtual_ops_are_deterministic_across_runs() {
        let p = parse_program(SRC).unwrap();
        let plans = plans_of(&p);
        let seq1 = sequential_ops(&p, &[]).unwrap();
        let seq2 = sequential_ops(&p, &[]).unwrap();
        assert_eq!(seq1, seq2);
        let par1 = parallel_ops(&p, &plans, &config(4), &[]).unwrap();
        let par2 = parallel_ops(&p, &plans, &config(4), &[]).unwrap();
        assert_eq!(par1, par2);
    }

    #[test]
    fn simulated_speedup_improves_with_threads_on_large_loops() {
        let p = parse_program(SRC).unwrap();
        let plans = plans_of(&p);
        let seq = sequential_ops(&p, &[]).unwrap();
        let par2 = parallel_ops(&p, &plans, &config(2), &[]).unwrap();
        let par4 = parallel_ops(&p, &plans, &config(4), &[]).unwrap();
        // The simulated critical path must shrink with more workers on a
        // 4096-iteration loop (the spawn overhead is amortized).
        assert!(
            par2 < seq,
            "2-thread sim ops {par2} not below sequential {seq}"
        );
        assert!(
            par4 < par2,
            "4-thread sim ops {par4} not below 2-thread {par2}"
        );
    }

    #[test]
    fn measurement_output_matches_between_modes() {
        let p = parse_program(SRC).unwrap();
        let plans = plans_of(&p);
        let seq = measure_sequential(&p, vec![]).unwrap();
        let (par, stats) = measure_parallel(&p, &plans, config(2), vec![]).unwrap();
        assert_eq!(seq.output, par.output);
        assert!(stats.parallel_invocations.values().sum::<u64>() >= 1);
    }

    #[test]
    fn best_of_n_helpers_run() {
        let p = parse_program(SRC).unwrap();
        let plans = plans_of(&p);
        let s = best_sequential_time(&p, &[], 2).unwrap();
        let q = best_parallel_time(&p, &plans, &config(2), &[], 2).unwrap();
        assert!(s > Duration::ZERO && q > Duration::ZERO);
    }
}
