//! Lowering analysis verdicts into runtime execution plans.

use std::collections::{HashMap, HashSet};
use suif_analysis::{ArrayKey, LoopVerdict, ProgramAnalysis, RedOp};
use suif_ir::{ProcId, Program, Stmt, StmtId, VarId};
use suif_poly::{Section, Var};

/// One reduction in a plan.
#[derive(Clone, Debug)]
pub struct PlanReduction {
    /// All variables denoting the reduced storage object (every common view
    /// member for block objects).
    pub vars: Vec<VarId>,
    /// The operator.
    pub op: RedOp,
    /// Constant element range (1-based, within the object) to initialize and
    /// finalize, when the analysis bounded the reduction region (§6.3.3);
    /// `None` means the whole object.
    pub range: Option<(i64, i64)>,
}

/// Execution plan for one parallel loop.
#[derive(Clone, Debug, Default)]
pub struct PlanEntry {
    /// Variables privatized per thread without finalization.
    pub private_vars: Vec<VarId>,
    /// Privatized variables written back from the last iteration's thread.
    pub finalize_last: Vec<VarId>,
    /// Parallel reductions.
    pub reductions: Vec<PlanReduction>,
    /// Static per-iteration work estimate (source lines including callees);
    /// the runtime multiplies by the iteration count for the §4.5
    /// too-fine-grained suppression.
    pub body_weight: u32,
}

/// All parallel loops of a program with their plans.
#[derive(Clone, Debug, Default)]
pub struct ParallelPlans {
    /// Plans per loop statement.
    pub loops: HashMap<StmtId, PlanEntry>,
}

impl ParallelPlans {
    /// Lower a finished analysis into runtime plans: expands storage keys to
    /// variable lists, adds the implicit privates (loop indices and callee
    /// locals / scalar parameter slots), and extracts constant reduction
    /// ranges.
    pub fn from_analysis(pa: &ProgramAnalysis<'_>) -> ParallelPlans {
        let program = pa.ctx.program;
        let mut plans = ParallelPlans::default();
        for li in &pa.ctx.tree.loops {
            let Some(LoopVerdict::Parallel { plan, .. }) = pa.verdicts.get(&li.stmt) else {
                continue;
            };
            let depth = nest_depth(loop_body(program, li.stmt)) + if li.has_calls { 1 } else { 0 };
            let mut entry = PlanEntry {
                // Lines × 4^depth: nested loops multiply per-iteration work.
                body_weight: li.size_lines.max(1) << (2 * depth.min(8)),
                ..Default::default()
            };
            for key in &plan.private {
                entry.private_vars.extend(expand_key(program, *key));
            }
            for key in &plan.finalize_last {
                entry.finalize_last.extend(expand_key(program, *key));
            }
            for (key, op) in &plan.reductions {
                let id = match key {
                    ArrayKey::Common(_) | ArrayKey::Var(_) => {
                        // Look up the interned id to fetch the red section.
                        let probe = expand_key(program, *key);
                        probe.first().map(|&v| pa.ctx.array_of(v))
                    }
                };
                let range = id
                    .and_then(|id| pa.df.loop_iter.get(&li.stmt).map(|it| (id, it)))
                    .and_then(|(id, it)| it.sum.red.get(id).map(|e| e.red.clone()))
                    .and_then(|sec| const_range_dim0(&sec));
                entry.reductions.push(PlanReduction {
                    vars: expand_key(program, *key),
                    op: *op,
                    range,
                });
            }
            // Implicit privates: loop indices of this loop and every nested
            // loop in the same procedure …
            entry.private_vars.push(li.var);
            collect_do_vars(loop_body(program, li.stmt), &mut entry.private_vars);
            // … and the statically-allocated locals / scalar parameter slots
            // of every procedure callable from the body (Fortran-77 locals
            // are undefined on re-entry, so per-thread copies are always
            // legal).
            for p in callees_of_loop(program, li.stmt) {
                let proc = program.proc(p);
                for &v in &proc.locals {
                    entry.private_vars.push(v);
                }
                for &v in &proc.params {
                    if !program.var(v).is_array() {
                        entry.private_vars.push(v);
                    }
                }
            }
            entry.private_vars.sort();
            entry.private_vars.dedup();
            // Variables already in reductions/finalize keep those roles.
            let claimed: HashSet<VarId> = entry
                .finalize_last
                .iter()
                .chain(entry.reductions.iter().flat_map(|r| r.vars.iter()))
                .copied()
                .collect();
            entry.private_vars.retain(|v| !claimed.contains(v));
            plans.loops.insert(li.stmt, entry);
        }
        plans
    }
}

/// The plan a loop gets with *no* analysis-driven transforms: only the
/// always-legal implicit privates (the loop index, nested loop indices, and
/// the locals / scalar parameter slots of every callee).  Running a loop
/// with a carried dependence under this plan leaves the dependent storage
/// shared, so the certifying executor can observe the race the static
/// analysis predicted.
pub fn minimal_plan(program: &Program, loop_stmt: StmtId) -> Option<PlanEntry> {
    let (Stmt::Do { var, body, .. }, _) = program.find_stmt(loop_stmt)? else {
        return None;
    };
    let mut entry = PlanEntry {
        body_weight: 1,
        ..Default::default()
    };
    entry.private_vars.push(*var);
    collect_do_vars(body, &mut entry.private_vars);
    for p in callees_of_loop(program, loop_stmt) {
        let proc = program.proc(p);
        for &v in &proc.locals {
            entry.private_vars.push(v);
        }
        for &v in &proc.params {
            if !program.var(v).is_array() {
                entry.private_vars.push(v);
            }
        }
    }
    entry.private_vars.sort();
    entry.private_vars.dedup();
    Some(entry)
}

/// All variables denoting a storage key.
fn expand_key(program: &Program, key: ArrayKey) -> Vec<VarId> {
    match key {
        ArrayKey::Var(v) => vec![v],
        ArrayKey::Common(block) => {
            let mut out = Vec::new();
            for view in &program.commons[block.0 as usize].views {
                out.extend(view.members.iter().copied());
            }
            out
        }
    }
}

fn loop_body(program: &Program, loop_stmt: StmtId) -> &[Stmt] {
    match program.find_stmt(loop_stmt) {
        Some((Stmt::Do { body, .. }, _)) => body,
        _ => &[],
    }
}

/// Maximum `do`-nesting depth inside a body (same procedure only).
fn nest_depth(body: &[Stmt]) -> u32 {
    body.iter()
        .map(|s| match s {
            Stmt::Do { body, .. } => 1 + nest_depth(body),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => nest_depth(then_body).max(nest_depth(else_body)),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

fn collect_do_vars(body: &[Stmt], out: &mut Vec<VarId>) {
    for s in body {
        match s {
            Stmt::Do { var, body, .. } => {
                out.push(*var);
                collect_do_vars(body, out);
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_do_vars(then_body, out);
                collect_do_vars(else_body, out);
            }
            _ => {}
        }
    }
}

/// Procedures transitively callable from a loop body.
pub fn callees_of_loop(program: &Program, loop_stmt: StmtId) -> Vec<ProcId> {
    let mut out: HashSet<ProcId> = HashSet::new();
    let mut work: Vec<ProcId> = Vec::new();
    fn direct(body: &[Stmt], out: &mut Vec<ProcId>) {
        for s in body {
            match s {
                Stmt::Call { callee, .. } => out.push(*callee),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    direct(then_body, out);
                    direct(else_body, out);
                }
                Stmt::Do { body, .. } => direct(body, out),
                _ => {}
            }
        }
    }
    direct(loop_body(program, loop_stmt), &mut work);
    while let Some(p) = work.pop() {
        if out.insert(p) {
            direct(&program.proc(p).body, &mut work);
        }
    }
    let mut v: Vec<ProcId> = out.into_iter().collect();
    v.sort();
    v
}

/// Constant `[lo, hi]` bounds of a section's `d0` if derivable: the
/// reduction-region minimization of §6.3.3.
pub fn const_range_dim0(sec: &Section) -> Option<(i64, i64)> {
    if sec.is_empty() || sec.set.is_approximate() {
        return None;
    }
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for p in sec.set.disjuncts() {
        // Project away every symbol, leaving constraints over d0 only.
        let q = p.project_out_all(|v| matches!(v, Var::Sym(_)));
        if q.is_approximate() {
            return None;
        }
        let (mut plo, mut phi): (Option<i64>, Option<i64>) = (None, None);
        for c in q.constraints() {
            let a = c.expr.coef(Var::Dim(0));
            if a == 0
                || !c
                    .expr
                    .sub(&suif_poly::LinExpr::term(Var::Dim(0), a))
                    .is_constant()
            {
                continue;
            }
            let k = c.expr.constant_part();
            match c.kind {
                suif_poly::ConstraintKind::GeqZero => {
                    if a > 0 {
                        // a·d0 + k >= 0 → d0 >= ceil(-k / a)
                        let b = (-k).div_euclid(a) + if (-k).rem_euclid(a) != 0 { 1 } else { 0 };
                        plo = Some(plo.map_or(b, |x: i64| x.max(b)));
                    } else {
                        // a·d0 + k >= 0, a < 0 → d0 <= floor(k / -a)
                        let b = k.div_euclid(-a);
                        phi = Some(phi.map_or(b, |x: i64| x.min(b)));
                    }
                }
                suif_poly::ConstraintKind::EqZero => {
                    if a.abs() == 1 {
                        let v = -k / a;
                        plo = Some(v);
                        phi = Some(v);
                    }
                }
            }
        }
        let (plo, phi) = (plo?, phi?);
        lo = Some(lo.map_or(plo, |x: i64| x.min(plo)));
        hi = Some(hi.map_or(phi, |x: i64| x.max(phi)));
    }
    match (lo, hi) {
        (Some(l), Some(h)) if l <= h => Some((l, h)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_analysis::{ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    #[test]
    fn plan_includes_implicit_privates() {
        let p = parse_program(
            r#"program t
proc work(real q[*], int n) {
  real tmp[4]
  int j
  do j = 1, n {
    tmp[1] = j
    q[j] = tmp[1]
  }
}
proc main() {
  real a[40]
  int i
  do 1 i = 1, 10 {
    call work(a[(i - 1) * 4 + 1], 4)
  }
}
"#,
        )
        .unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let l1 = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1")
            .unwrap();
        assert!(
            pa.verdicts[&l1.stmt].is_parallel(),
            "{:?}",
            pa.verdicts[&l1.stmt]
        );
        let plans = ParallelPlans::from_analysis(&pa);
        let entry = &plans.loops[&l1.stmt];
        let names: Vec<String> = entry
            .private_vars
            .iter()
            .map(|&v| format!("{}/{}", p.proc(p.var(v).proc).name, p.var(v).name))
            .collect();
        assert!(names.contains(&"main/i".to_string()), "{names:?}");
        assert!(names.contains(&"work/tmp".to_string()), "{names:?}");
        assert!(names.contains(&"work/j".to_string()), "{names:?}");
        assert!(names.contains(&"work/n".to_string()), "{names:?}");
    }

    #[test]
    fn reduction_range_is_minimized() {
        // bdna pattern (§6.3.3): reduction touches only fax[1:natoms].
        let p = parse_program(
            r#"program t
const natoms = 20
proc main() {
  real fax[2000], w[50]
  int i, ia
  do 1 i = 1, 50 {
    do 2 ia = 1, natoms {
      fax[ia] = fax[ia] + w[i]
    }
  }
}
"#,
        )
        .unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let l1 = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1")
            .unwrap();
        assert!(pa.verdicts[&l1.stmt].is_parallel());
        let plans = ParallelPlans::from_analysis(&pa);
        let entry = &plans.loops[&l1.stmt];
        assert_eq!(entry.reductions.len(), 1);
        assert_eq!(
            entry.reductions[0].range,
            Some((1, 20)),
            "reduction region minimized to fax[1:natoms]"
        );
    }
    #[test]
    fn body_weight_scales_with_nesting_depth() {
        let src = r#"program t
proc main() {
  real a[8], b[8]
  int i, j
  do 1 i = 1, 8 {
    a[i] = i
  }
  do 2 i = 1, 8 {
    do 3 j = 1, 8 {
      b[j] = a[j] + i
    }
  }
  print a[1], b[1]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let plans = ParallelPlans::from_analysis(&pa);
        let flat = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1")
            .unwrap();
        let nested = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/2")
            .unwrap();
        let wf = plans.loops.get(&flat.stmt).map(|e| e.body_weight);
        let wn = plans.loops.get(&nested.stmt).map(|e| e.body_weight);
        if let (Some(wf), Some(wn)) = (wf, wn) {
            assert!(
                wn >= wf * 4,
                "nested weight {wn} not >= 4x flat weight {wf}"
            );
        } else {
            panic!("expected both loops parallel: {wf:?} {wn:?}");
        }
    }

    #[test]
    fn const_range_dim0_handles_points_intervals_and_symbols() {
        use suif_poly::{ArrayId, Constraint, LinExpr, PolySet, Polyhedron, Section, Var};
        let id = ArrayId(0);
        let with_poly = |p: Polyhedron| {
            let mut s = Section::empty(id, 1);
            s.set = PolySet::from_poly(p);
            s
        };
        // Point d0 == 5.
        let sec = with_poly(Polyhedron::from_constraints([Constraint::eq(
            &LinExpr::var(Var::Dim(0)),
            &LinExpr::constant(5),
        )]));
        assert_eq!(const_range_dim0(&sec), Some((5, 5)));
        // Interval 2 <= d0 <= 9.
        let sec = with_poly(Polyhedron::from_constraints([
            Constraint::geq(&LinExpr::var(Var::Dim(0)), &LinExpr::constant(2)),
            Constraint::leq(&LinExpr::var(Var::Dim(0)), &LinExpr::constant(9)),
        ]));
        assert_eq!(const_range_dim0(&sec), Some((2, 9)));
        // Symbol-bounded section: d0 == s0 (no constant bounds).
        let sec = with_poly(Polyhedron::from_constraints([Constraint::eq(
            &LinExpr::var(Var::Dim(0)),
            &LinExpr::var(Var::Sym(0)),
        )]));
        assert_eq!(const_range_dim0(&sec), None);
    }

    #[test]
    fn callees_collected_transitively() {
        let src = r#"program t
proc leaf(real x[*]) {
  x[1] = 1
}
proc mid(real x[*]) {
  call leaf(x)
}
proc main() {
  real a[4]
  int i
  do 1 i = 1, 4 {
    call mid(a)
  }
  print a[1]
}
"#;
        let p = parse_program(src).unwrap();
        let li = {
            let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
            pa.ctx.tree.loops[0].stmt
        };
        let callees = callees_of_loop(&p, li);
        let names: Vec<&str> = callees
            .iter()
            .map(|&pid| p.proc(pid).name.as_str())
            .collect();
        assert!(
            names.contains(&"mid") && names.contains(&"leaf"),
            "{names:?}"
        );
    }
}
