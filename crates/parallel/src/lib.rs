//! The SPMD parallel runtime (§4.5, §6.3).
//!
//! Executes loops the parallelizer proved parallel on worker threads over a
//! shared view of the interpreter's memory:
//!
//! * iterations are evenly block-divided between the workers ("the
//!   iterations of a parallel loop are evenly divided between the processors
//!   at the time the parallel loop is spawned", §4.5);
//! * only the outermost parallel loop runs in parallel (workers carry no
//!   loop handler, so nested parallel loops execute sequentially inside
//!   them);
//! * a run-time **serial fallback** suppresses parallel execution of loops
//!   whose iteration count is too small to amortize spawn overhead ("runs
//!   the loop sequentially if it is considered too fine-grained", §4.5);
//! * privatized variables (the plan's objects, the loop indices, and every
//!   local/scalar-parameter slot of procedures called from the body) are
//!   redirected into a thread-private memory tail;
//! * **parallel reductions** (§6.3) get per-thread private copies
//!   initialized to the operator identity, with the reduction region
//!   minimized to its constant bounds when the analysis derived them
//!   (§6.3.3), and a configurable finalization strategy: serialized
//!   post-join merging, or staggered per-section locking inside the workers
//!   (§6.3.4).

#![warn(missing_docs)]

pub mod certify;
pub mod executor;
pub mod measure;
pub mod plan;

pub use certify::{
    capture_sequential, certify_loop, CertifyOptions, ExecutionCapture, LoopCertification,
    ScheduleReport,
};
pub use executor::{Finalization, ParallelExecutor, RunStats, RuntimeConfig, Schedule};
pub use measure::{
    best_parallel_time, best_sequential_time, measure_parallel, measure_sequential, parallel_ops,
    sequential_ops, Measurement,
};
pub use plan::{minimal_plan, ParallelPlans, PlanEntry, PlanReduction};
