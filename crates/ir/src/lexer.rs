//! Hand-written lexer for MiniF.

use crate::token::{Keyword, Punct, Token, TokenKind};
use std::fmt;

/// A lexical error with source line.
#[derive(Debug, Clone)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Tokenize MiniF source.  `//` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut out, Punct::LParen, line, &mut i),
            ')' => push(&mut out, Punct::RParen, line, &mut i),
            '{' => push(&mut out, Punct::LBrace, line, &mut i),
            '}' => push(&mut out, Punct::RBrace, line, &mut i),
            '[' => push(&mut out, Punct::LBracket, line, &mut i),
            ']' => push(&mut out, Punct::RBracket, line, &mut i),
            ',' => push(&mut out, Punct::Comma, line, &mut i),
            '+' => push(&mut out, Punct::Plus, line, &mut i),
            '-' => push(&mut out, Punct::Minus, line, &mut i),
            '*' => push(&mut out, Punct::Star, line, &mut i),
            '/' => push(&mut out, Punct::Slash, line, &mut i),
            '%' => push(&mut out, Punct::Percent, line, &mut i),
            '<' => push2(&mut out, bytes, Punct::Lt, Punct::Le, b'=', line, &mut i),
            '>' => push2(&mut out, bytes, Punct::Gt, Punct::Ge, b'=', line, &mut i),
            '=' => push2(
                &mut out,
                bytes,
                Punct::Assign,
                Punct::EqEq,
                b'=',
                line,
                &mut i,
            ),
            '!' => push2(&mut out, bytes, Punct::Not, Punct::Ne, b'=', line, &mut i),
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    out.push(Token {
                        kind: TokenKind::Punct(Punct::AndAnd),
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `&&`".into(),
                        line,
                    });
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    out.push(Token {
                        kind: TokenKind::Punct(Punct::OrOr),
                        line,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected `||`".into(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_real = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_real = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_real = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let kind = if is_real {
                    TokenKind::Real(text.parse().map_err(|_| LexError {
                        message: format!("bad real literal `{text}`"),
                        line,
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("bad integer literal `{text}`"),
                        line,
                    })?)
                };
                out.push(Token { kind, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let kind = match Keyword::from_ident(text) {
                    Some(kw) => TokenKind::Kw(kw),
                    None => TokenKind::Ident(text.to_string()),
                };
                out.push(Token { kind, line });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, p: Punct, line: u32, i: &mut usize) {
    out.push(Token {
        kind: TokenKind::Punct(p),
        line,
    });
    *i += 1;
}

fn push2(
    out: &mut Vec<Token>,
    bytes: &[u8],
    single: Punct,
    double: Punct,
    second: u8,
    line: u32,
    i: &mut usize,
) {
    if *i + 1 < bytes.len() && bytes[*i + 1] == second {
        out.push(Token {
            kind: TokenKind::Punct(double),
            line,
        });
        *i += 2;
    } else {
        out.push(Token {
            kind: TokenKind::Punct(single),
            line,
        });
        *i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_basic_program() {
        let toks = lex("proc f() { a = 1.5e2 // comment\n b = a <= 2 }").unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Kw(Keyword::Proc)));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TokenKind::Real(v) if (*v - 150.0).abs() < 1e-9)));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TokenKind::Punct(Punct::Le))));
        assert!(matches!(kinds.last().unwrap(), TokenKind::Eof));
    }

    #[test]
    fn tracks_lines() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn comments_do_not_hide_newlines() {
        let toks = lex("a // x\nb").unwrap();
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn rejects_stray_ampersand() {
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn distinguishes_int_and_real() {
        let toks = lex("1 2.5 3e4 5").unwrap();
        assert!(matches!(toks[0].kind, TokenKind::Int(1)));
        assert!(matches!(toks[1].kind, TokenKind::Real(_)));
        assert!(matches!(toks[2].kind, TokenKind::Real(_)));
        assert!(matches!(toks[3].kind, TokenKind::Int(5)));
    }
}
