//! Token definitions for the MiniF lexer.

use std::fmt;

/// A lexical token with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier (also used for keywords before classification).
    Ident(String),
    /// Keyword.
    Kw(Keyword),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Keyword {
    /// `program`
    Program,
    /// `proc`
    Proc,
    /// `common`
    Common,
    /// `real`
    Real,
    /// `int`
    Int,
    /// `do`
    Do,
    /// `if`
    If,
    /// `else`
    Else,
    /// `call`
    Call,
    /// `print`
    Print,
    /// `read`
    Read,
    /// `const`
    Const,
}

impl Keyword {
    /// Classify an identifier as a keyword.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        Some(match s {
            "program" => Keyword::Program,
            "proc" => Keyword::Proc,
            "common" => Keyword::Common,
            "real" => Keyword::Real,
            "int" => Keyword::Int,
            "do" => Keyword::Do,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "call" => Keyword::Call,
            "print" => Keyword::Print,
            "read" => Keyword::Read,
            "const" => Keyword::Const,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Punct {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Kw(k) => write!(f, "keyword `{k:?}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Real(v) => write!(f, "real `{v}`"),
            TokenKind::Punct(p) => write!(f, "`{p:?}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
