//! Program call graph with topological ordering (the bottom-up / top-down
//! traversal orders of the region-based interprocedural analyses, §5.2).

use crate::program::{ProcId, Program, Stmt, StmtId};
use std::collections::HashMap;

/// One call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallSite {
    /// Calling procedure.
    pub caller: ProcId,
    /// The `call` statement.
    pub stmt: StmtId,
    /// Callee.
    pub callee: ProcId,
}

/// The call graph (a DAG; recursion is rejected by sema).
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// All call sites in program order.
    pub sites: Vec<CallSite>,
    callees: HashMap<ProcId, Vec<ProcId>>,
    callers: HashMap<ProcId, Vec<CallSite>>,
    bottom_up: Vec<ProcId>,
}

impl CallGraph {
    /// Build the call graph of a program.
    pub fn build(program: &Program) -> CallGraph {
        let mut sites = Vec::new();
        let mut callees: HashMap<ProcId, Vec<ProcId>> = HashMap::new();
        let mut callers: HashMap<ProcId, Vec<CallSite>> = HashMap::new();
        for proc in &program.procedures {
            callees.entry(proc.id).or_default();
            program.walk_stmts(proc.id, &mut |s, _| {
                if let Stmt::Call { id, callee, .. } = s {
                    let site = CallSite {
                        caller: proc.id,
                        stmt: *id,
                        callee: *callee,
                    };
                    sites.push(site);
                    callees.entry(proc.id).or_default().push(*callee);
                    callers.entry(*callee).or_default().push(site);
                }
            });
        }
        // Topological sort, leaves first (bottom-up order).
        let mut order = Vec::new();
        let mut visited = vec![false; program.procedures.len()];
        fn dfs(
            p: ProcId,
            callees: &HashMap<ProcId, Vec<ProcId>>,
            visited: &mut [bool],
            order: &mut Vec<ProcId>,
        ) {
            if visited[p.0 as usize] {
                return;
            }
            visited[p.0 as usize] = true;
            if let Some(cs) = callees.get(&p) {
                for &c in cs {
                    dfs(c, callees, visited, order);
                }
            }
            order.push(p);
        }
        for proc in &program.procedures {
            dfs(proc.id, &callees, &mut visited, &mut order);
        }
        CallGraph {
            sites,
            callees,
            callers,
            bottom_up: order,
        }
    }

    /// Procedures leaves-first (callees before callers).
    pub fn bottom_up(&self) -> &[ProcId] {
        &self.bottom_up
    }

    /// Procedures callers-first (main before callees).
    pub fn top_down(&self) -> Vec<ProcId> {
        let mut v = self.bottom_up.clone();
        v.reverse();
        v
    }

    /// Direct callees of a procedure (with multiplicity).
    pub fn callees_of(&self, p: ProcId) -> &[ProcId] {
        self.callees.get(&p).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All call sites targeting a procedure.
    pub fn callers_of(&self, p: ProcId) -> &[CallSite] {
        self.callers.get(&p).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Render as an indented call tree rooted at `main` (the textual
    /// substitute for the hyperbolic call-graph viewer of §2.7).
    pub fn render_tree(&self, program: &Program) -> String {
        let mut out = String::new();
        fn go(cg: &CallGraph, program: &Program, p: ProcId, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&program.proc(p).name);
            out.push('\n');
            let mut seen = Vec::new();
            for &c in cg.callees_of(p) {
                if !seen.contains(&c) {
                    seen.push(c);
                    go(cg, program, c, depth + 1, out);
                }
            }
        }
        go(self, program, program.main, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn orders_bottom_up() {
        let p = parse_program(
            "program t\nproc a() { }\nproc b() { call a() }\nproc main() { call b() call a() }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        let pos = |name: &str| {
            let id = p.proc_by_name(name).unwrap().id;
            cg.bottom_up().iter().position(|&x| x == id).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("main"));
        assert_eq!(cg.sites.len(), 3);
    }

    #[test]
    fn callers_are_recorded() {
        let p =
            parse_program("program t\nproc a() { }\nproc main() { call a() call a() }").unwrap();
        let cg = CallGraph::build(&p);
        let a = p.proc_by_name("a").unwrap().id;
        assert_eq!(cg.callers_of(a).len(), 2);
        assert!(cg.callers_of(p.main).is_empty());
    }

    #[test]
    fn renders_tree() {
        let p = parse_program(
            "program t\nproc leaf() { }\nproc mid() { call leaf() }\nproc main() { call mid() }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        let t = cg.render_tree(&p);
        assert_eq!(t, "main\n  mid\n    leaf\n");
    }
}
