//! Unresolved (name-based) abstract syntax tree produced by the parser.
//!
//! The [`crate::sema`] pass resolves names to ids and produces the checked
//! [`crate::program::Program`].

/// A whole source file.
#[derive(Debug, Clone)]
pub struct AstProgram {
    /// Program name (from `program <name>`).
    pub name: String,
    /// Program-level named integer constants (`const n = 450`).
    pub consts: Vec<AstConst>,
    /// Procedures in source order.
    pub procs: Vec<AstProc>,
}

/// `const name = value`.
#[derive(Debug, Clone)]
pub struct AstConst {
    /// Constant name.
    pub name: String,
    /// Constant value.
    pub value: i64,
    /// Source line.
    pub line: u32,
}

/// A procedure (Fortran SUBROUTINE analogue).
#[derive(Debug, Clone)]
pub struct AstProc {
    /// Procedure name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<AstParam>,
    /// Local / common declarations.
    pub decls: Vec<AstDecl>,
    /// Body statements.
    pub body: Vec<AstStmt>,
    /// Line of the `proc` keyword.
    pub line: u32,
    /// Line of the closing brace.
    pub end_line: u32,
}

/// Scalar or array type of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Real,
}

/// A formal parameter: `real a[*]`, `real a[n, m]`, `int k`.
#[derive(Debug, Clone)]
pub struct AstParam {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: AstType,
    /// Array extents; empty for scalars.  `None` entries are `*` (assumed
    /// size, only allowed in the last dimension).
    pub dims: Vec<Option<AstExpr>>,
    /// Source line.
    pub line: u32,
}

/// A declaration inside a procedure.
#[derive(Debug, Clone)]
pub enum AstDecl {
    /// `real x`, `int a[10, n]` — local variable.
    Local {
        /// Element type.
        ty: AstType,
        /// Declared names with extents (empty extents = scalar).
        vars: Vec<(String, Vec<AstExpr>)>,
        /// Source line.
        line: u32,
    },
    /// `common /blk/ real a[10], int k` — this procedure's view of a block.
    Common {
        /// Block name.
        block: String,
        /// Member declarations in layout order.
        vars: Vec<(AstType, String, Vec<AstExpr>)>,
        /// Source line.
        line: u32,
    },
}

/// A statement.
#[derive(Debug, Clone)]
pub enum AstStmt {
    /// `lhs = rhs`.
    Assign {
        /// Left-hand side reference.
        lhs: AstRef,
        /// Right-hand side expression.
        rhs: AstExpr,
        /// Source line.
        line: u32,
    },
    /// `if cond { .. } else { .. }`.
    If {
        /// Condition.
        cond: AstExpr,
        /// Then branch.
        then_body: Vec<AstStmt>,
        /// Else branch (possibly empty).
        else_body: Vec<AstStmt>,
        /// Source line.
        line: u32,
    },
    /// `do [label] v = lo, hi[, step] { .. }`.
    Do {
        /// Optional numeric label (`do 100 i = ..`).
        label: Option<u32>,
        /// Induction variable name.
        var: String,
        /// Lower bound.
        lo: AstExpr,
        /// Upper bound (inclusive, Fortran style).
        hi: AstExpr,
        /// Optional step (default 1).
        step: Option<AstExpr>,
        /// Loop body.
        body: Vec<AstStmt>,
        /// Source line of the `do`.
        line: u32,
        /// Source line of the closing brace.
        end_line: u32,
    },
    /// `call p(a, b[k], x + 1)`.
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<AstExpr>,
        /// Source line.
        line: u32,
    },
    /// `print e1, e2` — I/O side effect.
    Print {
        /// Values to print.
        args: Vec<AstExpr>,
        /// Source line.
        line: u32,
    },
    /// `read lhs` — consume one input value.
    Read {
        /// Destination reference.
        lhs: AstRef,
        /// Source line.
        line: u32,
    },
}

/// A reference (assignable location).
#[derive(Debug, Clone)]
pub struct AstRef {
    /// Variable name.
    pub name: String,
    /// Subscripts; empty for scalar references.
    pub subs: Vec<AstExpr>,
    /// Source line.
    pub line: u32,
}

/// An expression.
#[derive(Debug, Clone)]
pub enum AstExpr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Variable or array reference (empty subs = scalar or whole array in
    /// call-argument position; sema decides).
    Ref(AstRef),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<AstExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<AstExpr>,
        /// Right operand.
        rhs: Box<AstExpr>,
    },
    /// Intrinsic call: `min(a, b)`, `sqrt(x)`, …
    Intrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Arguments.
        args: Vec<AstExpr>,
    },
}

impl AstExpr {
    /// Source line of the leftmost token, if known.
    pub fn line(&self) -> Option<u32> {
        match self {
            AstExpr::Ref(r) => Some(r.line),
            AstExpr::Unary { arg, .. } => arg.line(),
            AstExpr::Binary { lhs, .. } => lhs.line(),
            AstExpr::Intrinsic { args, .. } => args.first().and_then(|a| a.line()),
            _ => None,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (Fortran `MOD` on integers)
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Intrinsic functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrinsic {
    /// 2-argument minimum.
    Min,
    /// 2-argument maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Square root.
    Sqrt,
    /// `mod(a, b)`.
    Mod,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Truncate real to int.
    Ifix,
    /// Convert int to real.
    Float,
}

impl Intrinsic {
    /// Look up by name.
    pub fn from_name(s: &str) -> Option<Intrinsic> {
        Some(match s {
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "abs" => Intrinsic::Abs,
            "sqrt" => Intrinsic::Sqrt,
            "mod" => Intrinsic::Mod,
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "ifix" => Intrinsic::Ifix,
            "float" => Intrinsic::Float,
            _ => return None,
        })
    }

    /// Expected argument count.
    pub fn arity(&self) -> usize {
        match self {
            Intrinsic::Min | Intrinsic::Max | Intrinsic::Mod => 2,
            _ => 1,
        }
    }
}
