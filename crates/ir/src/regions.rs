//! The region tree: the hierarchical program representation of §5.2
//! ("every procedure, loop, and loop body in the program is represented as a
//! region"), plus per-loop metadata used throughout the Explorer.

use crate::program::{ProcId, Program, Stmt, StmtId, VarId};
use std::collections::HashMap;

/// Region id: index into [`RegionTree::regions`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RegionId(pub u32);

/// What a region represents.
#[derive(Clone, Debug, PartialEq)]
pub enum RegionKind {
    /// A whole procedure body.
    Proc(ProcId),
    /// A `do` loop (the loop construct, including its header).
    Loop {
        /// Owning procedure.
        proc: ProcId,
        /// The loop statement.
        stmt: StmtId,
    },
    /// The body of a `do` loop (one iteration).
    LoopBody {
        /// Owning procedure.
        proc: ProcId,
        /// The loop statement.
        stmt: StmtId,
    },
}

/// One region node.
#[derive(Clone, Debug)]
pub struct Region {
    /// This region's id.
    pub id: RegionId,
    /// What it represents.
    pub kind: RegionKind,
    /// Parent region (None for procedure regions).
    pub parent: Option<RegionId>,
    /// Child regions in source order.
    pub children: Vec<RegionId>,
    /// First source line covered.
    pub start_line: u32,
    /// Last source line covered.
    pub end_line: u32,
}

/// Static metadata about one `do` loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The loop statement id.
    pub stmt: StmtId,
    /// Region of the loop.
    pub region: RegionId,
    /// Region of the loop body.
    pub body_region: RegionId,
    /// Owning procedure.
    pub proc: ProcId,
    /// Induction variable.
    pub var: VarId,
    /// Optional numeric label.
    pub label: Option<u32>,
    /// `do` line.
    pub line: u32,
    /// Closing line.
    pub end_line: u32,
    /// Nesting depth within the procedure (0 = outermost).
    pub depth: usize,
    /// Human-readable name, e.g. `interf/1000`.
    pub name: String,
    /// Does the loop (transitively, through calls) perform I/O?
    pub has_io: bool,
    /// Does the loop body (transitively) call procedures?
    pub has_calls: bool,
    /// Number of source lines of the loop *including called procedures*,
    /// excluding comment lines — the paper's loop-size metric (Fig. 4-8).
    pub size_lines: u32,
}

/// The region tree over a whole program.
#[derive(Clone, Debug)]
pub struct RegionTree {
    /// All regions; index = `RegionId.0`.
    pub regions: Vec<Region>,
    /// Procedure body region per procedure (index = `ProcId.0`).
    pub proc_regions: Vec<RegionId>,
    /// All loops in program order.
    pub loops: Vec<LoopInfo>,
    /// Loop lookup by statement id.
    loop_by_stmt: HashMap<StmtId, usize>,
}

impl RegionTree {
    /// Build the region tree for a program.
    pub fn build(program: &Program) -> RegionTree {
        let mut tree = RegionTree {
            regions: Vec::new(),
            proc_regions: Vec::new(),
            loops: Vec::new(),
            loop_by_stmt: HashMap::new(),
        };
        // Pre-compute per-procedure transitive properties.
        let props = ProcProps::compute(program);
        for proc in &program.procedures {
            let rid = tree.new_region(RegionKind::Proc(proc.id), None, proc.line, proc.end_line);
            tree.proc_regions.push(rid);
            tree.walk_body(program, proc.id, &proc.body, rid, 0, &props);
        }
        tree
    }

    fn new_region(
        &mut self,
        kind: RegionKind,
        parent: Option<RegionId>,
        start_line: u32,
        end_line: u32,
    ) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            id,
            kind,
            parent,
            children: Vec::new(),
            start_line,
            end_line,
        });
        if let Some(p) = parent {
            self.regions[p.0 as usize].children.push(id);
        }
        id
    }

    fn walk_body(
        &mut self,
        program: &Program,
        proc: ProcId,
        body: &[Stmt],
        parent: RegionId,
        depth: usize,
        props: &ProcProps,
    ) {
        for s in body {
            match s {
                Stmt::Do {
                    id,
                    line,
                    end_line,
                    label,
                    var,
                    body,
                    ..
                } => {
                    let lr = self.new_region(
                        RegionKind::Loop { proc, stmt: *id },
                        Some(parent),
                        *line,
                        *end_line,
                    );
                    let br = self.new_region(
                        RegionKind::LoopBody { proc, stmt: *id },
                        Some(lr),
                        *line,
                        *end_line,
                    );
                    let (has_io, has_calls, callee_lines) = props.body_props(body);
                    let own_lines = end_line.saturating_sub(*line).saturating_add(1);
                    let li = LoopInfo {
                        stmt: *id,
                        region: lr,
                        body_region: br,
                        proc,
                        var: *var,
                        label: *label,
                        line: *line,
                        end_line: *end_line,
                        depth,
                        name: program.loop_name(proc, *label, *line),
                        has_io,
                        has_calls,
                        size_lines: own_lines + callee_lines,
                    };
                    self.loop_by_stmt.insert(*id, self.loops.len());
                    self.loops.push(li);
                    self.walk_body(program, proc, body, br, depth + 1, props);
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.walk_body(program, proc, then_body, parent, depth, props);
                    self.walk_body(program, proc, else_body, parent, depth, props);
                }
                _ => {}
            }
        }
    }

    /// Loop info by loop-statement id.
    pub fn loop_of(&self, stmt: StmtId) -> Option<&LoopInfo> {
        self.loop_by_stmt.get(&stmt).map(|&i| &self.loops[i])
    }

    /// Region metadata.
    pub fn region(&self, r: RegionId) -> &Region {
        &self.regions[r.0 as usize]
    }

    /// The loops directly or transitively nested inside a loop.
    pub fn nested_loops(&self, outer: StmtId) -> Vec<StmtId> {
        let Some(li) = self.loop_of(outer) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![li.body_region];
        while let Some(r) = stack.pop() {
            for &c in &self.regions[r.0 as usize].children {
                if let RegionKind::Loop { stmt, .. } = self.regions[c.0 as usize].kind {
                    out.push(stmt);
                }
                stack.push(c);
            }
        }
        out
    }

    /// Is `inner` statically nested (at any depth) inside loop `outer`?
    pub fn is_nested_in(&self, inner: StmtId, outer: StmtId) -> bool {
        self.nested_loops(outer).contains(&inner)
    }

    /// All loops of one procedure.
    pub fn loops_of_proc(&self, proc: ProcId) -> impl Iterator<Item = &LoopInfo> {
        self.loops.iter().filter(move |l| l.proc == proc)
    }
}

/// Per-procedure transitive properties (I/O, size), used to compute
/// inter-procedural loop metadata.
struct ProcProps {
    has_io: Vec<bool>,
    lines: Vec<u32>,
}

impl ProcProps {
    fn compute(program: &Program) -> ProcProps {
        let n = program.procedures.len();
        let mut props = ProcProps {
            has_io: vec![false; n],
            lines: vec![0; n],
        };
        // Iterate to a fixed point (call graph is acyclic, a few passes are
        // enough; we just loop until stable).
        let mut changed = true;
        while changed {
            changed = false;
            for proc in &program.procedures {
                let mut io = false;
                let mut lines = proc.end_line.saturating_sub(proc.line).saturating_add(1);
                program.walk_stmts(proc.id, &mut |s, _| match s {
                    Stmt::Print { .. } | Stmt::Read { .. } => io = true,
                    Stmt::Call { callee, .. } => {
                        io |= props.has_io[callee.0 as usize];
                        lines = lines.saturating_add(props.lines[callee.0 as usize]);
                    }
                    _ => {}
                });
                let idx = proc.id.0 as usize;
                if io != props.has_io[idx] || lines != props.lines[idx] {
                    props.has_io[idx] = io;
                    props.lines[idx] = lines;
                    changed = true;
                }
            }
        }
        props
    }

    /// `(has_io, has_calls, callee_lines)` for a loop body.
    fn body_props(&self, body: &[Stmt]) -> (bool, bool, u32) {
        let mut io = false;
        let mut calls = false;
        let mut callee_lines = 0u32;
        fn go(props: &ProcProps, body: &[Stmt], io: &mut bool, calls: &mut bool, lines: &mut u32) {
            for s in body {
                match s {
                    Stmt::Print { .. } | Stmt::Read { .. } => *io = true,
                    Stmt::Call { callee, .. } => {
                        *calls = true;
                        *io |= props.has_io[callee.0 as usize];
                        *lines = lines.saturating_add(props.lines[callee.0 as usize]);
                    }
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        go(props, then_body, io, calls, lines);
                        go(props, else_body, io, calls, lines);
                    }
                    Stmt::Do { body, .. } => go(props, body, io, calls, lines),
                    _ => {}
                }
            }
        }
        go(self, body, &mut io, &mut calls, &mut callee_lines);
        (io, calls, callee_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn demo() -> Program {
        parse_program(
            r#"program t
proc sub(real a[*], int n) {
  int j
  do 10 j = 1, n {
    a[j] = j
  }
}
proc main() {
  real a[100]
  int i, k
  do 100 i = 1, 10 {
    call sub(a, 10)
    do 200 k = 1, 5 {
      a[k] = a[k] + 1
    }
  }
  print a[1]
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn builds_loop_hierarchy() {
        let p = demo();
        let t = RegionTree::build(&p);
        assert_eq!(t.loops.len(), 3);
        let outer = t.loops.iter().find(|l| l.name == "main/100").unwrap();
        let inner = t.loops.iter().find(|l| l.name == "main/200").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(t.is_nested_in(inner.stmt, outer.stmt));
        assert!(!t.is_nested_in(outer.stmt, inner.stmt));
    }

    #[test]
    fn loop_properties() {
        let p = demo();
        let t = RegionTree::build(&p);
        let outer = t.loops.iter().find(|l| l.name == "main/100").unwrap();
        assert!(outer.has_calls);
        assert!(!outer.has_io); // print is outside the loop
                                // Size includes the callee's lines.
        assert!(outer.size_lines > outer.end_line - outer.line + 1);
        let sub = t.loops.iter().find(|l| l.name == "sub/10").unwrap();
        assert!(!sub.has_calls);
    }

    #[test]
    fn io_propagates_through_calls() {
        let p = parse_program(
            "program t\nproc noisy() { print 1 }\nproc main() {\n int i\n do i = 1, 2 {\n call noisy()\n }\n}",
        )
        .unwrap();
        let t = RegionTree::build(&p);
        assert!(t.loops[0].has_io);
    }

    #[test]
    fn proc_regions_are_roots() {
        let p = demo();
        let t = RegionTree::build(&p);
        for &r in &t.proc_regions {
            assert!(t.region(r).parent.is_none());
        }
        // Every loop region's parent chain reaches a proc region.
        for l in &t.loops {
            let mut cur = l.region;
            while let Some(parent) = t.region(cur).parent {
                cur = parent;
            }
            assert!(matches!(t.region(cur).kind, RegionKind::Proc(_)));
        }
    }
}
