//! MiniF: a Fortran-semantics mini-language and program IR for the SUIF
//! Explorer reproduction.
//!
//! The SUIF Explorer evaluation (Liao, CSL-TR-00-807, Ch. 4–6) runs on
//! Fortran-77 scientific programs.  MiniF preserves the Fortran semantics
//! every analysis in the paper depends on, with a small brace-based syntax:
//!
//! * 1-based, column-major arrays with declared (possibly symbolic) extents;
//! * `COMMON` blocks declared per procedure, with *different shapes per
//!   procedure* (the aliasing that drives the liveness-based common-block
//!   splitting of §5.5);
//! * by-reference array arguments, including sub-array bases `a[k]`
//!   (the `CALL init(aif3(k1), …)` pattern of Fig. 5-1);
//! * copy-in/copy-out scalar arguments (§3.4.2);
//! * structured control flow only: `do` loops (with optional numeric labels,
//!   so loops are nameable as `proc/label` like the paper's `interf/1000`),
//!   `if/else`, `call`, assignment, `print`/`read` (I/O marks a loop
//!   unparallelizable, §2.6).
//!
//! # Example
//!
//! ```
//! let src = r#"
//! program demo
//! proc main() {
//!   real a[10]
//!   int i
//!   do 100 i = 1, 10 {
//!     a[i] = i * 2
//!   }
//!   print a[10]
//! }
//! "#;
//! let program = suif_ir::parse_program(src).unwrap();
//! assert_eq!(program.procedures.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod regions;
pub mod sema;
pub mod token;

pub use callgraph::CallGraph;
pub use program::*;
pub use regions::{LoopInfo, RegionId, RegionKind, RegionTree};

/// Parse and resolve a MiniF source string into a checked [`Program`].
pub fn parse_program(src: &str) -> Result<Program, CompileError> {
    let tokens = lexer::lex(src).map_err(CompileError::Lex)?;
    let ast = parser::parse(&tokens).map_err(CompileError::Parse)?;
    sema::resolve(&ast, src).map_err(CompileError::Sema)
}

/// Any front-end failure.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Lexical error.
    Lex(lexer::LexError),
    /// Syntax error.
    Parse(parser::ParseError),
    /// Semantic (name/type/shape) error.
    Sema(sema::SemaError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Lex(e) => write!(f, "lex error: {e}"),
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Sema(e) => write!(f, "semantic error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}
