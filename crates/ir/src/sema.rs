//! Semantic analysis: resolves the name-based AST into the checked
//! [`Program`] IR, enforcing MiniF's Fortran-like rules.

use crate::ast::*;
use crate::program::*;
use std::collections::HashMap;
use std::fmt;

/// A semantic error.
#[derive(Debug, Clone)]
pub struct SemaError {
    /// Description.
    pub message: String,
    /// 1-based source line (0 when unknown).
    pub line: u32,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: u32, msg: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError {
        message: msg.into(),
        line,
    })
}

/// Resolve an [`AstProgram`] into a [`Program`].
pub fn resolve(ast: &AstProgram, source: &str) -> Result<Program, SemaError> {
    let mut consts = HashMap::new();
    for c in &ast.consts {
        if consts.insert(c.name.clone(), c.value).is_some() {
            return err(c.line, format!("duplicate const `{}`", c.name));
        }
    }

    // Pass 1: register procedures.
    let mut proc_ids: HashMap<String, ProcId> = HashMap::new();
    for (i, p) in ast.procs.iter().enumerate() {
        if proc_ids.insert(p.name.clone(), ProcId(i as u32)).is_some() {
            return err(p.line, format!("duplicate procedure `{}`", p.name));
        }
        if consts.contains_key(&p.name) {
            return err(
                p.line,
                format!("`{}` is both a const and a procedure", p.name),
            );
        }
    }
    let Some(&main) = proc_ids.get("main") else {
        return err(0, "program has no `main` procedure");
    };

    let consts_ref = consts.clone();
    let mut rs = Resolver {
        consts: &consts_ref,
        proc_ids: &proc_ids,
        ast,
        vars: Vec::new(),
        commons: Vec::new(),
        common_ids: HashMap::new(),
        next_stmt: 0,
        scope: HashMap::new(),
        cur_proc: ProcId(0),
    };

    let mut procedures = Vec::new();
    for (i, p) in ast.procs.iter().enumerate() {
        procedures.push(rs.resolve_proc(ProcId(i as u32), p)?);
    }

    compute_modified_params(&mut procedures, &rs.vars);
    let program = Program {
        name: ast.name.clone(),
        source: source.to_string(),
        procedures,
        vars: rs.vars,
        commons: rs.commons,
        consts,
        main,
        stmt_count: rs.next_stmt,
    };

    check_no_recursion(&program)?;
    Ok(program)
}

struct Resolver<'a> {
    consts: &'a HashMap<String, i64>,
    proc_ids: &'a HashMap<String, ProcId>,
    ast: &'a AstProgram,
    vars: Vec<VarInfo>,
    commons: Vec<CommonBlock>,
    common_ids: HashMap<String, CommonId>,
    next_stmt: u32,
    /// Current procedure's name → VarId scope.
    scope: HashMap<String, VarId>,
    cur_proc: ProcId,
}

impl<'a> Resolver<'a> {
    fn fresh_stmt(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    fn add_var(&mut self, info: VarInfo) -> Result<VarId, SemaError> {
        let id = VarId(self.vars.len() as u32);
        if self.scope.insert(info.name.clone(), id).is_some() {
            return err(info.line, format!("duplicate variable `{}`", info.name));
        }
        if self.consts.contains_key(&info.name) {
            return err(
                info.line,
                format!("`{}` shadows a program const", info.name),
            );
        }
        self.vars.push(info);
        Ok(id)
    }

    fn resolve_proc(&mut self, id: ProcId, p: &AstProc) -> Result<Procedure, SemaError> {
        self.scope.clear();
        self.cur_proc = id;

        // Parameters first (their names may appear in later extents).
        let mut params = Vec::new();
        for (idx, par) in p.params.iter().enumerate() {
            let vid = self.add_var(VarInfo {
                name: par.name.clone(),
                ty: conv_ty(par.ty),
                dims: Vec::new(), // patched below after all params exist
                kind: VarKind::Param { index: idx },
                proc: id,
                line: par.line,
            })?;
            params.push(vid);
        }
        // Patch parameter extents (may reference other integer params).
        for (idx, par) in p.params.iter().enumerate() {
            let mut dims = Vec::new();
            for (k, d) in par.dims.iter().enumerate() {
                match d {
                    None => {
                        if k + 1 != par.dims.len() {
                            return err(
                                par.line,
                                format!("`*` extent of `{}` must be last", par.name),
                            );
                        }
                        dims.push(Extent::Star);
                    }
                    Some(e) => dims.push(self.resolve_extent(e, par.line)?),
                }
            }
            self.vars[params[idx].0 as usize].dims = dims;
        }

        // Declarations.
        let mut locals = Vec::new();
        let mut common_vars = Vec::new();
        for d in &p.decls {
            match d {
                AstDecl::Local { ty, vars, line } => {
                    for (name, dims) in vars {
                        let mut exts = Vec::new();
                        for e in dims {
                            exts.push(self.resolve_extent(e, *line)?);
                        }
                        let vid = self.add_var(VarInfo {
                            name: name.clone(),
                            ty: conv_ty(*ty),
                            dims: exts,
                            kind: VarKind::Local,
                            proc: id,
                            line: *line,
                        })?;
                        locals.push(vid);
                    }
                }
                AstDecl::Common { block, vars, line } => {
                    let cid = match self.common_ids.get(block) {
                        Some(&c) => c,
                        None => {
                            let c = CommonId(self.commons.len() as u32);
                            self.commons.push(CommonBlock {
                                name: block.clone(),
                                size: 0,
                                views: Vec::new(),
                            });
                            self.common_ids.insert(block.clone(), c);
                            c
                        }
                    };
                    let mut offset = 0i64;
                    let mut members = Vec::new();
                    for (vty, name, dims) in vars {
                        let mut exts = Vec::new();
                        let mut size = 1i64;
                        for e in dims {
                            let ext = self.resolve_extent(e, *line)?;
                            let Extent::Const(c) = ext else {
                                return err(
                                    *line,
                                    format!("common member `{name}` must have constant extents"),
                                );
                            };
                            size = size.saturating_mul(c);
                            exts.push(ext);
                        }
                        let vid = self.add_var(VarInfo {
                            name: name.clone(),
                            ty: conv_ty(*vty),
                            dims: exts,
                            kind: VarKind::Common { block: cid, offset },
                            proc: id,
                            line: *line,
                        })?;
                        members.push(vid);
                        common_vars.push(vid);
                        offset += size;
                    }
                    let blk = &mut self.commons[cid.0 as usize];
                    blk.size = blk.size.max(offset);
                    blk.views.push(CommonView { proc: id, members });
                }
            }
        }

        let body = self.resolve_body(&p.body)?;
        let nparams = params.len();
        Ok(Procedure {
            id,
            name: p.name.clone(),
            params,
            locals,
            common_vars,
            body,
            line: p.line,
            end_line: p.end_line,
            modified_params: vec![false; nparams],
        })
    }

    fn resolve_extent(&self, e: &AstExpr, line: u32) -> Result<Extent, SemaError> {
        match e {
            AstExpr::Int(v) => Ok(Extent::Const(*v)),
            AstExpr::Ref(r) if r.subs.is_empty() => {
                if let Some(&c) = self.consts.get(&r.name) {
                    return Ok(Extent::Const(c));
                }
                let Some(&vid) = self.scope.get(&r.name) else {
                    return err(line, format!("unknown extent name `{}`", r.name));
                };
                let info = &self.vars[vid.0 as usize];
                if info.is_array() || info.ty != Type::Int {
                    return err(
                        line,
                        format!("extent `{}` must be an integer scalar", r.name),
                    );
                }
                Ok(Extent::Var(vid))
            }
            _ => err(line, "array extent must be a constant or an integer scalar"),
        }
    }

    fn lookup(&self, r: &AstRef) -> Result<VarId, SemaError> {
        match self.scope.get(&r.name) {
            Some(&v) => Ok(v),
            None => err(r.line, format!("unknown variable `{}`", r.name)),
        }
    }

    fn resolve_body(&mut self, body: &[AstStmt]) -> Result<Vec<Stmt>, SemaError> {
        body.iter().map(|s| self.resolve_stmt(s)).collect()
    }

    fn resolve_stmt(&mut self, s: &AstStmt) -> Result<Stmt, SemaError> {
        match s {
            AstStmt::Assign { lhs, rhs, line } => {
                let id = self.fresh_stmt();
                let lhs = self.resolve_ref(lhs)?;
                let rhs = self.resolve_expr(rhs, *line)?;
                Ok(Stmt::Assign {
                    id,
                    line: *line,
                    lhs,
                    rhs,
                })
            }
            AstStmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let id = self.fresh_stmt();
                let cond = self.resolve_expr(cond, *line)?;
                let then_body = self.resolve_body(then_body)?;
                let else_body = self.resolve_body(else_body)?;
                Ok(Stmt::If {
                    id,
                    line: *line,
                    cond,
                    then_body,
                    else_body,
                })
            }
            AstStmt::Do {
                label,
                var,
                lo,
                hi,
                step,
                body,
                line,
                end_line,
            } => {
                let id = self.fresh_stmt();
                let Some(&vid) = self.scope.get(var) else {
                    return err(*line, format!("unknown loop variable `{var}`"));
                };
                let info = &self.vars[vid.0 as usize];
                if info.is_array() || info.ty != Type::Int {
                    return err(
                        *line,
                        format!("loop variable `{var}` must be an int scalar"),
                    );
                }
                let lo = self.resolve_expr(lo, *line)?;
                let hi = self.resolve_expr(hi, *line)?;
                let step = step
                    .as_ref()
                    .map(|e| self.resolve_expr(e, *line))
                    .transpose()?;
                let body = self.resolve_body(body)?;
                Ok(Stmt::Do {
                    id,
                    line: *line,
                    end_line: *end_line,
                    label: *label,
                    var: vid,
                    lo,
                    hi,
                    step,
                    body,
                })
            }
            AstStmt::Call { callee, args, line } => {
                let id = self.fresh_stmt();
                let Some(&pid) = self.proc_ids.get(callee) else {
                    return err(*line, format!("unknown procedure `{callee}`"));
                };
                let formals: Vec<(Type, bool)> = self.ast.procs[pid.0 as usize]
                    .params
                    .iter()
                    .map(|p| (conv_ty(p.ty), !p.dims.is_empty()))
                    .collect();
                if formals.len() != args.len() {
                    return err(
                        *line,
                        format!(
                            "`{callee}` expects {} argument(s), got {}",
                            formals.len(),
                            args.len()
                        ),
                    );
                }
                let mut rargs = Vec::new();
                for (a, (fty, f_is_array)) in args.iter().zip(&formals) {
                    rargs.push(self.resolve_arg(a, *fty, *f_is_array, *line)?);
                }
                Ok(Stmt::Call {
                    id,
                    line: *line,
                    callee: pid,
                    args: rargs,
                })
            }
            AstStmt::Print { args, line } => {
                let id = self.fresh_stmt();
                let args = args
                    .iter()
                    .map(|a| self.resolve_expr(a, *line))
                    .collect::<Result<_, _>>()?;
                Ok(Stmt::Print {
                    id,
                    line: *line,
                    args,
                })
            }
            AstStmt::Read { lhs, line } => {
                let id = self.fresh_stmt();
                let lhs = self.resolve_ref(lhs)?;
                Ok(Stmt::Read {
                    id,
                    line: *line,
                    lhs,
                })
            }
        }
    }

    fn resolve_ref(&mut self, r: &AstRef) -> Result<Ref, SemaError> {
        if self.consts.contains_key(&r.name) {
            return err(r.line, format!("cannot assign to const `{}`", r.name));
        }
        let vid = self.lookup(r)?;
        let info = &self.vars[vid.0 as usize];
        if r.subs.is_empty() {
            if info.is_array() {
                return err(r.line, format!("array `{}` needs subscripts here", r.name));
            }
            Ok(Ref::Scalar(vid))
        } else {
            if !info.is_array() {
                return err(r.line, format!("`{}` is not an array", r.name));
            }
            if info.dims.len() != r.subs.len() {
                return err(
                    r.line,
                    format!(
                        "`{}` has rank {}, subscripted with {}",
                        r.name,
                        info.dims.len(),
                        r.subs.len()
                    ),
                );
            }
            let subs = r
                .subs
                .iter()
                .map(|e| self.resolve_expr(e, r.line))
                .collect::<Result<_, _>>()?;
            Ok(Ref::Element(vid, subs))
        }
    }

    fn resolve_arg(
        &mut self,
        a: &AstExpr,
        _formal_ty: Type,
        formal_is_array: bool,
        line: u32,
    ) -> Result<Arg, SemaError> {
        if formal_is_array {
            let AstExpr::Ref(r) = a else {
                return err(line, "array argument must be an array name or element base");
            };
            let vid = self.lookup(r)?;
            let info = &self.vars[vid.0 as usize];
            if !info.is_array() {
                return err(line, format!("`{}` is not an array", r.name));
            }
            if r.subs.is_empty() {
                Ok(Arg::ArrayWhole(vid))
            } else {
                if info.dims.len() != r.subs.len() {
                    return err(
                        line,
                        format!(
                            "`{}` has rank {}, base-subscripted with {}",
                            r.name,
                            info.dims.len(),
                            r.subs.len()
                        ),
                    );
                }
                let base = r
                    .subs
                    .iter()
                    .map(|e| self.resolve_expr(e, line))
                    .collect::<Result<_, _>>()?;
                Ok(Arg::ArrayPart { var: vid, base })
            }
        } else {
            // Scalar formal: variable ⇒ copy-in/copy-out, else by value.
            if let AstExpr::Ref(r) = a {
                if r.subs.is_empty() && !self.consts.contains_key(&r.name) {
                    let vid = self.lookup(r)?;
                    if !self.vars[vid.0 as usize].is_array() {
                        return Ok(Arg::ScalarVar(vid));
                    }
                }
            }
            Ok(Arg::Value(self.resolve_expr(a, line)?))
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn resolve_expr(&mut self, e: &AstExpr, line: u32) -> Result<Expr, SemaError> {
        Ok(match e {
            AstExpr::Int(v) => Expr::Int(*v),
            AstExpr::Real(v) => Expr::Real(*v),
            AstExpr::Ref(r) => {
                if r.subs.is_empty() {
                    if let Some(&c) = self.consts.get(&r.name) {
                        return Ok(Expr::Int(c));
                    }
                    let vid = self.lookup(r)?;
                    if self.vars[vid.0 as usize].is_array() {
                        return err(r.line, format!("array `{}` used as a scalar value", r.name));
                    }
                    Expr::Scalar(vid)
                } else {
                    let vid = self.lookup(r)?;
                    let info = &self.vars[vid.0 as usize];
                    if !info.is_array() {
                        return err(r.line, format!("`{}` is not an array", r.name));
                    }
                    if info.dims.len() != r.subs.len() {
                        return err(
                            r.line,
                            format!(
                                "`{}` has rank {}, subscripted with {}",
                                r.name,
                                info.dims.len(),
                                r.subs.len()
                            ),
                        );
                    }
                    let subs = r
                        .subs
                        .iter()
                        .map(|s| self.resolve_expr(s, r.line))
                        .collect::<Result<_, _>>()?;
                    Expr::Element(vid, subs)
                }
            }
            AstExpr::Unary { op, arg } => Expr::Unary(*op, Box::new(self.resolve_expr(arg, line)?)),
            AstExpr::Binary { op, lhs, rhs } => Expr::Binary(
                *op,
                Box::new(self.resolve_expr(lhs, line)?),
                Box::new(self.resolve_expr(rhs, line)?),
            ),
            AstExpr::Intrinsic { which, args } => Expr::Intrinsic(
                *which,
                args.iter()
                    .map(|a| self.resolve_expr(a, line))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }
}

fn conv_ty(t: AstType) -> Type {
    match t {
        AstType::Int => Type::Int,
        AstType::Real => Type::Real,
    }
}

/// Fixed point over the (acyclic) call graph: a parameter is modified when
/// the procedure assigns it, reads into it, or passes it to a modified
/// parameter position of a callee.  Array parameters are considered modified
/// when any element is stored through them (directly or via a callee).
fn compute_modified_params(procedures: &mut [Procedure], vars: &[VarInfo]) {
    fn param_index(vars: &[VarInfo], v: VarId) -> Option<usize> {
        match vars[v.0 as usize].kind {
            VarKind::Param { index } => Some(index),
            _ => None,
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        let snapshot: Vec<Vec<bool>> = procedures
            .iter()
            .map(|p| p.modified_params.clone())
            .collect();
        for proc in procedures.iter_mut() {
            let mut mods = proc.modified_params.clone();
            let cur_proc = proc.id;
            let mut mark = |v: VarId, mods: &mut Vec<bool>| {
                if vars[v.0 as usize].proc == cur_proc {
                    if let Some(k) = param_index(vars, v) {
                        mods[k] = true;
                    }
                }
            };
            fn walk(
                body: &[Stmt],
                snapshot: &[Vec<bool>],
                mark: &mut dyn FnMut(VarId, &mut Vec<bool>),
                mods: &mut Vec<bool>,
            ) {
                for s in body {
                    match s {
                        Stmt::Assign { lhs, .. } | Stmt::Read { lhs, .. } => mark(lhs.var(), mods),
                        Stmt::If {
                            then_body,
                            else_body,
                            ..
                        } => {
                            walk(then_body, snapshot, mark, mods);
                            walk(else_body, snapshot, mark, mods);
                        }
                        Stmt::Do { var, body, .. } => {
                            mark(*var, mods);
                            walk(body, snapshot, mark, mods);
                        }
                        Stmt::Call { callee, args, .. } => {
                            for (k, a) in args.iter().enumerate() {
                                let callee_mods = &snapshot[callee.0 as usize];
                                if callee_mods.get(k).copied().unwrap_or(false) {
                                    match a {
                                        Arg::ScalarVar(v)
                                        | Arg::ArrayWhole(v)
                                        | Arg::ArrayPart { var: v, .. } => mark(*v, mods),
                                        Arg::Value(_) => {}
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            let body = std::mem::take(&mut proc.body);
            walk(&body, &snapshot, &mut mark, &mut mods);
            proc.body = body;
            if mods != proc.modified_params {
                proc.modified_params = mods;
                changed = true;
            }
        }
    }
}

/// Reject recursive call chains (the paper's region-based analyses do not
/// handle recursion; §5.2: "Our algorithm currently does not handle
/// recursion").
fn check_no_recursion(program: &Program) -> Result<(), SemaError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn dfs(program: &Program, p: ProcId, marks: &mut Vec<Mark>) -> Result<(), SemaError> {
        marks[p.0 as usize] = Mark::Grey;
        let mut callees = Vec::new();
        program.walk_stmts(p, &mut |s, _| {
            if let Stmt::Call { callee, line, .. } = s {
                callees.push((*callee, *line));
            }
        });
        for (c, line) in callees {
            match marks[c.0 as usize] {
                Mark::Grey => {
                    return err(
                        line,
                        format!("recursive call chain involving `{}`", program.proc(c).name),
                    )
                }
                Mark::White => dfs(program, c, marks)?,
                Mark::Black => {}
            }
        }
        marks[p.0 as usize] = Mark::Black;
        Ok(())
    }
    let mut marks = vec![Mark::White; program.procedures.len()];
    for p in 0..program.procedures.len() {
        if marks[p] == Mark::White {
            dfs(program, ProcId(p as u32), &mut marks)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::parse_program;
    use crate::program::*;

    #[test]
    fn resolves_simple_program() {
        let p = parse_program(
            "program t\nconst n = 8\nproc main() {\n real a[n]\n int i\n do i = 1, n {\n a[i] = i\n }\n}",
        )
        .unwrap();
        assert_eq!(p.procedures.len(), 1);
        let a = p.var_by_name("main", "a").unwrap();
        assert_eq!(p.var(a).dims, vec![Extent::Const(8)]);
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = parse_program("program t\nproc main() {\n x = 1\n}").unwrap_err();
        assert!(e.to_string().contains("unknown variable"));
    }

    #[test]
    fn rejects_recursion() {
        let e = parse_program(
            "program t\nproc main() { call f() }\nproc f() { call g() }\nproc g() { call f() }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("recursive"));
    }

    #[test]
    fn requires_main() {
        let e = parse_program("program t\nproc f() { }").unwrap_err();
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn common_block_layout_and_aliasing() {
        let p = parse_program(
            "program t\nproc main() {\n common /c/ real a[10], real b[5]\n a[1] = 0\n call f()\n}\nproc f() {\n common /c/ real z[12]\n z[1] = 1\n}",
        )
        .unwrap();
        let a = p.var_by_name("main", "a").unwrap();
        let b = p.var_by_name("main", "b").unwrap();
        let z = p.var_by_name("f", "z").unwrap();
        assert!(!p.storage_overlaps(a, b));
        assert!(p.storage_overlaps(a, z)); // z[1..12] overlaps a[1..10]
        assert!(p.storage_overlaps(b, z)); // and b (offsets 10..12)
        assert_eq!(p.commons[0].size, 15);
        assert_eq!(p.aliases_of(a), vec![z]);
    }

    #[test]
    fn scalar_args_resolve_to_copy_in_out() {
        let p = parse_program(
            "program t\nproc f(int k) { k = k + 1 }\nproc main() {\n int n\n n = 1\n call f(n)\n call f(n + 1)\n}",
        )
        .unwrap();
        let main = p.proc_by_name("main").unwrap();
        match &main.body[1] {
            Stmt::Call { args, .. } => assert!(matches!(args[0], Arg::ScalarVar(_))),
            _ => panic!(),
        }
        match &main.body[2] {
            Stmt::Call { args, .. } => assert!(matches!(args[0], Arg::Value(_))),
            _ => panic!(),
        }
    }

    #[test]
    fn array_args_whole_and_part() {
        let p = parse_program(
            "program t\nproc f(real a[*]) { a[1] = 0 }\nproc main() {\n real b[10]\n int k\n k = 3\n call f(b)\n call f(b[k])\n}",
        )
        .unwrap();
        let main = p.proc_by_name("main").unwrap();
        match (&main.body[1], &main.body[2]) {
            (Stmt::Call { args: a1, .. }, Stmt::Call { args: a2, .. }) => {
                assert!(matches!(a1[0], Arg::ArrayWhole(_)));
                assert!(matches!(a2[0], Arg::ArrayPart { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_rank_mismatch() {
        let e = parse_program("program t\nproc main() {\n real a[4, 4]\n a[1] = 0\n}").unwrap_err();
        assert!(e.to_string().contains("rank"));
    }

    #[test]
    fn rejects_symbolic_common_extent() {
        let e = parse_program("program t\nproc main() {\n int n\n common /c/ real a[n]\n n = 1\n}")
            .unwrap_err();
        assert!(e.to_string().contains("constant"));
    }

    #[test]
    fn adjustable_array_params() {
        let p = parse_program(
            "program t\nproc f(real a[n, m], int n, int m) { a[1, 1] = 0 }\nproc main() {\n real b[6]\n call f(b, 2, 3)\n}",
        )
        .unwrap();
        let a = p.var_by_name("f", "a").unwrap();
        match &p.var(a).dims[0] {
            Extent::Var(v) => assert_eq!(p.var(*v).name, "n"),
            other => panic!("expected Var extent, got {other:?}"),
        }
    }

    #[test]
    fn stmt_ids_are_unique_and_dense() {
        let p = parse_program(
            "program t\nproc main() {\n int i\n do i = 1, 3 {\n if i < 2 {\n i = i\n }\n }\n print i\n}",
        )
        .unwrap();
        let mut seen = Vec::new();
        p.walk_stmts(p.main, &mut |s, _| seen.push(s.id().0));
        seen.sort_unstable();
        assert_eq!(seen, (0..p.stmt_count).collect::<Vec<_>>());
    }
}
