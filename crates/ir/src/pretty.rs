//! Pretty printer: renders the resolved IR back to MiniF source.
//!
//! Used by the transformation passes (array contraction, common-block
//! splitting) to show before/after code, and by tests to round-trip programs.

use crate::ast::{BinOp, Intrinsic, UnaryOp};
use crate::program::*;
use std::fmt::Write;

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name);
    let mut consts: Vec<_> = p.consts.iter().collect();
    consts.sort();
    for (name, value) in consts {
        let _ = writeln!(out, "const {name} = {value}");
    }
    for proc in &p.procedures {
        out.push_str(&proc_to_string(p, proc));
    }
    out
}

/// Render one procedure.
pub fn proc_to_string(p: &Program, proc: &Procedure) -> String {
    let mut out = String::new();
    let params: Vec<String> = proc
        .params
        .iter()
        .map(|&v| {
            let info = p.var(v);
            format!(
                "{} {}{}",
                ty_str(info.ty),
                info.name,
                dims_str(p, &info.dims)
            )
        })
        .collect();
    let _ = writeln!(out, "proc {}({}) {{", proc.name, params.join(", "));
    // Common declarations grouped by block, in declaration order.
    let mut by_block: Vec<(CommonId, Vec<VarId>)> = Vec::new();
    for &v in &proc.common_vars {
        if let VarKind::Common { block, .. } = p.var(v).kind {
            match by_block.iter_mut().find(|(b, _)| *b == block) {
                Some((_, vs)) => vs.push(v),
                None => by_block.push((block, vec![v])),
            }
        }
    }
    for (block, vs) in by_block {
        let members: Vec<String> = vs
            .iter()
            .map(|&v| {
                let info = p.var(v);
                format!(
                    "{} {}{}",
                    ty_str(info.ty),
                    info.name,
                    dims_str(p, &info.dims)
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "  common /{}/ {}",
            p.commons[block.0 as usize].name,
            members.join(", ")
        );
    }
    for &v in &proc.locals {
        let info = p.var(v);
        let _ = writeln!(
            out,
            "  {} {}{}",
            ty_str(info.ty),
            info.name,
            dims_str(p, &info.dims)
        );
    }
    write_body(p, &proc.body, 1, &mut out);
    out.push_str("}\n");
    out
}

fn ty_str(t: Type) -> &'static str {
    match t {
        Type::Int => "int",
        Type::Real => "real",
    }
}

fn dims_str(p: &Program, dims: &[Extent]) -> String {
    if dims.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = dims
        .iter()
        .map(|d| match d {
            Extent::Const(c) => c.to_string(),
            Extent::Var(v) => p.var(*v).name.clone(),
            Extent::Star => "*".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn write_body(p: &Program, body: &[Stmt], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for s in body {
        match s {
            Stmt::Assign { lhs, rhs, .. } => {
                let _ = writeln!(out, "{pad}{} = {}", ref_str(p, lhs), expr_to_string(p, rhs));
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let _ = writeln!(out, "{pad}if {} {{", expr_to_string(p, cond));
                write_body(p, then_body, depth + 1, out);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    write_body(p, else_body, depth + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::Do {
                label,
                var,
                lo,
                hi,
                step,
                body,
                ..
            } => {
                let lbl = label.map(|l| format!("{l} ")).unwrap_or_default();
                let stp = step
                    .as_ref()
                    .map(|e| format!(", {}", expr_to_string(p, e)))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{pad}do {lbl}{} = {}, {}{stp} {{",
                    p.var(*var).name,
                    expr_to_string(p, lo),
                    expr_to_string(p, hi)
                );
                write_body(p, body, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Call { callee, args, .. } => {
                let parts: Vec<String> = args.iter().map(|a| arg_str(p, a)).collect();
                let _ = writeln!(
                    out,
                    "{pad}call {}({})",
                    p.proc(*callee).name,
                    parts.join(", ")
                );
            }
            Stmt::Print { args, .. } => {
                let parts: Vec<String> = args.iter().map(|a| expr_to_string(p, a)).collect();
                let _ = writeln!(out, "{pad}print {}", parts.join(", "));
            }
            Stmt::Read { lhs, .. } => {
                let _ = writeln!(out, "{pad}read {}", ref_str(p, lhs));
            }
        }
    }
}

fn ref_str(p: &Program, r: &Ref) -> String {
    match r {
        Ref::Scalar(v) => p.var(*v).name.clone(),
        Ref::Element(v, subs) => {
            let parts: Vec<String> = subs.iter().map(|e| expr_to_string(p, e)).collect();
            format!("{}[{}]", p.var(*v).name, parts.join(", "))
        }
    }
}

fn arg_str(p: &Program, a: &Arg) -> String {
    match a {
        Arg::ArrayWhole(v) => p.var(*v).name.clone(),
        Arg::ArrayPart { var, base } => {
            let parts: Vec<String> = base.iter().map(|e| expr_to_string(p, e)).collect();
            format!("{}[{}]", p.var(*var).name, parts.join(", "))
        }
        Arg::ScalarVar(v) => p.var(*v).name.clone(),
        Arg::Value(e) => expr_to_string(p, e),
    }
}

/// Render one expression.
pub fn expr_to_string(p: &Program, e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Real(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Scalar(v) => p.var(*v).name.clone(),
        Expr::Element(v, subs) => {
            let parts: Vec<String> = subs.iter().map(|s| expr_to_string(p, s)).collect();
            format!("{}[{}]", p.var(*v).name, parts.join(", "))
        }
        Expr::Unary(op, a) => {
            let o = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
            };
            format!("{o}({})", expr_to_string(p, a))
        }
        Expr::Binary(op, a, b) => {
            let o = bin_str(*op);
            format!("({} {o} {})", expr_to_string(p, a), expr_to_string(p, b))
        }
        Expr::Intrinsic(which, args) => {
            let name = intrinsic_str(*which);
            let parts: Vec<String> = args.iter().map(|a| expr_to_string(p, a)).collect();
            format!("{name}({})", parts.join(", "))
        }
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn intrinsic_str(i: Intrinsic) -> &'static str {
    match i {
        Intrinsic::Min => "min",
        Intrinsic::Max => "max",
        Intrinsic::Abs => "abs",
        Intrinsic::Sqrt => "sqrt",
        Intrinsic::Mod => "mod",
        Intrinsic::Sin => "sin",
        Intrinsic::Cos => "cos",
        Intrinsic::Exp => "exp",
        Intrinsic::Log => "log",
        Intrinsic::Ifix => "ifix",
        Intrinsic::Float => "float",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn round_trips_through_parser() {
        let src = r#"program t
const n = 4
proc f(real a[*], int k) {
  int j
  do 10 j = 1, k {
    a[j] = a[j] * 2 + min(j, k)
  }
}
proc main() {
  common /c/ real x[4]
  real b[8]
  int i
  do i = 1, n, 2 {
    if i < 3 {
      call f(b[i], 2)
    } else {
      x[1] = 0.5
    }
  }
  print x[1], b[1]
}
"#;
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 =
            parse_program(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Round-trip fixed point: printing again yields identical text.
        assert_eq!(printed, program_to_string(&p2));
    }
}
