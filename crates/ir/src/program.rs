//! The resolved, checked program IR.
//!
//! Everything downstream (analyses, slicing, interpreter, parallel runtime)
//! operates on this representation.  All names are resolved to arena ids:
//! [`ProcId`] for procedures, [`VarId`] for variables (globally unique across
//! the program, so common-block views in different procedures get distinct
//! ids that are related through [`CommonBlock`] layout records), and
//! [`StmtId`] for statements.

use crate::ast::{BinOp, Intrinsic, UnaryOp};
use std::collections::HashMap;
use std::fmt;

/// Procedure id: index into [`Program::procedures`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// Variable id: index into [`Program::vars`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

/// Statement id: globally unique, depth-first pre-order within procedures.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StmtId(pub u32);

/// Common-block id: index into [`Program::commons`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CommonId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}
impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Element type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Real,
}

/// One declared array extent.
#[derive(Clone, PartialEq, Debug)]
pub enum Extent {
    /// Compile-time constant extent.
    Const(i64),
    /// Adjustable extent given by an integer scalar (parameter) in scope.
    Var(VarId),
    /// Assumed size (`[*]`), allowed only in the last dimension of formals.
    Star,
}

/// How a variable is stored / bound.
#[derive(Clone, PartialEq, Debug)]
pub enum VarKind {
    /// Procedure-local variable.
    Local,
    /// The `index`-th formal parameter of its procedure.
    Param {
        /// Zero-based position in the parameter list.
        index: usize,
    },
    /// A member of a common block, at `offset` elements from block start.
    Common {
        /// Which block.
        block: CommonId,
        /// Element offset of this member within the block.
        offset: i64,
    },
}

/// Variable metadata.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Source name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Array extents; empty for scalars.
    pub dims: Vec<Extent>,
    /// Storage binding.
    pub kind: VarKind,
    /// Owning procedure.
    pub proc: ProcId,
    /// Declaration line.
    pub line: u32,
}

impl VarInfo {
    /// True for array variables.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Total constant size in elements, if all extents are constants.
    pub fn const_size(&self) -> Option<i64> {
        let mut n = 1i64;
        for d in &self.dims {
            match d {
                Extent::Const(c) => n = n.checked_mul(*c)?,
                _ => return None,
            }
        }
        Some(n)
    }
}

/// One procedure's view of a common block.
#[derive(Clone, Debug)]
pub struct CommonView {
    /// Declaring procedure.
    pub proc: ProcId,
    /// Members in layout order (their [`VarKind::Common`] offsets are
    /// consistent with this order).
    pub members: Vec<VarId>,
}

/// A common block with all its per-procedure views.
#[derive(Clone, Debug)]
pub struct CommonBlock {
    /// Block name.
    pub name: String,
    /// Total size in elements (max over views).
    pub size: i64,
    /// All views.
    pub views: Vec<CommonView>,
}

/// A reference (assignable location / argument base).
#[derive(Clone, Debug)]
pub enum Ref {
    /// Scalar variable.
    Scalar(VarId),
    /// Array element `a[e1, .., ek]`.
    Element(VarId, Vec<Expr>),
}

impl Ref {
    /// The referenced variable.
    pub fn var(&self) -> VarId {
        match self {
            Ref::Scalar(v) | Ref::Element(v, _) => *v,
        }
    }
}

/// A resolved actual argument.
#[derive(Clone, Debug)]
pub enum Arg {
    /// Whole array passed by reference.
    ArrayWhole(VarId),
    /// Sub-array base `a[e1, .., ek]` passed by reference (Fortran-style
    /// element address; the callee sees a 1-based array starting there).
    ArrayPart {
        /// The array variable.
        var: VarId,
        /// Base element subscripts.
        base: Vec<Expr>,
    },
    /// Scalar variable passed copy-in/copy-out.
    ScalarVar(VarId),
    /// Arbitrary expression passed copy-in only.
    Value(Expr),
}

/// A resolved expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Scalar variable read.
    Scalar(VarId),
    /// Array element read.
    Element(VarId, Vec<Expr>),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Intrinsic application.
    Intrinsic(Intrinsic, Vec<Expr>),
}

impl Expr {
    /// Visit every scalar-variable read (including inside subscripts).
    pub fn visit_scalar_reads(&self, f: &mut impl FnMut(VarId)) {
        match self {
            Expr::Scalar(v) => f(*v),
            Expr::Element(_, subs) => {
                for s in subs {
                    s.visit_scalar_reads(f);
                }
            }
            Expr::Unary(_, a) => a.visit_scalar_reads(f),
            Expr::Binary(_, a, b) => {
                a.visit_scalar_reads(f);
                b.visit_scalar_reads(f);
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    a.visit_scalar_reads(f);
                }
            }
            _ => {}
        }
    }

    /// Visit every array-element read `(array, subscripts)`.
    pub fn visit_element_reads<'a>(&'a self, f: &mut impl FnMut(VarId, &'a [Expr])) {
        match self {
            Expr::Element(v, subs) => {
                f(*v, subs);
                for s in subs {
                    s.visit_element_reads(f);
                }
            }
            Expr::Unary(_, a) => a.visit_element_reads(f),
            Expr::Binary(_, a, b) => {
                a.visit_element_reads(f);
                b.visit_element_reads(f);
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    a.visit_element_reads(f);
                }
            }
            _ => {}
        }
    }
}

/// A resolved statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `lhs = rhs`.
    Assign {
        /// Unique id.
        id: StmtId,
        /// Source line.
        line: u32,
        /// Destination.
        lhs: Ref,
        /// Source expression.
        rhs: Expr,
    },
    /// `if cond { .. } else { .. }`.
    If {
        /// Unique id.
        id: StmtId,
        /// Source line.
        line: u32,
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `do [label] v = lo, hi [, step] { .. }`.
    Do {
        /// Unique id.
        id: StmtId,
        /// Line of the `do`.
        line: u32,
        /// Line of the closing brace.
        end_line: u32,
        /// Optional numeric label.
        label: Option<u32>,
        /// Induction variable.
        var: VarId,
        /// Lower bound.
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
        /// Step (`None` = 1).
        step: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Procedure call.
    Call {
        /// Unique id.
        id: StmtId,
        /// Source line.
        line: u32,
        /// Callee.
        callee: ProcId,
        /// Actual arguments.
        args: Vec<Arg>,
    },
    /// `print e1, ..` (I/O).
    Print {
        /// Unique id.
        id: StmtId,
        /// Source line.
        line: u32,
        /// Printed values.
        args: Vec<Expr>,
    },
    /// `read lhs` (I/O).
    Read {
        /// Unique id.
        id: StmtId,
        /// Source line.
        line: u32,
        /// Destination.
        lhs: Ref,
    },
}

impl Stmt {
    /// This statement's id.
    pub fn id(&self) -> StmtId {
        match self {
            Stmt::Assign { id, .. }
            | Stmt::If { id, .. }
            | Stmt::Do { id, .. }
            | Stmt::Call { id, .. }
            | Stmt::Print { id, .. }
            | Stmt::Read { id, .. } => *id,
        }
    }

    /// This statement's source line.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::Do { line, .. }
            | Stmt::Call { line, .. }
            | Stmt::Print { line, .. }
            | Stmt::Read { line, .. } => *line,
        }
    }
}

/// A resolved procedure.
#[derive(Clone, Debug)]
pub struct Procedure {
    /// Id (index into [`Program::procedures`]).
    pub id: ProcId,
    /// Name.
    pub name: String,
    /// Formal parameters in order.
    pub params: Vec<VarId>,
    /// Local variables (excluding params and common members).
    pub locals: Vec<VarId>,
    /// Common-block members visible here.
    pub common_vars: Vec<VarId>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// `proc` keyword line.
    pub line: u32,
    /// Closing-brace line.
    pub end_line: u32,
    /// Per-parameter: may the procedure (transitively) modify it?  Drives
    /// copy-out for scalar arguments (Fortran by-reference semantics) and
    /// the analyses' mod/ref mapping at call sites.
    pub modified_params: Vec<bool>,
}

impl Procedure {
    /// All variables in scope in this procedure.
    pub fn all_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.params
            .iter()
            .chain(self.locals.iter())
            .chain(self.common_vars.iter())
            .copied()
    }
}

/// A fully resolved and checked program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Original source text (for the codeview and slicing display).
    pub source: String,
    /// Procedures; index = `ProcId.0`.
    pub procedures: Vec<Procedure>,
    /// Variable arena; index = `VarId.0`.
    pub vars: Vec<VarInfo>,
    /// Common blocks; index = `CommonId.0`.
    pub commons: Vec<CommonBlock>,
    /// Program-level integer constants.
    pub consts: HashMap<String, i64>,
    /// Entry procedure (`main`).
    pub main: ProcId,
    /// Number of statement ids allocated.
    pub stmt_count: u32,
}

impl Program {
    /// Variable metadata.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// Procedure by id.
    pub fn proc(&self, p: ProcId) -> &Procedure {
        &self.procedures[p.0 as usize]
    }

    /// Procedure lookup by name.
    pub fn proc_by_name(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    /// Variable lookup by `proc/name`.
    pub fn var_by_name(&self, proc: &str, name: &str) -> Option<VarId> {
        let p = self.proc_by_name(proc)?;
        p.all_vars().find(|&v| self.var(v).name == name)
    }

    /// Do two variables possibly denote overlapping storage?
    ///
    /// In MiniF (as in Fortran 77, §3.4.2) this happens only through common
    /// blocks: two members of the same block overlap when their element
    /// ranges intersect.  Identical ids trivially overlap.
    pub fn storage_overlaps(&self, a: VarId, b: VarId) -> bool {
        if a == b {
            return true;
        }
        let (va, vb) = (self.var(a), self.var(b));
        let (
            VarKind::Common {
                block: ba,
                offset: oa,
            },
            VarKind::Common {
                block: bb,
                offset: ob,
            },
        ) = (&va.kind, &vb.kind)
        else {
            return false;
        };
        if ba != bb {
            return false;
        }
        let sa = va.const_size().unwrap_or(i64::MAX - oa);
        let sb = vb.const_size().unwrap_or(i64::MAX - ob);
        oa < &(ob + sb) && ob < &(oa + sa)
    }

    /// The distinct common-block *aliases* of `v` in other procedures: all
    /// variables overlapping `v`'s storage, excluding `v` itself.
    pub fn aliases_of(&self, v: VarId) -> Vec<VarId> {
        let VarKind::Common { block, .. } = self.var(v).kind else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for view in &self.commons[block.0 as usize].views {
            for &m in &view.members {
                if m != v && self.storage_overlaps(v, m) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Iterate over all statements of a procedure in pre-order, with nesting
    /// depth.
    pub fn walk_stmts<'a>(&'a self, proc: ProcId, f: &mut impl FnMut(&'a Stmt, usize)) {
        fn go<'a>(body: &'a [Stmt], depth: usize, f: &mut impl FnMut(&'a Stmt, usize)) {
            for s in body {
                f(s, depth);
                match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        go(then_body, depth + 1, f);
                        go(else_body, depth + 1, f);
                    }
                    Stmt::Do { body, .. } => go(body, depth + 1, f),
                    _ => {}
                }
            }
        }
        go(&self.proc(proc).body, 0, f);
    }

    /// Find a statement by id anywhere in the program.
    pub fn find_stmt(&self, id: StmtId) -> Option<(&Stmt, ProcId)> {
        for p in &self.procedures {
            let mut found = None;
            self.walk_stmts(p.id, &mut |s, _| {
                if s.id() == id {
                    found = Some(s);
                }
            });
            if let Some(s) = found {
                return Some((s, p.id));
            }
        }
        None
    }

    /// Owning procedure of a statement.
    pub fn stmt_proc(&self, id: StmtId) -> Option<ProcId> {
        self.find_stmt(id).map(|(_, p)| p)
    }

    /// Human-readable name for a loop: `proc/label` or `proc/do@line`.
    pub fn loop_name(&self, proc: ProcId, label: Option<u32>, line: u32) -> String {
        match label {
            Some(l) => format!("{}/{}", self.proc(proc).name, l),
            None => format!("{}/do@{}", self.proc(proc).name, line),
        }
    }

    /// Total number of source lines.
    pub fn num_lines(&self) -> u32 {
        self.source.lines().count() as u32
    }
}
