//! Recursive-descent parser for MiniF.

use crate::ast::*;
use crate::token::{Keyword, Punct, Token, TokenKind};
use std::fmt;

/// A syntax error.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Parse a token stream into an [`AstProgram`].
pub fn parse(tokens: &[Token]) -> Result<AstProgram, ParseError> {
    Parser { tokens, pos: 0 }.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn prev_line(&self) -> u32 {
        self.tokens[self.pos.saturating_sub(1)].line
    }

    fn bump(&mut self) -> &TokenKind {
        let t = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn eat_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.peek() == &TokenKind::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{p:?}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.peek() == &TokenKind::Kw(k) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{k:?}`, found {}", self.peek()))
        }
    }

    fn at_punct(&self, p: Punct) -> bool {
        self.peek() == &TokenKind::Punct(p)
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn program(&mut self) -> Result<AstProgram, ParseError> {
        self.eat_kw(Keyword::Program)?;
        let name = self.eat_ident()?;
        let mut consts = Vec::new();
        let mut procs = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Kw(Keyword::Const) => {
                    let line = self.line();
                    self.bump();
                    let cname = self.eat_ident()?;
                    self.eat_punct(Punct::Assign)?;
                    let neg = if self.at_punct(Punct::Minus) {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    let value = match self.peek().clone() {
                        TokenKind::Int(v) => {
                            self.bump();
                            if neg {
                                -v
                            } else {
                                v
                            }
                        }
                        other => return self.err(format!("expected integer, found {other}")),
                    };
                    consts.push(AstConst {
                        name: cname,
                        value,
                        line,
                    });
                }
                TokenKind::Kw(Keyword::Proc) => procs.push(self.proc()?),
                TokenKind::Eof => break,
                other => return self.err(format!("expected `proc` or `const`, found {other}")),
            }
        }
        Ok(AstProgram {
            name,
            consts,
            procs,
        })
    }

    fn ty(&mut self) -> Result<AstType, ParseError> {
        match self.peek() {
            TokenKind::Kw(Keyword::Real) => {
                self.bump();
                Ok(AstType::Real)
            }
            TokenKind::Kw(Keyword::Int) => {
                self.bump();
                Ok(AstType::Int)
            }
            other => self.err(format!("expected type, found {other}")),
        }
    }

    fn proc(&mut self) -> Result<AstProc, ParseError> {
        let line = self.line();
        self.eat_kw(Keyword::Proc)?;
        let name = self.eat_ident()?;
        self.eat_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            loop {
                let pline = self.line();
                let ty = self.ty()?;
                let pname = self.eat_ident()?;
                let mut dims = Vec::new();
                if self.at_punct(Punct::LBracket) {
                    self.bump();
                    loop {
                        if self.at_punct(Punct::Star) {
                            self.bump();
                            dims.push(None);
                        } else {
                            dims.push(Some(self.expr()?));
                        }
                        if self.at_punct(Punct::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.eat_punct(Punct::RBracket)?;
                }
                params.push(AstParam {
                    name: pname,
                    ty,
                    dims,
                    line: pline,
                });
                if self.at_punct(Punct::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(Punct::RParen)?;
        self.eat_punct(Punct::LBrace)?;
        let mut decls = Vec::new();
        // Declarations must precede statements (Fortran style).
        loop {
            match self.peek() {
                TokenKind::Kw(Keyword::Real) | TokenKind::Kw(Keyword::Int) => {
                    let dline = self.line();
                    let ty = self.ty()?;
                    let mut vars = Vec::new();
                    loop {
                        let vname = self.eat_ident()?;
                        let dims = self.opt_dims()?;
                        vars.push((vname, dims));
                        if self.at_punct(Punct::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    decls.push(AstDecl::Local {
                        ty,
                        vars,
                        line: dline,
                    });
                }
                TokenKind::Kw(Keyword::Common) => {
                    let dline = self.line();
                    self.bump();
                    self.eat_punct(Punct::Slash)?;
                    let block = self.eat_ident()?;
                    self.eat_punct(Punct::Slash)?;
                    let mut vars = Vec::new();
                    let mut prev_ty: Option<AstType> = None;
                    loop {
                        // Fortran-style type distribution: after a typed
                        // member, later members may omit the type
                        // (`common /c/ real a[3], b[3]`).
                        let vty = if matches!(
                            self.peek(),
                            TokenKind::Kw(Keyword::Real) | TokenKind::Kw(Keyword::Int)
                        ) {
                            self.ty()?
                        } else if let Some(t) = prev_ty {
                            t
                        } else {
                            self.ty()? // first member must be typed: error here
                        };
                        prev_ty = Some(vty);
                        let vname = self.eat_ident()?;
                        let dims = self.opt_dims()?;
                        vars.push((vty, vname, dims));
                        if self.at_punct(Punct::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    decls.push(AstDecl::Common {
                        block,
                        vars,
                        line: dline,
                    });
                }
                _ => break,
            }
        }
        let body = self.block_body()?;
        let end_line = self.prev_line();
        Ok(AstProc {
            name,
            params,
            decls,
            body,
            line,
            end_line,
        })
    }

    fn opt_dims(&mut self) -> Result<Vec<AstExpr>, ParseError> {
        let mut dims = Vec::new();
        if self.at_punct(Punct::LBracket) {
            self.bump();
            loop {
                dims.push(self.expr()?);
                if self.at_punct(Punct::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.eat_punct(Punct::RBracket)?;
        }
        Ok(dims)
    }

    /// Parse statements up to (and consuming) a closing `}`.
    fn block_body(&mut self) -> Result<Vec<AstStmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.at_punct(Punct::RBrace) {
                self.bump();
                return Ok(out);
            }
            if self.peek() == &TokenKind::Eof {
                return self.err("unexpected end of input inside block");
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<AstStmt, ParseError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Kw(Keyword::If) => {
                self.bump();
                let cond = self.expr()?;
                self.eat_punct(Punct::LBrace)?;
                let then_body = self.block_body()?;
                let else_body = if self.peek() == &TokenKind::Kw(Keyword::Else) {
                    self.bump();
                    if self.peek() == &TokenKind::Kw(Keyword::If) {
                        // else-if chains desugar to a single-statement else.
                        vec![self.stmt()?]
                    } else {
                        self.eat_punct(Punct::LBrace)?;
                        self.block_body()?
                    }
                } else {
                    Vec::new()
                };
                Ok(AstStmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            TokenKind::Kw(Keyword::Do) => {
                self.bump();
                let label = match self.peek() {
                    TokenKind::Int(v) => {
                        let v = *v;
                        self.bump();
                        Some(v as u32)
                    }
                    _ => None,
                };
                let var = self.eat_ident()?;
                self.eat_punct(Punct::Assign)?;
                let lo = self.expr()?;
                self.eat_punct(Punct::Comma)?;
                let hi = self.expr()?;
                let step = if self.at_punct(Punct::Comma) {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat_punct(Punct::LBrace)?;
                let body = self.block_body()?;
                let end_line = self.prev_line();
                Ok(AstStmt::Do {
                    label,
                    var,
                    lo,
                    hi,
                    step,
                    body,
                    line,
                    end_line,
                })
            }
            TokenKind::Kw(Keyword::Call) => {
                self.bump();
                let callee = self.eat_ident()?;
                self.eat_punct(Punct::LParen)?;
                let mut args = Vec::new();
                if !self.at_punct(Punct::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.at_punct(Punct::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat_punct(Punct::RParen)?;
                Ok(AstStmt::Call { callee, args, line })
            }
            TokenKind::Kw(Keyword::Print) => {
                self.bump();
                let mut args = vec![self.expr()?];
                while self.at_punct(Punct::Comma) {
                    self.bump();
                    args.push(self.expr()?);
                }
                Ok(AstStmt::Print { args, line })
            }
            TokenKind::Kw(Keyword::Read) => {
                self.bump();
                let lhs = self.reference()?;
                Ok(AstStmt::Read { lhs, line })
            }
            TokenKind::Ident(_) => {
                let lhs = self.reference()?;
                self.eat_punct(Punct::Assign)?;
                let rhs = self.expr()?;
                Ok(AstStmt::Assign { lhs, rhs, line })
            }
            other => self.err(format!("expected statement, found {other}")),
        }
    }

    fn reference(&mut self) -> Result<AstRef, ParseError> {
        let line = self.line();
        let name = self.eat_ident()?;
        let subs = self.opt_dims()?;
        Ok(AstRef { name, subs, line })
    }

    fn expr(&mut self) -> Result<AstExpr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.at_punct(Punct::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = AstExpr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.at_punct(Punct::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = AstExpr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Punct(Punct::Lt) => Some(BinOp::Lt),
            TokenKind::Punct(Punct::Le) => Some(BinOp::Le),
            TokenKind::Punct(Punct::Gt) => Some(BinOp::Gt),
            TokenKind::Punct(Punct::Ge) => Some(BinOp::Ge),
            TokenKind::Punct(Punct::EqEq) => Some(BinOp::Eq),
            TokenKind::Punct(Punct::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Plus) => BinOp::Add,
                TokenKind::Punct(Punct::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<AstExpr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Punct(Punct::Star) => BinOp::Mul,
                TokenKind::Punct(Punct::Slash) => BinOp::Div,
                TokenKind::Punct(Punct::Percent) => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = AstExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek() {
            TokenKind::Punct(Punct::Minus) => {
                self.bump();
                Ok(AstExpr::Unary {
                    op: UnaryOp::Neg,
                    arg: Box::new(self.unary_expr()?),
                })
            }
            TokenKind::Punct(Punct::Not) => {
                self.bump();
                Ok(AstExpr::Unary {
                    op: UnaryOp::Not,
                    arg: Box::new(self.unary_expr()?),
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<AstExpr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(AstExpr::Int(v))
            }
            TokenKind::Real(v) => {
                self.bump();
                Ok(AstExpr::Real(v))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let line = self.line();
                self.bump();
                // Intrinsic call?
                if self.at_punct(Punct::LParen) {
                    let Some(which) = Intrinsic::from_name(&name) else {
                        return self.err(format!(
                            "`{name}(` — only intrinsics may be called in expressions \
                             (procedures use `call`)"
                        ));
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.at_punct(Punct::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.eat_punct(Punct::RParen)?;
                    if args.len() != which.arity() {
                        return self.err(format!(
                            "intrinsic `{name}` expects {} argument(s), got {}",
                            which.arity(),
                            args.len()
                        ));
                    }
                    return Ok(AstExpr::Intrinsic { which, args });
                }
                let subs = self.opt_dims()?;
                Ok(AstExpr::Ref(AstRef { name, subs, line }))
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> AstProgram {
        parse(&lex(src).unwrap()).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"))
    }

    #[test]
    fn parses_minimal_program() {
        let p = parse_ok("program t\nproc main() { }");
        assert_eq!(p.name, "t");
        assert_eq!(p.procs.len(), 1);
        assert!(p.procs[0].body.is_empty());
    }

    #[test]
    fn parses_decls_and_loop() {
        let p = parse_ok(
            "program t\nproc main() {\n real a[10], b\n int i\n do 100 i = 1, 10 {\n a[i] = b + 1\n }\n}",
        );
        let main = &p.procs[0];
        assert_eq!(main.decls.len(), 2);
        match &main.body[0] {
            AstStmt::Do {
                label, var, body, ..
            } => {
                assert_eq!(*label, Some(100));
                assert_eq!(var, "i");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected do, got {other:?}"),
        }
    }

    #[test]
    fn common_type_distributes_over_members() {
        let p = parse_ok(
            "program t\nproc f() {\n common /blk/ real x[10], y[10], int n, m\n x[1] = y[2] + n + m\n}",
        );
        match &p.procs[0].decls[0] {
            AstDecl::Common { vars, .. } => {
                assert_eq!(vars.len(), 4);
                assert_eq!(vars[0].0, AstType::Real);
                assert_eq!(vars[1].0, AstType::Real);
                assert_eq!(vars[2].0, AstType::Int);
                assert_eq!(vars[3].0, AstType::Int);
            }
            other => panic!("expected common, got {other:?}"),
        }
    }

    #[test]
    fn parses_common_blocks() {
        let p = parse_ok("program t\nproc f() {\n common /blk/ real x[10], int n\n x[1] = n\n}");
        match &p.procs[0].decls[0] {
            AstDecl::Common { block, vars, .. } => {
                assert_eq!(block, "blk");
                assert_eq!(vars.len(), 2);
            }
            other => panic!("expected common, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_chain() {
        let p = parse_ok(
            "program t\nproc f() {\n int n\n if n < 1 { n = 1 } else if n < 2 { n = 2 } else { n = 3 }\n}",
        );
        match &p.procs[0].body[0] {
            AstStmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], AstStmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_call_with_subarray_arg() {
        let p = parse_ok(
            "program t\nproc f(real a[*], int n) { }\nproc g() {\n real b[20]\n int k\n k = 5\n call f(b[k], 10)\n}",
        );
        match &p.procs[1].body[1] {
            AstStmt::Call { callee, args, .. } => {
                assert_eq!(callee, "f");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_ok("program t\nproc f() {\n real x\n x = 1 + 2 * 3\n}");
        match &p.procs[0].body[0] {
            AstStmt::Assign { rhs, .. } => match rhs {
                AstExpr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, AstExpr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected add at top, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn intrinsics_check_arity() {
        let toks = lex("program t\nproc f() {\n real x\n x = min(1)\n}").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn non_intrinsic_call_in_expression_is_rejected() {
        let toks = lex("program t\nproc f() {\n real x\n x = foo(1)\n}").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn parses_step_and_read_print() {
        let p = parse_ok(
            "program t\nproc main() {\n int i, n\n read n\n do i = n, 1, -1 {\n print i, n\n }\n}",
        );
        assert!(matches!(p.procs[0].body[0], AstStmt::Read { .. }));
        match &p.procs[0].body[1] {
            AstStmt::Do { step, label, .. } => {
                assert!(step.is_some());
                assert!(label.is_none());
            }
            other => panic!("expected do, got {other:?}"),
        }
    }
}
