//! Front-end edge cases: parser/sema error paths and printer corners.

use suif_ir::{parse_program, pretty, CompileError};

fn err_of(src: &str) -> String {
    match parse_program(src) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expected failure:\n{src}"),
    }
}

#[test]
fn parser_reports_unclosed_block() {
    let e = err_of("program t\nproc main() {\n int i\n i = 1\n");
    assert!(e.contains("end of input"), "{e}");
}

#[test]
fn parser_reports_missing_do_bounds() {
    let e = err_of("program t\nproc main() {\n int i\n do i = 1 {\n }\n}");
    assert!(e.contains("Comma") || e.contains("expected"), "{e}");
}

#[test]
fn parser_rejects_statement_in_declarations_position_gracefully() {
    // A declaration after the first statement is a clean compile error (the
    // keyword cannot start a statement), never a panic.
    let e = err_of("program t\nproc main() {\n x = 1\n real x\n}");
    assert!(
        e.contains("unknown variable") || e.contains("expected statement"),
        "{e}"
    );
}

#[test]
fn sema_rejects_array_used_as_scalar() {
    let e = err_of("program t\nproc main() {\n real a[3], x\n x = a\n}");
    assert!(e.contains("scalar"), "{e}");
}

#[test]
fn sema_rejects_assign_to_const() {
    let e = err_of("program t\nconst n = 3\nproc main() {\n n = 4\n}");
    assert!(e.contains("const"), "{e}");
}

#[test]
fn sema_rejects_call_arity_mismatch() {
    let e = err_of("program t\nproc f(int a, int b) { a = b }\nproc main() { call f(1) }");
    assert!(e.contains("argument"), "{e}");
}

#[test]
fn sema_rejects_scalar_where_array_expected() {
    let e =
        err_of("program t\nproc f(real a[*]) { a[1] = 0 }\nproc main() {\n real x\n call f(x)\n}");
    assert!(e.contains("array"), "{e}");
}

#[test]
fn sema_rejects_star_extent_not_last() {
    let e = err_of("program t\nproc f(real a[*, 3]) { a[1, 1] = 0 }\nproc main() { }");
    assert!(e.contains("last"), "{e}");
}

#[test]
fn sema_rejects_duplicate_variable() {
    let e = err_of("program t\nproc main() {\n int i\n real i\n i = 1\n}");
    assert!(e.contains("duplicate"), "{e}");
}

#[test]
fn sema_rejects_const_shadowing() {
    let e = err_of("program t\nconst n = 1\nproc main() {\n int n\n n = 2\n}");
    assert!(e.contains("shadows"), "{e}");
}

#[test]
fn printer_handles_negative_constants_and_unary() {
    let src = "program t\nconst k = -5\nproc main() {\n real x\n x = -(x) + -2.5\n print x\n}\n";
    let p1 = parse_program(src).unwrap();
    let printed = pretty::program_to_string(&p1);
    let p2 = parse_program(&printed).unwrap();
    assert_eq!(printed, pretty::program_to_string(&p2));
    assert!(printed.contains("const k = -5"));
}

#[test]
fn printer_handles_mixed_type_common() {
    let src = "program t\nproc main() {\n common /c/ real a[4], int n, real b[2, 2]\n n = 1\n a[1] = b[2, 2]\n}\n";
    let p1 = parse_program(src).unwrap();
    let printed = pretty::program_to_string(&p1);
    let p2 = parse_program(&printed).unwrap();
    assert_eq!(printed, pretty::program_to_string(&p2));
}

#[test]
fn compile_error_displays_line_numbers() {
    let e = parse_program("program t\nproc main() {\n int i\n i = ?\n}").unwrap_err();
    match &e {
        CompileError::Lex(le) => assert_eq!(le.line, 4),
        other => panic!("expected lex error, got {other:?}"),
    }
    assert!(e.to_string().contains("line 4"), "{e}");
}

#[test]
fn modified_params_fixed_point_through_chain() {
    // p3 modifies its param; p2 forwards; p1 forwards — all marked.
    let p = parse_program(
        "program t\n\
         proc p3(int a) { a = a + 1 }\n\
         proc p2(int b) { call p3(b) }\n\
         proc p1(int c) { call p2(c) }\n\
         proc main() {\n int x\n x = 1\n call p1(x)\n print x\n}",
    )
    .unwrap();
    for name in ["p1", "p2", "p3"] {
        let proc = p.proc_by_name(name).unwrap();
        assert_eq!(proc.modified_params, vec![true], "{name}");
    }
    // And the interpreter honours the chain.
    // (checked in suif-dynamic; here we just assert the static fact)
}
