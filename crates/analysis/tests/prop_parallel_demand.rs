//! Property: demanding facts through the [`FactStore`] with a parallel
//! [`Executor`] is observationally identical to sequential demand — the
//! verdicts, the warnings, and the dependency edges recorded in the store
//! are bit-equal — and every pass still executes exactly once per fact
//! (parallelism may move work between the `deduped` and `reused` counters,
//! never inflate `invocations`).

use proptest::prelude::*;
use std::collections::BTreeMap;
use suif_analysis::{
    Assertion, FactStore, ParallelizeConfig, Parallelizer, PassId, ProgramAnalysis, ScheduleOptions,
};

/// A generated program: `n` leaf procedures (elementwise when the constant
/// is even, a loop-carried recurrence when odd) called in sequence by main.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

/// Loop-name → verdict Debug repr; the observational fingerprint.
fn fingerprint(pa: &ProgramAnalysis<'_>) -> BTreeMap<String, String> {
    pa.ctx
        .tree
        .loops
        .iter()
        .map(|li| (li.name.clone(), format!("{:?}", pa.verdicts[&li.stmt])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_demand_matches_sequential(
        consts in prop::collection::vec(-4i64..5, 1..6),
        bogus in prop::collection::vec(0usize..3, 0..3),
    ) {
        let src = gen_src(&consts);
        let program = suif_ir::parse_program(&src).unwrap();

        // Unresolvable assertions exercise the warning path; their order in
        // the config is scrambled relative to source position.
        let mut config = ParallelizeConfig::default();
        for b in &bogus {
            config.assertions.push(Assertion::Privatizable {
                loop_name: format!("nosuch{b}/1"),
                var: "q".into(),
            });
        }

        let seq_store = FactStore::new();
        let (seq_pa, seq_stats) = Parallelizer::analyze_in(
            &program,
            config.clone(),
            &ScheduleOptions { threads: 1 },
            None,
            &seq_store,
        );

        let par_store = FactStore::new();
        let (par_pa, par_stats) = Parallelizer::analyze_in(
            &program,
            config.clone(),
            &ScheduleOptions { threads: 4 },
            None,
            &par_store,
        );

        // Bit-identical observable output.
        prop_assert_eq!(fingerprint(&seq_pa), fingerprint(&par_pa));
        prop_assert_eq!(&seq_pa.warnings, &par_pa.warnings);
        prop_assert_eq!(seq_store.dependency_edges(), par_store.dependency_edges());

        // Exactly-once execution: parallel fan-out never runs a classify
        // pass twice for the same loop — any racing demand is either
        // deduped (blocked on the in-flight run) or served from the store.
        let loops = seq_pa.ctx.tree.loops.len() as u64;
        for store in [&seq_store, &par_store] {
            let m = store.metrics_for(PassId::Classify);
            prop_assert_eq!(m.invocations, loops);
            prop_assert_eq!(m.invocations + m.reused + m.deduped >= loops, true);
        }
        prop_assert_eq!(seq_stats.facts_computed, par_stats.facts_computed);

        // A second fan-out over the warm parallel store recomputes nothing.
        let (re_pa, re_stats) = Parallelizer::analyze_in(
            &program, config, &ScheduleOptions { threads: 4 }, None, &par_store);
        prop_assert_eq!(fingerprint(&par_pa), fingerprint(&re_pa));
        prop_assert_eq!(re_stats.facts_computed, 0);
    }
}
