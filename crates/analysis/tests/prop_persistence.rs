//! Property: the durable snapshot round trip is lossless and lazy.
//! Analyzing a generated program, exporting the fact store through
//! [`Snapshot`], and importing the decoded bytes into a fresh store must
//! (a) re-encode bit-identically, (b) validate every entry against the
//! freshly computed expected input hashes, (c) re-serve the analysis with
//! **zero** invocations of any persisted pass, and (d) after invalidating
//! `N` loop classifications, recompute **exactly `N`** of them.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use suif_analysis::{
    FactKey, FactStore, ParallelizeConfig, Parallelizer, PassId, ProgramAnalysis, ScheduleOptions,
    Scope, Snapshot,
};

/// A generated program: `n` leaf procedures (elementwise when the constant
/// is even, a loop-carried recurrence when odd) called in sequence by main.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

/// Loop-name → verdict Debug repr; the observational fingerprint.
fn fingerprint(pa: &ProgramAnalysis<'_>) -> BTreeMap<String, String> {
    pa.ctx
        .tree
        .loops
        .iter()
        .map(|li| (li.name.clone(), format!("{:?}", pa.verdicts[&li.stmt])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_round_trip_is_lossless_and_lazy(
        consts in prop::collection::vec(-4i64..5, 1..6),
        kill in prop::collection::vec(0usize..64, 1..4),
    ) {
        let src = gen_src(&consts);
        let program = suif_ir::parse_program(&src).unwrap();
        let config = ParallelizeConfig::default();
        let opts = ScheduleOptions { threads: 1 };

        // Cold analysis, plus a prefetch of every loop so the store also
        // holds carried-dependence facts (the slice answers).
        let store = FactStore::new();
        let (pa, _) = Parallelizer::analyze_in(&program, config.clone(), &opts, None, &store);
        let cold = fingerprint(&pa);
        let names: Vec<String> = pa.ctx.tree.loops.iter().map(|l| l.name.clone()).collect();
        Parallelizer::prefetch_loops(
            &program, config.clone(), &opts, None, &store, &names, &|| false);

        // Export → encode → decode: nothing dropped, and re-encoding the
        // decoded snapshot reproduces the original bytes (golden round trip).
        let exported = store.export();
        let memo = suif_poly::export_prove_empty_memo();
        let snap = Snapshot::new(exported, memo.clone());
        let persisted_keys: BTreeSet<FactKey> = snap.facts.iter().map(|f| f.key).collect();
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).unwrap();
        prop_assert_eq!(decoded.undecodable, 0);
        prop_assert_eq!(&decoded.encode(), &bytes);
        prop_assert_eq!(&decoded.prove_empty, &memo);
        prop_assert_eq!(decoded.facts.len(), persisted_keys.len());

        // Every loop's classify and carried-deps facts made it in, and so
        // did the program-scope summary and liveness facts (encodable
        // since snapshot version 3).
        for li in &pa.ctx.tree.loops {
            prop_assert!(persisted_keys.contains(&FactKey::new(PassId::Classify, Scope::Loop(li.stmt))));
            prop_assert!(persisted_keys.contains(&FactKey::new(PassId::Deps, Scope::Loop(li.stmt))));
        }
        prop_assert!(persisted_keys.contains(&FactKey::new(PassId::Summarize, Scope::Program)));
        prop_assert!(persisted_keys.contains(&FactKey::new(PassId::Liveness, Scope::Program)));

        // Warm-start validation: the program did not change, so every
        // decoded entry matches its freshly computed expected input hash.
        let expected = Parallelizer::expected_fact_hashes(&program, &config);
        for f in &decoded.facts {
            prop_assert_eq!(expected.get(&f.key).copied(), Some(f.hash));
        }

        // Import into a fresh store and re-demand everything: the verdicts
        // are bit-identical and no persisted pass runs even once.
        let warm = FactStore::new();
        let n_facts = decoded.facts.len();
        prop_assert_eq!(warm.import(decoded.facts), n_facts);
        let (warm_pa, _) =
            Parallelizer::analyze_in(&program, config.clone(), &opts, None, &warm);
        Parallelizer::prefetch_loops(
            &program, config.clone(), &opts, None, &warm, &names, &|| false);
        prop_assert_eq!(&cold, &fingerprint(&warm_pa));
        let loops = pa.ctx.tree.loops.len() as u64;
        for pass in [PassId::Classify, PassId::Deps] {
            let m = warm.metrics_for(pass);
            prop_assert_eq!(m.invocations, 0);
            prop_assert!(m.reused >= loops);
        }
        // The expensive interprocedural passes are persisted too: the warm
        // run invokes summarize and liveness exactly zero times.
        for pass in [PassId::Summarize, PassId::Liveness] {
            prop_assert_eq!(warm.metrics_for(pass).invocations, 0);
        }
        // And the warm store's facts are bit-identical on the wire: re-
        // exporting and re-encoding (against the same memo image)
        // reproduces the original snapshot bytes.
        let warm_snap = Snapshot::new(warm.export(), memo.clone());
        prop_assert_eq!(&warm_snap.encode(), &bytes);

        // Invalidate N distinct loop classifications; re-demanding runs the
        // classify pass exactly N times — no more, no less.
        let doomed: BTreeSet<_> = kill
            .iter()
            .map(|ix| pa.ctx.tree.loops[ix % pa.ctx.tree.loops.len()].stmt)
            .collect();
        for stmt in &doomed {
            warm.invalidate(FactKey::new(PassId::Classify, Scope::Loop(*stmt)));
        }
        let before = warm.metrics_for(PassId::Classify).invocations;
        let (re_pa, _) = Parallelizer::analyze_in(&program, config, &opts, None, &warm);
        let after = warm.metrics_for(PassId::Classify).invocations;
        prop_assert_eq!(after - before, doomed.len() as u64);
        prop_assert_eq!(&cold, &fingerprint(&re_pa));
    }
}
