//! Property: incremental assertion replay through a shared [`FactStore`] is
//! observationally identical to a from-scratch `Parallelizer::analyze`, and
//! each new assertion replays at most the asserted loop's classify pass —
//! never the summaries, the liveness, or any other loop's classification.

use proptest::prelude::*;
use std::collections::BTreeMap;
use suif_analysis::{
    Assertion, FactStore, ParallelizeConfig, Parallelizer, PassId, ProgramAnalysis, ScheduleOptions,
};

/// A generated program: `n` leaf procedures (elementwise when the constant
/// is even, a loop-carried recurrence when odd) called in sequence by main.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

/// Loop-name → verdict Debug repr; the observational fingerprint.
fn fingerprint(pa: &ProgramAnalysis<'_>) -> BTreeMap<String, String> {
    pa.ctx
        .tree
        .loops
        .iter()
        .map(|li| (li.name.clone(), format!("{:?}", pa.verdicts[&li.stmt])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_replay_matches_scratch(
        consts in prop::collection::vec(-4i64..5, 1..4),
        picks in prop::collection::vec((0usize..6, 0usize..2), 1..6),
    ) {
        let src = gen_src(&consts);
        let program = suif_ir::parse_program(&src).unwrap();
        let store = FactStore::new();
        let opts = ScheduleOptions::sequential();

        let (pa0, _) = Parallelizer::analyze_in(
            &program, ParallelizeConfig::default(), &opts, None, &store);
        let fresh0 = Parallelizer::analyze(&program, ParallelizeConfig::default());
        prop_assert_eq!(fingerprint(&pa0), fingerprint(&fresh0));

        let mut assertions: Vec<Assertion> = Vec::new();
        for (slot, kind) in picks {
            // Target one of the leaves, main's init loop, or a bogus name.
            let loop_name = if slot < consts.len() {
                format!("f{slot}/1")
            } else if slot == consts.len() {
                "main/9".to_string()
            } else {
                "nosuch/1".to_string()
            };
            let var = if slot < consts.len() { "q" } else { "b" };
            let a = if kind == 0 {
                Assertion::Privatizable { loop_name: loop_name.clone(), var: var.into() }
            } else {
                Assertion::Independent { loop_name: loop_name.clone(), var: var.into() }
            };
            let already = assertions.contains(&a);
            let resolvable = !loop_name.starts_with("nosuch");
            assertions.push(a);
            let config = ParallelizeConfig {
                assertions: assertions.clone(),
                ..Default::default()
            };

            let classify_before = store.metrics_for(PassId::Classify).invocations;
            let summarize_before = store.metrics_for(PassId::Summarize).invocations;
            let liveness_before = store.metrics_for(PassId::Liveness).invocations;
            let (pa, _) = Parallelizer::analyze_in(&program, config.clone(), &opts, None, &store);
            let delta = store.metrics_for(PassId::Classify).invocations - classify_before;

            // At most the asserted loop reclassifies; a duplicate or
            // unresolvable assertion replays nothing at all.
            prop_assert!(delta <= 1, "one assertion replayed {} classify passes", delta);
            if already || !resolvable {
                prop_assert_eq!(delta, 0, "no-op assertion must replay nothing");
            }
            prop_assert_eq!(
                store.metrics_for(PassId::Summarize).invocations, summarize_before,
                "summaries must never re-run on an assertion");
            prop_assert_eq!(
                store.metrics_for(PassId::Liveness).invocations, liveness_before,
                "liveness must never re-run on an assertion");

            // Verdicts identical to a from-scratch analysis of the same set.
            let fresh = Parallelizer::analyze(&program, config);
            prop_assert_eq!(fingerprint(&pa), fingerprint(&fresh));

            // Unresolved assertions warn instead of disappearing.
            if !resolvable {
                prop_assert!(
                    pa.warnings.iter().any(|w| w.contains("unresolved assertion")),
                    "missing unresolved-assertion warning: {:?}", pa.warnings);
            }
        }
    }
}

/// Deterministic acceptance check: one assertion re-runs exactly one
/// classify pass, zero summarize/liveness passes, and lands on verdicts
/// bit-identical to a full recompute.
#[test]
fn one_assertion_replays_one_classify_pass() {
    let src = "program t\nproc main() {\n real a[8], c[8]\n int i, j\n a[1] = 1\n \
               do 1 i = 2, 8 {\n  a[i] = a[i - 1] + 1\n }\n \
               do 2 j = 1, 8 {\n  c[j] = j\n }\n print a[3]\n print c[3]\n}";
    let program = suif_ir::parse_program(src).unwrap();
    let store = FactStore::new();
    let opts = ScheduleOptions::sequential();
    let (pa, _) =
        Parallelizer::analyze_in(&program, ParallelizeConfig::default(), &opts, None, &store);
    let seq = pa
        .ctx
        .tree
        .loops
        .iter()
        .find(|l| l.name == "main/1")
        .unwrap()
        .stmt;
    assert!(
        !pa.verdicts[&seq].is_parallel(),
        "recurrence starts sequential"
    );
    let base = store.metrics();

    let config = ParallelizeConfig {
        assertions: vec![Assertion::Independent {
            loop_name: "main/1".into(),
            var: "a".into(),
        }],
        ..Default::default()
    };
    let (pa, stats) = Parallelizer::analyze_in(&program, config.clone(), &opts, None, &store);
    let after = store.metrics();

    assert!(
        pa.verdicts[&seq].is_parallel(),
        "assertion overrides the dep"
    );
    assert_eq!(
        after[&PassId::Classify].invocations - base[&PassId::Classify].invocations,
        1,
        "exactly the asserted loop reclassified"
    );
    assert_eq!(
        after[&PassId::Summarize].invocations,
        base[&PassId::Summarize].invocations
    );
    assert_eq!(
        after[&PassId::Liveness].invocations,
        base[&PassId::Liveness].invocations
    );
    assert_eq!(stats.facts_computed, 1);
    assert!(stats.facts_reused >= 2, "other loop + summaries + liveness");

    // Bit-identical to the from-scratch analysis under the same config.
    let fresh = Parallelizer::analyze(&program, config);
    assert_eq!(fingerprint(&pa), fingerprint(&fresh));
}
