//! Property: a byte-budgeted [`FactStore`] is observationally identical to
//! an unbounded one.  Filling past budget evicts cold facts (the `evicted`
//! counters account for every one), but every re-demand — resident or
//! recomputed — returns the same verdicts, warnings, and dependency edges
//! the unbounded store serves.

use proptest::prelude::*;
use std::collections::BTreeMap;
use suif_analysis::{FactStore, ParallelizeConfig, Parallelizer, ProgramAnalysis, ScheduleOptions};

/// `n` leaf procedures (elementwise when even, a carried recurrence when
/// odd) called in sequence by main — enough distinct loops to overflow a
/// small byte budget.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

fn fingerprint(pa: &ProgramAnalysis<'_>) -> BTreeMap<String, String> {
    pa.ctx
        .tree
        .loops
        .iter()
        .map(|li| (li.name.clone(), format!("{:?}", pa.verdicts[&li.stmt])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bounded_store_matches_unbounded(
        consts in prop::collection::vec(-4i64..5, 2..7),
        budget_facts in 1usize..6,
    ) {
        let src = gen_src(&consts);
        let program = suif_ir::parse_program(&src).unwrap();
        let config = ParallelizeConfig::default();
        let opts = ScheduleOptions { threads: 1 };

        let unbounded = FactStore::new();
        let (base_pa, _) =
            Parallelizer::analyze_in(&program, config.clone(), &opts, None, &unbounded);
        let base = fingerprint(&base_pa);
        prop_assert_eq!(unbounded.byte_stats().evicted, 0);

        // A budget far below one analysis worth of facts: the fill itself
        // evicts, and later re-demands recompute what the sweep dropped.
        let bounded = FactStore::new();
        bounded.set_budget(Some(64 * budget_facts));
        let (pa, _) = Parallelizer::analyze_in(&program, config.clone(), &opts, None, &bounded);
        prop_assert_eq!(&base, &fingerprint(&pa));
        prop_assert_eq!(&base_pa.warnings, &pa.warnings);

        let bs = bounded.byte_stats();
        prop_assert!(bs.evicted > 0, "budget this small must evict: {bs:?}");
        prop_assert!(
            bs.resident_bytes <= 64 * budget_facts as u64 + 8192,
            "resident near budget (one oversize fact may straddle it): {bs:?}"
        );

        // Re-analyze over the evicted store: bit-identical again, and the
        // eviction counters only ever grow (monotone accounting).
        let (re_pa, _) = Parallelizer::analyze_in(&program, config, &opts, None, &bounded);
        prop_assert_eq!(&base, &fingerprint(&re_pa));
        let bs2 = bounded.byte_stats();
        prop_assert!(bs2.evicted >= bs.evicted);
        prop_assert_eq!(
            bs2.evicted_bytes >= bs.evicted_bytes, true,
            "evicted byte counter is monotone"
        );
    }
}
