//! Property: a byte-budgeted [`FactStore`] is observationally identical to
//! an unbounded one.  Filling past budget evicts cold facts (the `evicted`
//! counters account for every one), but every re-demand — resident or
//! recomputed — returns the same verdicts, warnings, and dependency edges
//! the unbounded store serves.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use suif_analysis::{
    FactKey, FactStore, ParallelizeConfig, Parallelizer, PassId, ProgramAnalysis, ScheduleOptions,
    Scope, SharedFactTier,
};

/// `n` leaf procedures (elementwise when even, a carried recurrence when
/// odd) called in sequence by main — enough distinct loops to overflow a
/// small byte budget.
fn gen_src(consts: &[i64]) -> String {
    let mut s = String::from("program gen\n");
    for (k, c) in consts.iter().enumerate() {
        if c % 2 == 0 {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 1, n {{\n  q[i] = q[i] + {c}\n }}\n}}\n"
            ));
        } else {
            s.push_str(&format!(
                "proc f{k}(real q[*], int n) {{\n int i\n do 1 i = 2, n {{\n  q[i] = q[i - 1] + {c}\n }}\n}}\n"
            ));
        }
    }
    s.push_str("proc main() {\n real b[16]\n int i\n do 9 i = 1, 16 {\n  b[i] = i\n }\n");
    for k in 0..consts.len() {
        s.push_str(&format!(" call f{k}(b, 16)\n"));
    }
    s.push_str(" print b[3]\n}\n");
    s
}

fn fingerprint(pa: &ProgramAnalysis<'_>) -> BTreeMap<String, String> {
    pa.ctx
        .tree
        .loops
        .iter()
        .map(|li| (li.name.clone(), format!("{:?}", pa.verdicts[&li.stmt])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bounded_store_matches_unbounded(
        consts in prop::collection::vec(-4i64..5, 2..7),
        budget_facts in 1usize..6,
    ) {
        let src = gen_src(&consts);
        let program = suif_ir::parse_program(&src).unwrap();
        let config = ParallelizeConfig::default();
        let opts = ScheduleOptions { threads: 1 };

        let unbounded = FactStore::new();
        let (base_pa, _) =
            Parallelizer::analyze_in(&program, config.clone(), &opts, None, &unbounded);
        let base = fingerprint(&base_pa);
        prop_assert_eq!(unbounded.byte_stats().evicted, 0);

        // A budget far below one analysis worth of facts: the fill itself
        // evicts, and later re-demands recompute what the sweep dropped.
        let bounded = FactStore::new();
        bounded.set_budget(Some(64 * budget_facts));
        let (pa, _) = Parallelizer::analyze_in(&program, config.clone(), &opts, None, &bounded);
        prop_assert_eq!(&base, &fingerprint(&pa));
        prop_assert_eq!(&base_pa.warnings, &pa.warnings);

        let bs = bounded.byte_stats();
        prop_assert!(bs.evicted > 0, "budget this small must evict: {bs:?}");
        prop_assert!(
            bs.resident_bytes <= 64 * budget_facts as u64 + 8192,
            "resident near budget (one oversize fact may straddle it): {bs:?}"
        );

        // Re-analyze over the evicted store: bit-identical again, and the
        // eviction counters only ever grow (monotone accounting).
        let (re_pa, _) = Parallelizer::analyze_in(&program, config, &opts, None, &bounded);
        prop_assert_eq!(&base, &fingerprint(&re_pa));
        let bs2 = bounded.byte_stats();
        prop_assert!(bs2.evicted >= bs.evicted);
        prop_assert_eq!(
            bs2.evicted_bytes >= bs.evicted_bytes, true,
            "evicted byte counter is monotone"
        );
    }

    /// Tier fairness invariants under arbitrary multi-session publish
    /// sequences: the byte budget holds after every single publish, the
    /// per-session ledger always reconciles with resident bytes, and the
    /// second-chance fairness pass never fires with fewer than two
    /// bytes-holding sessions.
    #[test]
    fn tier_budget_and_session_ledger_hold_under_any_publish_order(
        publishes in prop::collection::vec((1u64..5, 16usize..200), 1..80),
        budget_units in 2usize..8,
    ) {
        let budget = 256 * budget_units;
        let tier = SharedFactTier::with_budget(Some(budget));
        let mut owners_seen = std::collections::BTreeSet::new();
        for (i, (owner, bytes)) in publishes.iter().enumerate() {
            owners_seen.insert(*owner);
            tier.publish_owned(
                *owner,
                FactKey::new(PassId::Classify, Scope::Loop(suif_ir::StmtId(i as u32))),
                i as u128, // distinct hashes: every publish is a new fact
                *bytes,
                vec![],
                Arc::new(i as i64),
            );

            // Budget invariant after EVERY publish, not just at the end.
            let s = tier.stats();
            prop_assert!(
                s.resident_bytes <= budget as u64,
                "budget breached after publish {i}: {} > {budget}",
                s.resident_bytes
            );
            // The per-session ledger reconciles with the resident total.
            let ledger: u64 = tier.session_bytes().iter().map(|(_, b)| b).sum();
            prop_assert_eq!(ledger, s.resident_bytes, "owner ledger drifted at publish {i}");
        }

        let s = tier.stats();
        if owners_seen.len() < 2 {
            prop_assert_eq!(
                s.fairness_spared, 0,
                "fairness must not protect a sole tenant"
            );
        }
        // Accounting closes: everything published was either evicted or is
        // still resident.
        let total: u64 = publishes.iter().map(|(_, b)| *b as u64).sum();
        prop_assert_eq!(s.resident_bytes + s.evicted_bytes, total);
    }
}
