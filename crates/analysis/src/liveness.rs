//! Interprocedural array liveness analysis (Ch. 5).
//!
//! Two-phase, region-based, context- and flow-sensitive (§5.2.2):
//!
//! * the **bottom-up phase** (Fig. 5-2) reuses the data-flow node summaries
//!   and, walking each region's nodes in reverse order, records `S_{r,n}` —
//!   the access summary from the end of each loop/call node `n` to the end
//!   of its enclosing region `r`;
//! * the **top-down phase** (Fig. 5-3) propagates `S_{r0,r}` — the summary
//!   from the end of region `r` to the end of the program — down the region
//!   tree and across call edges, meeting over call sites.
//!
//! An array is *dead at exit* of a loop when the section it writes does not
//! intersect the upwards-exposed reads of the rest of the execution.
//!
//! The cheaper variants of §5.2.3 are provided for the Fig. 5-6/5-7/5-8
//! ablations: the **1-bit** algorithm keeps one exposed-after bit per array
//! in the top-down phase (no kill), and the **flow-insensitive** algorithm
//! additionally ignores control flow inside regions.

use crate::context::{AnalysisCtx, ArrayKey};
use crate::summarize::ArrayDataFlow;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};
use suif_ir::{Arg, ProcId, RegionId, Stmt, StmtId, VarKind};
use suif_poly::{AccessSummary, ArrayId, SectionSummary};

/// Which liveness algorithm to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LivenessMode {
    /// §5.2.3.2: flow-insensitive top-down, 1 bit per array.
    FlowInsensitive,
    /// §5.2.3.1: flow-sensitive top-down, 1 bit per array (no kill).
    OneBit,
    /// §5.2.2: full section-precise, flow-sensitive algorithm.
    Full,
}

/// Result of a liveness run.
#[derive(Debug)]
pub struct LivenessResult {
    /// The algorithm used.
    pub mode: LivenessMode,
    /// Per loop: storage objects written in the loop.
    pub written: HashMap<StmtId, BTreeSet<ArrayId>>,
    /// Per loop: written objects that may be live after the loop exits.
    pub live_after_write: HashMap<StmtId, BTreeSet<ArrayId>>,
    /// Full mode only: the after-region summaries (used by the common-block
    /// splitting analysis of §5.5).
    pub after_full: Option<HashMap<RegionId, AccessSummary>>,
    /// Wall-clock time of the top-down phase.
    pub elapsed: Duration,
}

impl LivenessResult {
    /// Is the object written by the loop but dead at its exit?
    pub fn is_dead_after(&self, loop_stmt: StmtId, id: ArrayId) -> bool {
        self.written
            .get(&loop_stmt)
            .map(|w| w.contains(&id))
            .unwrap_or(false)
            && !self
                .live_after_write
                .get(&loop_stmt)
                .map(|l| l.contains(&id))
                .unwrap_or(true)
    }
}

/// Bottom-up saved state shared by all variants.
pub struct SavedAfters {
    /// `S_{r,n}` for every loop/call node `n` directly in region `r`.
    pub after: HashMap<(RegionId, StmtId), AccessSummary>,
    /// Innermost region containing each statement.
    pub stmt_region: HashMap<StmtId, RegionId>,
}

/// The Fig. 5-2 bottom-up save pass (reusing the forward node summaries).
pub fn bottom_up(ctx: &AnalysisCtx<'_>, df: &ArrayDataFlow) -> SavedAfters {
    let mut out = SavedAfters {
        after: HashMap::new(),
        stmt_region: HashMap::new(),
    };
    for proc in &ctx.program.procedures {
        let region = ctx.tree.proc_regions[proc.id.0 as usize];
        walk_region(ctx, df, &proc.body, region, &mut out);
    }
    out
}

fn walk_region(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    body: &[Stmt],
    region: RegionId,
    out: &mut SavedAfters,
) {
    // First index statements and recurse into inner loop-body regions.
    fn index_stmts(
        ctx: &AnalysisCtx<'_>,
        df: &ArrayDataFlow,
        body: &[Stmt],
        region: RegionId,
        out: &mut SavedAfters,
    ) {
        for s in body {
            out.stmt_region.insert(s.id(), region);
            match s {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    index_stmts(ctx, df, then_body, region, out);
                    index_stmts(ctx, df, else_body, region, out);
                }
                Stmt::Do { id, body, .. } => {
                    let li = ctx.tree.loop_of(*id).expect("loop in tree");
                    walk_region(ctx, df, body, li.body_region, out);
                }
                _ => {}
            }
        }
    }
    index_stmts(ctx, df, body, region, out);

    // Backward pass over this region's own node list.
    backward(ctx, df, body, region, AccessSummary::empty(), out);
}

/// Walk `body` in reverse with `after` = summary from the end of the body to
/// the end of the region; returns the summary from the start of the body.
#[allow(clippy::only_used_in_recursion)]
fn backward(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    body: &[Stmt],
    region: RegionId,
    mut after: AccessSummary,
    out: &mut SavedAfters,
) -> AccessSummary {
    for s in body.iter().rev() {
        match s {
            Stmt::Do { id, .. } | Stmt::Call { id, .. } => {
                out.after.insert((region, *id), after.clone());
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                // Branch nodes see the same after; recurse for inner saves.
                let a_then = backward(ctx, df, then_body, region, after.clone(), out);
                let a_else = backward(ctx, df, else_body, region, after.clone(), out);
                let _ = (a_then, a_else);
            }
            _ => {}
        }
        let node = df
            .stmt_summary
            .get(&s.id())
            .map(|n| n.acc.clone())
            .unwrap_or_default();
        after = after.transfer_before(&node);
    }
    after
}

fn exposed_bits(acc: &AccessSummary) -> HashSet<ArrayId> {
    acc.iter()
        .filter(|(_, s)| !s.exposed.is_empty())
        .map(|(id, _)| id)
        .collect()
}

/// Flow-insensitive sibling exposure (§5.2.3.2): the union of the *own*
/// exposed bits of every node directly in the region — no kills, no order.
fn region_node_exposed_bits(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    region: RegionId,
) -> HashSet<ArrayId> {
    fn collect(df: &ArrayDataFlow, body: &[Stmt], out: &mut HashSet<ArrayId>) {
        for s in body {
            if let Some(n) = df.stmt_summary.get(&s.id()) {
                out.extend(exposed_bits(&n.acc));
            }
            if let Stmt::If {
                then_body,
                else_body,
                ..
            } = s
            {
                collect(df, then_body, out);
                collect(df, else_body, out);
            }
            // Do bodies are separate regions; the Do node summary above
            // already contributes the loop's closed exposure.
        }
    }
    let mut out = HashSet::new();
    let program = ctx.program;
    match ctx.tree.region(region).kind {
        suif_ir::RegionKind::Proc(p) => collect(df, &program.proc(p).body, &mut out),
        suif_ir::RegionKind::Loop { stmt, .. } | suif_ir::RegionKind::LoopBody { stmt, .. } => {
            if let Some((Stmt::Do { body, .. }, _)) = program.find_stmt(stmt) {
                collect(df, body, &mut out);
            }
        }
    }
    out
}

/// Map a caller-side after-summary into callee terms (coarse but sound:
/// common objects pass through with all symbols projected; objects passed as
/// array arguments expose the whole formal; scalar copy-out actuals expose
/// the formal cell; everything else drops).
fn map_after_to_callee(
    ctx: &AnalysisCtx<'_>,
    caller_after: &AccessSummary,
    callee: ProcId,
    args: &[Arg],
) -> AccessSummary {
    let mut out = AccessSummary::empty();
    let cproc = ctx.program.proc(callee);
    for (id, s) in caller_after.iter() {
        match ctx.key_of_id(id) {
            ArrayKey::Common(_) => {
                let proj = |sec: &suif_poly::Section| sec.project_symbols(|_| true);
                let mapped = SectionSummary {
                    read: proj(&s.read),
                    exposed: proj(&s.exposed),
                    write: proj(&s.write),
                    must_write: suif_poly::Section::empty(id, 1),
                };
                merge_into(&mut out, mapped);
            }
            ArrayKey::Var(_) => { /* caller storage: only reachable via args */ }
        }
    }
    for (k, &formal) in cproc.params.iter().enumerate() {
        let actual_var = match &args[k] {
            Arg::ArrayWhole(v) | Arg::ArrayPart { var: v, .. } | Arg::ScalarVar(v) => *v,
            Arg::Value(_) => continue,
        };
        let actual_id = ctx.array_of(actual_var);
        let Some(s) = caller_after.get(actual_id) else {
            continue;
        };
        let fid = ctx.array_of(formal);
        let whole = ctx.whole_section(formal);
        let empty = suif_poly::Section::empty(fid, 1);
        let pick = |nonempty: bool| {
            if nonempty {
                whole.clone()
            } else {
                empty.clone()
            }
        };
        let mapped = SectionSummary {
            read: pick(!s.read.is_empty()),
            exposed: pick(!s.exposed.is_empty()),
            write: pick(!s.write.is_empty()),
            must_write: empty.clone(),
        };
        merge_into(&mut out, mapped);
    }
    out
}

fn merge_into(acc: &mut AccessSummary, s: SectionSummary) {
    let id = s.read.array;
    let merged = match acc.get(id) {
        Some(prev) => SectionSummary {
            read: prev.read.union(&s.read),
            exposed: prev.exposed.union(&s.exposed),
            write: prev.write.union(&s.write),
            must_write: prev.must_write.intersect(&s.must_write),
        },
        None => s,
    };
    acc.insert(merged);
}

/// Run the liveness analysis in the requested mode.
pub fn analyze_liveness(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    saved: &SavedAfters,
    mode: LivenessMode,
) -> LivenessResult {
    let start = Instant::now();
    // Written objects per loop (common to all modes).
    let mut written: HashMap<StmtId, BTreeSet<ArrayId>> = HashMap::new();
    for l in &ctx.tree.loops {
        let set: BTreeSet<ArrayId> = df
            .stmt_summary
            .get(&l.stmt)
            .map(|n| {
                n.acc
                    .iter()
                    .filter(|(_, s)| !s.write.is_empty())
                    .map(|(id, _)| id)
                    .collect()
            })
            .unwrap_or_default();
        written.insert(l.stmt, set);
    }

    let result = match mode {
        LivenessMode::Full => top_down_full(ctx, df, saved, &written),
        LivenessMode::OneBit => top_down_bits(ctx, df, saved, &written, true),
        LivenessMode::FlowInsensitive => top_down_bits(ctx, df, saved, &written, false),
    };
    let (live_after_write, after_full) = result;
    LivenessResult {
        mode,
        written,
        live_after_write,
        after_full,
        elapsed: start.elapsed(),
    }
}

type LiveOut = (
    HashMap<StmtId, BTreeSet<ArrayId>>,
    Option<HashMap<RegionId, AccessSummary>>,
);

fn top_down_full(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    saved: &SavedAfters,
    written: &HashMap<StmtId, BTreeSet<ArrayId>>,
) -> LiveOut {
    let mut after: HashMap<RegionId, AccessSummary> = HashMap::new();
    // Meet accumulators for procedure regions.
    let mut proc_after: HashMap<ProcId, Option<AccessSummary>> = HashMap::new();
    proc_after.insert(ctx.program.main, Some(AccessSummary::empty()));

    for &p in ctx.cg.bottom_up().iter().rev() {
        let r_p = ctx.tree.proc_regions[p.0 as usize];
        let entry = proc_after
            .get(&p)
            .cloned()
            .flatten()
            .unwrap_or_else(AccessSummary::empty);
        after.insert(r_p, entry);

        // Loop regions of p, outermost first (pre-order in tree.loops).
        for l in ctx.tree.loops_of_proc(p) {
            let parent_region = saved.stmt_region[&l.stmt];
            let s_rn = saved
                .after
                .get(&(parent_region, l.stmt))
                .cloned()
                .unwrap_or_default();
            let after_parent = after.get(&parent_region).cloned().unwrap_or_default();
            let after_loop = after_parent.transfer_before(&s_rn);
            after.insert(l.region, after_loop.clone());
            // Loop body: followed by possible further iterations, then the
            // code after the loop (Fig. 5-3 loop-body rule).  The remaining
            // iterations' exposure must be the *plain* closure — the
            // enhanced exposure hides reads fed by earlier iterations.
            let closed = df
                .loop_closed_plain
                .get(&l.stmt)
                .cloned()
                .unwrap_or_default();
            let mut body_after = AccessSummary::empty();
            let ids: BTreeSet<ArrayId> = after_loop.arrays().chain(closed.arrays()).collect();
            for id in ids {
                let e1 = after_loop.get(id);
                let e2 = closed.get(id);
                let empty = SectionSummary::empty(id, 1);
                let a = e1.unwrap_or(&empty);
                let b = e2.unwrap_or(&empty);
                body_after.insert(SectionSummary {
                    read: a.read.union(&b.read),
                    exposed: a.exposed.union(&b.exposed),
                    write: a.write.union(&b.write),
                    must_write: a.must_write.clone(),
                });
            }
            after.insert(l.body_region, body_after);
        }

        // Propagate to callees.
        let mut sites: Vec<_> = ctx
            .cg
            .sites
            .iter()
            .filter(|s| s.caller == p)
            .copied()
            .collect();
        sites.sort_by_key(|s| s.stmt);
        for site in sites {
            let r = saved.stmt_region[&site.stmt];
            let s_rn = saved
                .after
                .get(&(r, site.stmt))
                .cloned()
                .unwrap_or_default();
            let a_r = after.get(&r).cloned().unwrap_or_default();
            let after_call = a_r.transfer_before(&s_rn);
            // Locate the argument list.
            let Some((Stmt::Call { args, .. }, _)) = ctx.program.find_stmt(site.stmt) else {
                continue;
            };
            let mapped = map_after_to_callee(ctx, &after_call, site.callee, args);
            let slot = proc_after.entry(site.callee).or_insert(None);
            *slot = Some(match slot.take() {
                Some(prev) => prev.meet(&mapped),
                None => mapped,
            });
        }
    }

    // live-after-write per loop.
    let mut live: HashMap<StmtId, BTreeSet<ArrayId>> = HashMap::new();
    for l in &ctx.tree.loops {
        let closed = df
            .stmt_summary
            .get(&l.stmt)
            .map(|n| n.acc.clone())
            .unwrap_or_default();
        let after_l = after.get(&l.region).cloned().unwrap_or_default();
        let mut set = BTreeSet::new();
        for id in written.get(&l.stmt).cloned().unwrap_or_default() {
            let Some(w) = closed.get(id) else { continue };
            let wm = w.write.union(&w.must_write);
            let exposed_after = after_l
                .get(id)
                .map(|s| s.exposed.clone())
                .unwrap_or_else(|| suif_poly::Section::empty(id, 1));
            if !exposed_after.intersect(&wm).set.prove_empty() {
                set.insert(id);
            }
        }
        live.insert(l.stmt, set);
    }
    (live, Some(after))
}

fn top_down_bits(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    saved: &SavedAfters,
    written: &HashMap<StmtId, BTreeSet<ArrayId>>,
    flow_sensitive: bool,
) -> LiveOut {
    let mut after: HashMap<RegionId, HashSet<ArrayId>> = HashMap::new();
    let mut proc_after: HashMap<ProcId, HashSet<ArrayId>> = HashMap::new();
    proc_after.insert(ctx.program.main, HashSet::new());

    for &p in ctx.cg.bottom_up().iter().rev() {
        let r_p = ctx.tree.proc_regions[p.0 as usize];
        after.insert(r_p, proc_after.get(&p).cloned().unwrap_or_default());

        for l in ctx.tree.loops_of_proc(p) {
            let parent_region = saved.stmt_region[&l.stmt];
            let parent_bits = after.get(&parent_region).cloned().unwrap_or_default();
            let bits = if flow_sensitive {
                let s_rn = saved
                    .after
                    .get(&(parent_region, l.stmt))
                    .map(exposed_bits)
                    .unwrap_or_default();
                &parent_bits | &s_rn
            } else {
                // Flow-insensitive: exposed in any sibling node of the
                // parent region (no kills, no ordering).
                let sib = region_node_exposed_bits(ctx, df, parent_region);
                &parent_bits | &sib
            };
            after.insert(l.region, bits.clone());
            let own = df
                .loop_closed_plain
                .get(&l.stmt)
                .map(exposed_bits)
                .unwrap_or_default();
            after.insert(l.body_region, &bits | &own);
        }

        let mut sites: Vec<_> = ctx
            .cg
            .sites
            .iter()
            .filter(|s| s.caller == p)
            .copied()
            .collect();
        sites.sort_by_key(|s| s.stmt);
        for site in sites {
            let r = saved.stmt_region[&site.stmt];
            let r_bits = after.get(&r).cloned().unwrap_or_default();
            let bits = if flow_sensitive {
                let s_rn = saved
                    .after
                    .get(&(r, site.stmt))
                    .map(exposed_bits)
                    .unwrap_or_default();
                &r_bits | &s_rn
            } else {
                let sib = region_node_exposed_bits(ctx, df, r);
                &r_bits | &sib
            };
            let Some((Stmt::Call { args, .. }, _)) = ctx.program.find_stmt(site.stmt) else {
                continue;
            };
            // Map bits to callee ids.
            let mut mapped: HashSet<ArrayId> = HashSet::new();
            for &id in &bits {
                if matches!(ctx.key_of_id(id), ArrayKey::Common(_)) {
                    mapped.insert(id);
                }
            }
            let cproc = ctx.program.proc(site.callee);
            for (k, &formal) in cproc.params.iter().enumerate() {
                let actual = match &args[k] {
                    Arg::ArrayWhole(v) | Arg::ArrayPart { var: v, .. } | Arg::ScalarVar(v) => *v,
                    Arg::Value(_) => continue,
                };
                if bits.contains(&ctx.array_of(actual)) {
                    mapped.insert(ctx.array_of(formal));
                }
            }
            let slot = proc_after.entry(site.callee).or_default();
            slot.extend(mapped);
        }
    }

    let mut live: HashMap<StmtId, BTreeSet<ArrayId>> = HashMap::new();
    for l in &ctx.tree.loops {
        let bits = after.get(&l.region).cloned().unwrap_or_default();
        let set: BTreeSet<ArrayId> = written
            .get(&l.stmt)
            .cloned()
            .unwrap_or_default()
            .into_iter()
            .filter(|id| bits.contains(id))
            .collect();
        live.insert(l.stmt, set);
    }
    (live, None)
}

/// Convenience wrapper: run the bottom-up save pass and one mode.
pub fn run(ctx: &AnalysisCtx<'_>, df: &ArrayDataFlow, mode: LivenessMode) -> LivenessResult {
    let saved = bottom_up(ctx, df);
    analyze_liveness(ctx, df, &saved, mode)
}

/// Does a variable's own element range fall in the written-and-live set of a
/// loop?  Helper for per-variable reporting of common members.
pub fn var_live_after(
    ctx: &AnalysisCtx<'_>,
    res: &LivenessResult,
    df: &ArrayDataFlow,
    loop_stmt: StmtId,
    var: suif_ir::VarId,
) -> bool {
    let id = ctx.array_of(var);
    match (&res.after_full, res.mode) {
        (Some(after), LivenessMode::Full) => {
            let Some(li) = ctx.tree.loop_of(loop_stmt) else {
                return true;
            };
            let Some(a) = after.get(&li.region) else {
                return false;
            };
            let Some(s) = a.get(id) else { return false };
            let range = ctx.whole_section(var);
            let closed = df
                .stmt_summary
                .get(&loop_stmt)
                .and_then(|n| n.acc.get(id).cloned());
            let Some(w) = closed else { return false };
            let live_sec = s.exposed.intersect(&w.write.union(&w.must_write));
            !live_sec.intersect(&range).set.prove_empty()
        }
        _ => res
            .live_after_write
            .get(&loop_stmt)
            .map(|set| set.contains(&id))
            .unwrap_or(false),
    }
}

/// Is a variable's storage written by the loop at all (per-variable view of
/// a common block)?
pub fn var_written(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    loop_stmt: StmtId,
    var: suif_ir::VarId,
) -> bool {
    let id = ctx.array_of(var);
    let Some(n) = df.stmt_summary.get(&loop_stmt) else {
        return false;
    };
    let Some(s) = n.acc.get(id) else { return false };
    match ctx.program.var(var).kind {
        VarKind::Common { .. } => {
            let range = ctx.whole_section(var);
            !s.write.intersect(&range).set.prove_empty()
        }
        _ => !s.write.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summarize::ArrayDataFlow;
    use suif_ir::parse_program;

    #[allow(clippy::type_complexity)]
    fn run_modes(src: &str) -> (suif_ir::Program, Vec<(LivenessMode, HashMap<String, bool>)>) {
        let p = parse_program(src).unwrap();
        let mut results = Vec::new();
        {
            let ctx = AnalysisCtx::new(&p);
            let df = ArrayDataFlow::analyze(&ctx);
            let saved = bottom_up(&ctx, &df);
            for mode in [
                LivenessMode::FlowInsensitive,
                LivenessMode::OneBit,
                LivenessMode::Full,
            ] {
                let res = analyze_liveness(&ctx, &df, &saved, mode);
                let mut dead = HashMap::new();
                for l in &ctx.tree.loops {
                    for id in res.written.get(&l.stmt).cloned().unwrap_or_default() {
                        let name = format!("{}:{}", l.name, ctx.array_name(id));
                        dead.insert(name, !res.live_after_write[&l.stmt].contains(&id));
                    }
                }
                results.push((mode, dead));
            }
        }
        (p, results)
    }

    #[test]
    fn dead_temp_is_found_dead() {
        // tmp written in loop 1, never read afterwards.
        let (_, results) = run_modes(
            r#"program t
proc main() {
  real tmp[10], out[10]
  real acc
  int i
  do 1 i = 1, 10 {
    tmp[i] = i
    out[i] = tmp[i] * 2
  }
  acc = 0
  do 2 i = 1, 10 {
    acc = acc + out[i]
  }
  print acc
}
"#,
        );
        for (mode, dead) in &results {
            assert_eq!(dead.get("main/1:tmp"), Some(&true), "mode {mode:?}");
            assert_eq!(dead.get("main/1:out"), Some(&false), "mode {mode:?}");
        }
    }

    #[test]
    fn full_mode_distinguishes_sections() {
        // Loop 1 writes a[1..10]; afterwards only a[11..20] is read — dead
        // for the full algorithm, live for the bit algorithms (one bit per
        // array cannot separate the halves).
        let (_, results) = run_modes(
            r#"program t
proc main() {
  real a[20]
  real acc
  int i
  do 1 i = 1, 10 {
    a[i] = i
  }
  acc = 0
  do 2 i = 11, 20 {
    acc = acc + a[i]
  }
  print acc
}
"#,
        );
        for (mode, dead) in &results {
            match mode {
                LivenessMode::Full => {
                    assert_eq!(dead.get("main/1:a"), Some(&true), "full mode")
                }
                _ => assert_eq!(dead.get("main/1:a"), Some(&false), "mode {mode:?}"),
            }
        }
    }

    #[test]
    fn one_bit_beats_flow_insensitive_on_kills() {
        // a is rewritten by loop 2 before loop 3 reads it.  Flow-sensitive
        // orderings see the loop-2 node summary after loop 1 … but the 1-bit
        // transfer has no kill either; the separation here comes from flow
        // order: FI sees "a exposed somewhere in the region" (loop 3 reads
        // feed exposed bits of the region summary? no — the region's E was
        // killed by loop 2's must-write in the *bottom-up* summary, which FI
        // also uses).  Construct instead: read of a *before* loop 1 — FI
        // counts it (no ordering), flow-sensitive modes do not.
        let (_, results) = run_modes(
            r#"program t
proc main() {
  real a[10]
  real acc
  int i
  acc = 0
  do 9 i = 1, 10 {
    acc = acc + a[i]
  }
  do 1 i = 1, 10 {
    a[i] = i
  }
  print acc
}
"#,
        );
        for (mode, dead) in &results {
            match mode {
                LivenessMode::FlowInsensitive => {
                    assert_eq!(
                        dead.get("main/1:a"),
                        Some(&false),
                        "FI counts earlier reads"
                    )
                }
                _ => assert_eq!(
                    dead.get("main/1:a"),
                    Some(&true),
                    "flow-sensitive modes see a is never read after loop 1 ({mode:?})"
                ),
            }
        }
    }

    #[test]
    fn liveness_across_calls() {
        // Loop in `work` writes common array buf; main reads it afterwards.
        let (_, results) = run_modes(
            r#"program t
proc work() {
  common /c/ real buf[10], real scratch[10]
  int i
  do 1 i = 1, 10 {
    buf[i] = i
    scratch[i] = i * 2
  }
}
proc main() {
  common /c/ real buf[10], real scratch[10]
  real acc
  int i
  call work()
  acc = 0
  do 2 i = 1, 10 {
    acc = acc + buf[i]
  }
  print acc
}
"#,
        );
        for (mode, dead) in &results {
            match mode {
                LivenessMode::Full => {
                    // Full mode separates the two members of the block.
                    assert_eq!(dead.get("work/1:/c/"), Some(&false), "buf live (full)");
                }
                _ => {
                    assert_eq!(dead.get("work/1:/c/"), Some(&false), "{mode:?}");
                }
            }
        }
    }

    #[test]
    fn full_mode_separates_common_members() {
        use crate::liveness::{var_live_after, var_written};
        let p = parse_program(
            r#"program t
proc work() {
  common /c/ real buf[10], real scratch[10]
  int i
  do 1 i = 1, 10 {
    buf[i] = i
    scratch[i] = i * 2
  }
}
proc main() {
  common /c/ real buf[10], real scratch[10]
  real acc
  int i
  call work()
  acc = 0
  do 2 i = 1, 10 {
    acc = acc + buf[i]
  }
  print acc
}
"#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let df = ArrayDataFlow::analyze(&ctx);
        let res = run(&ctx, &df, LivenessMode::Full);
        let l1 = ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "work/1")
            .unwrap()
            .stmt;
        let buf = p.var_by_name("work", "buf").unwrap();
        let scratch = p.var_by_name("work", "scratch").unwrap();
        assert!(var_written(&ctx, &df, l1, buf));
        assert!(var_written(&ctx, &df, l1, scratch));
        assert!(
            var_live_after(&ctx, &res, &df, l1, buf),
            "buf is read after"
        );
        assert!(
            !var_live_after(&ctx, &res, &df, l1, scratch),
            "scratch is dead after the loop"
        );
    }
    #[test]
    fn next_outer_iteration_read_keeps_inner_write_live() {
        // Regression for the Fig 5-3 loop-body rule: the inner loop rewrites
        // a[2] each outer iteration and the NEXT outer iteration reads it —
        // the remaining-iterations exposure must use the PLAIN loop closure
        // (the enhanced exposure hides the read fed by the earlier
        // iteration and would wrongly judge the write dead).
        let (_, results) = run_modes(
            r#"program t
proc main() {
  real a[4]
  real acc
  int i, j
  acc = 0
  do 1 i = 1, 8 {
    acc = acc + a[2]
    do 2 j = 1, 4 {
      a[j] = i + j
    }
  }
  print acc
}
"#,
        );
        for (mode, dead) in &results {
            assert_eq!(
                dead.get("main/2:a"),
                Some(&false),
                "a is read by the next outer iteration (mode {mode:?})"
            );
        }
    }

    #[test]
    fn write_after_loop_kills_in_full_mode() {
        // Loop 1 writes tmp[1..10]; a full overwrite happens before the
        // read, so full-mode liveness sees the kill (the M component of the
        // after-summary subtracts from the exposed reads).
        let (_, results) = run_modes(
            r#"program t
proc main() {
  real tmp[10]
  real acc
  int i
  do 1 i = 1, 10 {
    tmp[i] = i
  }
  do 2 i = 1, 10 {
    tmp[i] = 100 - i
  }
  acc = 0
  do 3 i = 1, 10 {
    acc = acc + tmp[i]
  }
  print acc
}
"#,
        );
        for (mode, dead) in &results {
            match mode {
                LivenessMode::FlowInsensitive => {
                    assert_eq!(dead.get("main/1:tmp"), Some(&false), "FI has no kill")
                }
                _ => assert_eq!(
                    dead.get("main/1:tmp"),
                    Some(&true),
                    "loop 2 kills tmp before loop 3 (mode {mode:?})"
                ),
            }
        }
    }
}
