//! Data-decomposition advisory (§4.2.4, Fig. 4-6, and the §7.5.1 "Explorer
//! for memory performance" direction).
//!
//! For each parallel loop, every accessed shared array gets an implied
//! *partitioning stride*: how the accessed linearized addresses move per
//! iteration of the parallel index.  Two parallel loops that partition the
//! same array with different strides force data reshuffling between them
//! (hydro's `vsetuv/85` distributes by column while `vqterm/85` distributes
//! by row); a stride much larger than 1 also means non-contiguous
//! per-processor data (poor spatial locality in column-major storage).
//! The advisory reports both — the facts behind the paper's manual loop
//! interchanges and array transposes.

use crate::context::AnalysisCtx;
use crate::parallelize::ProgramAnalysis;
use std::collections::BTreeMap;
use suif_ir::StmtId;
use suif_poly::{ArrayId, ConstraintKind, Section, Var};

/// The partitioning stride of one array in one parallel loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stride {
    /// Addresses advance by this many elements per index step (1 =
    /// contiguous / row partition; `m` = column partition of an `m × n`
    /// array).
    Elements(i64),
    /// The relation between the index and the addresses is not a single
    /// affine stride.
    Irregular,
}

/// One (loop, array) partitioning fact.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// The parallel loop.
    pub loop_stmt: StmtId,
    /// Loop name.
    pub loop_name: String,
    /// The array object.
    pub object: ArrayId,
    /// Display name.
    pub object_name: String,
    /// Implied stride.
    pub stride: Stride,
    /// Whether the loop writes the array (writers pin the decomposition).
    pub writes: bool,
}

/// A conflict: one array partitioned differently by two parallel loops.
#[derive(Clone, Debug)]
pub struct DecompConflict {
    /// The array.
    pub object_name: String,
    /// First loop and its stride.
    pub a: (String, Stride),
    /// Second loop and its stride.
    pub b: (String, Stride),
}

/// Extract the stride of `sec` with respect to the loop-index symbol: looks
/// for an equality `c_d·d0 + c_i·index + … == 0` and returns
/// `-c_i / c_d` when integral.
fn stride_of(sec: &Section, index: Var) -> Option<Stride> {
    if sec.is_empty() {
        return None;
    }
    let mut found: Option<i64> = None;
    for p in sec.set.disjuncts() {
        // Every constraint relating d0 and the index (equality `d0 == s·i + c`
        // or window bounds `s·i + a <= d0 <= s·i + b`) must agree on the
        // ratio s = -c_i / c_d.
        let mut this: Option<i64> = None;
        let mut consistent = true;
        for c in p.constraints() {
            let _ = c.kind == ConstraintKind::EqZero; // both kinds handled alike
            let cd = c.expr.coef(Var::Dim(0));
            let ci = c.expr.coef(index);
            if cd == 0 || ci == 0 {
                continue;
            }
            if ci % cd != 0 {
                consistent = false;
                break;
            }
            let s = -(ci / cd);
            match this {
                None => this = Some(s),
                Some(prev) if prev == s => {}
                Some(_) => {
                    consistent = false;
                    break;
                }
            }
        }
        if !consistent {
            return Some(Stride::Irregular);
        }
        match (found, this) {
            (None, Some(s)) => found = Some(s),
            (Some(a), Some(b)) if a == b => {}
            (_, None) => return Some(Stride::Irregular),
            (Some(_), Some(_)) => return Some(Stride::Irregular),
        }
    }
    found.map(Stride::Elements)
}

/// Compute the partitionings of every shared array across all parallel
/// loops (only outermost parallel loops are considered — those define the
/// run-time distribution).
pub fn partitionings(pa: &ProgramAnalysis<'_>) -> Vec<Partitioning> {
    let ctx = &pa.ctx;
    let parallel = pa.parallel_loops();
    let mut out = Vec::new();
    for li in &ctx.tree.loops {
        if !parallel.contains(&li.stmt) {
            continue;
        }
        // Skip loops nested (statically) inside another parallel loop.
        if parallel
            .iter()
            .any(|&p| p != li.stmt && ctx.tree.is_nested_in(li.stmt, p))
        {
            continue;
        }
        let Some(iter) = pa.df.loop_iter.get(&li.stmt) else {
            continue;
        };
        for (id, s) in iter.sum.acc.iter() {
            if !ctx.is_array_object(id) {
                continue;
            }
            // Only shared (non-privatized) arrays matter for decomposition;
            // approximate: skip objects the plan privatizes or reduces.
            if let Some(crate::parallelize::LoopVerdict::Parallel { plan, .. }) =
                pa.verdicts.get(&li.stmt)
            {
                let key = ctx.key_of_id(id);
                if plan.private.contains(&key)
                    || plan.finalize_last.contains(&key)
                    || plan.reductions.iter().any(|(k, _)| *k == key)
                {
                    continue;
                }
            }
            let writes = !s.write.is_empty();
            let probe = if writes { &s.write } else { &s.read };
            let Some(stride) = stride_of(probe, iter.index_sym) else {
                continue;
            };
            out.push(Partitioning {
                loop_stmt: li.stmt,
                loop_name: li.name.clone(),
                object: id,
                object_name: ctx.array_name(id),
                stride,
                writes,
            });
        }
    }
    out
}

/// Find arrays partitioned with conflicting strides by different parallel
/// loops (the Fig. 4-6 data-reshuffling diagnosis).
pub fn conflicts(pa: &ProgramAnalysis<'_>) -> Vec<DecompConflict> {
    let parts = partitionings(pa);
    let mut by_object: BTreeMap<ArrayId, Vec<&Partitioning>> = BTreeMap::new();
    for p in &parts {
        by_object.entry(p.object).or_default().push(p);
    }
    let mut out = Vec::new();
    for (_, ps) in by_object {
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                let (a, b) = (ps[i], ps[j]);
                if a.loop_stmt == b.loop_stmt {
                    continue;
                }
                if !(a.writes || b.writes) {
                    continue; // read-read never forces reshuffling
                }
                if a.stride != b.stride {
                    out.push(DecompConflict {
                        object_name: a.object_name.clone(),
                        a: (a.loop_name.clone(), a.stride.clone()),
                        b: (b.loop_name.clone(), b.stride.clone()),
                    });
                }
            }
        }
    }
    out.dedup_by(|x, y| x.object_name == y.object_name && x.a.0 == y.a.0 && x.b.0 == y.b.0);
    out
}

/// The advisory as one program-scope fact: partitionings plus conflicts.
#[derive(Clone, Debug)]
pub struct DecompFact {
    /// Per-(loop, array) partitioning facts.
    pub partitionings: Vec<Partitioning>,
    /// Conflicting decompositions between parallel loops.
    pub conflicts: Vec<DecompConflict>,
}

struct DecompPass<'a, 'p> {
    pa: &'a ProgramAnalysis<'p>,
}

impl crate::pipeline::Pass for DecompPass<'_, '_> {
    type Output = DecompFact;
    fn key(&self) -> crate::pipeline::FactKey {
        crate::pipeline::FactKey::new(
            crate::pipeline::PassId::Decomp,
            crate::pipeline::Scope::Program,
        )
    }
    fn input_hash(&self) -> u128 {
        self.pa.epoch_hash
    }
    fn deps(&self) -> Vec<crate::pipeline::FactKey> {
        // The advisory reads the verdicts, so an invalidated classification
        // fact (a user assertion) dirties it too.
        let mut d = vec![crate::pipeline::FactKey::new(
            crate::pipeline::PassId::Summarize,
            crate::pipeline::Scope::Program,
        )];
        for &stmt in self.pa.verdicts.keys() {
            d.push(crate::pipeline::FactKey::new(
                crate::pipeline::PassId::Classify,
                crate::pipeline::Scope::Loop(stmt),
            ));
        }
        d
    }
    fn run(&self) -> DecompFact {
        DecompFact {
            partitionings: partitionings(self.pa),
            conflicts: conflicts(self.pa),
        }
    }
}

/// Demand-driven advisory: computed the first time a query asks, reused
/// from the fact store afterwards.
pub fn advisory_cached(
    pa: &ProgramAnalysis<'_>,
    store: &crate::pipeline::FactStore,
) -> std::sync::Arc<DecompFact> {
    store.demand(&DecompPass { pa })
}

/// Render the advisory (the textual Fig. 4-6).
pub fn render_advisory(pa: &ProgramAnalysis<'_>) -> String {
    let mut out = String::new();
    let parts = partitionings(pa);
    out.push_str("array partitionings implied by the parallel loops:\n");
    for p in &parts {
        out.push_str(&format!(
            "  {:<16} {:<10} stride {:<12} {}\n",
            p.loop_name,
            p.object_name,
            match &p.stride {
                Stride::Elements(1) => "1 (rows)".to_string(),
                Stride::Elements(s) => format!("{s} (columns)"),
                Stride::Irregular => "irregular".to_string(),
            },
            if p.writes { "writes" } else { "reads" }
        ));
    }
    let cs = conflicts(pa);
    if cs.is_empty() {
        out.push_str("no conflicting decompositions.\n");
    } else {
        out.push_str("\nconflicting decompositions (data reshuffling between loops,\n§4.2.4 — candidates for loop interchange / array transpose):\n");
        for c in &cs {
            out.push_str(&format!(
                "  {}: {} uses {:?}, {} uses {:?}\n",
                c.object_name, c.a.0, c.a.1, c.b.0, c.b.1
            ));
        }
    }
    let _ = AnalysisCtx::sym_of; // keep the import shape stable
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallelize::{Assertion, ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    /// The Fig. 4-6 pattern: one loop sweeps columns (partition by l), the
    /// other sweeps rows (partition by k) of the same array.
    const SRC: &str = r#"program t
const kmax = 8
const lmax = 8
proc main() {
  real duac[kmax, lmax]
  real acc[kmax]
  int k, l
  do 85 l = 1, lmax {
    do 60 k = 1, kmax {
      duac[k, l] = float(k + l)
    }
  }
  do 95 k = 1, kmax {
    do 80 l = 1, lmax {
      acc[k] = acc[k] + duac[k, l]
    }
  }
  print acc[1]
}
"#;

    #[test]
    fn detects_row_column_conflict() {
        let p = parse_program(SRC).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let parts = partitionings(&pa);
        let find = |loop_name: &str| {
            parts
                .iter()
                .find(|x| x.loop_name == loop_name && x.object_name == "duac")
                .unwrap_or_else(|| panic!("no partitioning for {loop_name}: {parts:?}"))
        };
        // Column-major kmax×lmax: the l-loop strides by kmax (columns), the
        // k-loop strides by 1 (rows).
        assert_eq!(find("main/85").stride, Stride::Elements(8));
        assert_eq!(find("main/95").stride, Stride::Elements(1));
        let cs = conflicts(&pa);
        assert_eq!(cs.len(), 1, "{cs:?}");
        assert_eq!(cs[0].object_name, "duac");
    }

    #[test]
    fn consistent_decompositions_have_no_conflict() {
        let src = r#"program t
const kmax = 8
const lmax = 8
proc main() {
  real a[kmax, lmax]
  int k, l
  do 1 l = 1, lmax {
    do 2 k = 1, kmax {
      a[k, l] = float(k)
    }
  }
  do 3 l = 1, lmax {
    do 4 k = 1, kmax {
      a[k, l] = a[k, l] * 2.0
    }
  }
  print a[1, 1]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        assert!(conflicts(&pa).is_empty());
    }

    #[test]
    fn hydro_reports_the_vsetuv_vqterm_conflict() {
        // A distilled hydro: vsetuv writes v by column, vqterm reads it by
        // row (the loops are parallel after the case-study assertions).
        let src = r#"program t
const kmax = 8
const lmax = 8
proc main() {
  real v[kmax, lmax], q[kmax, lmax]
  real hold[kmax]
  int k, l
  do 85 l = 2, lmax {
    do 60 k = 1, kmax {
      v[k, l] = float(k * l)
    }
  }
  do 95 k = 2, kmax {
    do 80 l = 2, lmax {
      q[k, l] = v[k, l] - v[k, l - 1]
    }
  }
  print q[2, 2]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(
            &p,
            ParallelizeConfig {
                assertions: vec![Assertion::Independent {
                    loop_name: "main/95".into(),
                    var: "v".into(),
                }],
                ..Default::default()
            },
        );
        let text = render_advisory(&pa);
        assert!(text.contains("conflicting decompositions"), "{text}");
        assert!(text.contains('v'), "{text}");
    }
}
