//! Bottom-up region-based array data-flow analysis (§5.2.2.1, §2.4).
//!
//! Walks every procedure leaves-first, computing for each statement, loop,
//! and procedure a [`NodeSummary`]: the `<R, E, W, M>` access summary plus
//! the reduction bookkeeping of Ch. 6.  Loop summaries apply the *closure*
//! operator (projecting the induction symbol constrained by the loop
//! bounds), keep the un-closed per-iteration summary for the dependence
//! tests, and apply the §5.2.2.3 recurrence enhancement that subtracts
//! must-written sections from the upwards-exposed reads of call-free loops
//! without anti-dependences.
//!
//! Call sites map callee summaries into the caller: formal-array sections
//! are retargeted to the actuals (with sub-array base shifts), formal-scalar
//! symbols are substituted with the actuals' affine values, callee-local
//! objects are dropped (Fortran-77 locals are undefined on re-entry), and
//! remaining callee-origin symbols are projected away.

use crate::context::{AnalysisCtx, ArrayKey, FRESH_BASE};
use crate::reduction::{self, RedSummary};
use crate::symenv::SymEnv;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use suif_ir::ast::BinOp;
use suif_ir::{Arg, Expr, ProcId, Ref, Stmt, StmtId, VarId, VarKind};
use suif_poly::{AccessSummary, Constraint, LinExpr, Section, SectionSummary, Var};

/// Access + reduction summary of one node or region.
#[derive(Clone, Debug, Default)]
pub struct NodeSummary {
    /// `<R, E, W, M>` per storage object.
    pub acc: AccessSummary,
    /// Reduction regions per storage object.
    pub red: RedSummary,
}

impl NodeSummary {
    /// Empty summary.
    pub fn empty() -> NodeSummary {
        NodeSummary::default()
    }

    /// Sequence: `self` then `other`.
    pub fn then(&self, other: &NodeSummary) -> NodeSummary {
        NodeSummary {
            acc: self.acc.then(&other.acc),
            red: self.red.union(&other.red),
        }
    }

    /// Control-flow meet (branch join without path conditions).
    pub fn meet(&self, other: &NodeSummary) -> NodeSummary {
        NodeSummary {
            acc: self.acc.meet(&other.acc),
            red: self.red.union(&other.red),
        }
    }
}

/// The per-iteration summary of one loop, kept un-closed for dependence and
/// privatization testing.
#[derive(Clone, Debug)]
pub struct LoopIterSummary {
    /// Body summary with the induction symbol free.
    pub sum: NodeSummary,
    /// The induction symbol.
    pub index_sym: Var,
    /// Affine `(first, last)` bounds in loop-entry symbols, normalized so
    /// `first <= i <= last` holds for executed iterations, when derivable.
    pub bounds: Option<(LinExpr, LinExpr)>,
    /// Constant step, when known.
    pub step: Option<i64>,
    /// Fresh-symbol id range allocated while analyzing the body: symbols in
    /// this range vary from iteration to iteration.
    pub varying: (u32, u32),
    /// Does the body (syntactically) contain procedure calls?
    pub has_calls: bool,
}

impl LoopIterSummary {
    /// Is this symbol loop-varying (per-iteration)?
    pub fn is_varying(&self, sym: Var) -> bool {
        if sym == self.index_sym {
            return true;
        }
        matches!(sym, Var::Sym(n) if n >= self.varying.0 && n < self.varying.1)
    }
}

/// The complete bottom-up data-flow result.
#[derive(Debug, Default)]
pub struct ArrayDataFlow {
    /// Whole-procedure summaries (in the procedure's own symbols).
    pub proc_summary: HashMap<ProcId, NodeSummary>,
    /// Fresh-symbol range allocated while analyzing each procedure.
    pub proc_fresh: HashMap<ProcId, (u32, u32)>,
    /// Node summary per statement (loops appear in closed form, including
    /// their bound-expression reads).
    pub stmt_summary: HashMap<StmtId, NodeSummary>,
    /// Per-iteration summaries per loop.
    pub loop_iter: HashMap<StmtId, LoopIterSummary>,
    /// Plain (un-enhanced) closed access summaries per loop: exposure here
    /// includes reads fed by *earlier iterations of the same loop* — exactly
    /// what the Fig. 5-3 loop-body rule needs to model "the remaining
    /// iterations" (the §5.2.2.3 enhancement is only valid for the loop's
    /// exposure towards code *before* the loop).
    pub loop_closed_plain: HashMap<StmtId, AccessSummary>,
}

/// The per-procedure slice of the bottom-up result: everything the analysis
/// of one procedure produces.  This is the unit of parallel scheduling and
/// of content-addressed caching — given the same procedure (and the same
/// callee flows), [`summarize_proc`] returns a bit-identical `ProcFlow`
/// regardless of analysis order or thread placement, because each procedure
/// draws fresh symbols from its own [`AnalysisCtx::proc_block`].
#[derive(Clone, Debug, Default)]
pub struct ProcFlow {
    /// Whole-procedure summary (in the procedure's own symbols).
    pub summary: NodeSummary,
    /// Fresh-symbol range used while analyzing the procedure.
    pub fresh: (u32, u32),
    /// Node summary per statement of this procedure.
    pub stmt_summary: HashMap<StmtId, NodeSummary>,
    /// Per-iteration summaries per loop of this procedure.
    pub loop_iter: HashMap<StmtId, LoopIterSummary>,
    /// Plain closed access summaries per loop of this procedure.
    pub loop_closed_plain: HashMap<StmtId, AccessSummary>,
}

/// Summarize one procedure given the flows of (at least) its callees.
///
/// Pure and deterministic: fresh symbols come from the procedure's own
/// block, modified-scalar kills happen in sorted order, and callee data is
/// read only through `callees`.
pub fn summarize_proc(
    ctx: &AnalysisCtx<'_>,
    pid: ProcId,
    callees: &HashMap<ProcId, Arc<ProcFlow>>,
) -> ProcFlow {
    ctx.with_fresh_block(pid, || {
        let start = ctx.fresh_watermark();
        let mut flow = ProcFlow::default();
        let mut env = SymEnv::proc_entry();
        let mut w = Walker {
            ctx,
            callees,
            flow: &mut flow,
            proc: pid,
        };
        let body = &ctx.program.proc(pid).body;
        let sum = w.walk_body(body, &mut env);
        let end = ctx.fresh_watermark();
        flow.summary = sum;
        flow.fresh = (start, end);
        flow
    })
}

impl ArrayDataFlow {
    /// Run the bottom-up analysis over the whole program (sequentially; the
    /// parallel scheduler in [`crate::schedule`] produces bit-identical
    /// results).
    pub fn analyze(ctx: &AnalysisCtx<'_>) -> ArrayDataFlow {
        let mut df = ArrayDataFlow::default();
        let mut flows: HashMap<ProcId, Arc<ProcFlow>> = HashMap::new();
        for &pid in ctx.cg.bottom_up() {
            let flow = Arc::new(summarize_proc(ctx, pid, &flows));
            df.merge_proc(pid, &flow);
            flows.insert(pid, flow);
        }
        df
    }

    /// Fold one procedure's flow into the program-wide maps.
    pub fn merge_proc(&mut self, pid: ProcId, flow: &ProcFlow) {
        self.proc_summary.insert(pid, flow.summary.clone());
        self.proc_fresh.insert(pid, flow.fresh);
        self.stmt_summary
            .extend(flow.stmt_summary.iter().map(|(k, v)| (*k, v.clone())));
        self.loop_iter
            .extend(flow.loop_iter.iter().map(|(k, v)| (*k, v.clone())));
        self.loop_closed_plain
            .extend(flow.loop_closed_plain.iter().map(|(k, v)| (*k, v.clone())));
    }
}

struct Walker<'a, 'p> {
    ctx: &'a AnalysisCtx<'p>,
    callees: &'a HashMap<ProcId, Arc<ProcFlow>>,
    flow: &'a mut ProcFlow,
    proc: ProcId,
}

impl<'a, 'p> Walker<'a, 'p> {
    fn walk_body(&mut self, body: &[Stmt], env: &mut SymEnv) -> NodeSummary {
        let mut acc = NodeSummary::empty();
        for s in body {
            let ns = self.walk_stmt(s, env);
            self.flow.stmt_summary.insert(s.id(), ns.clone());
            acc = acc.then(&ns);
        }
        acc
    }

    /// Reads performed by evaluating an expression: plain accesses.
    fn expr_reads(&self, e: &Expr, env: &SymEnv, out: &mut NodeSummary) {
        match e {
            Expr::Int(_) | Expr::Real(_) => {}
            Expr::Scalar(v) => {
                let sec = self.ctx.access_section(*v, None);
                out.acc.add_read(sec.clone());
                out.red.add_plain(sec);
            }
            Expr::Element(v, subs) => {
                for s in subs {
                    self.expr_reads(s, env, out);
                }
                let aff = self.affine_subs(subs, env);
                let sec = self.ctx.access_section(*v, aff.as_deref());
                out.acc.add_read(sec.clone());
                out.red.add_plain(sec);
            }
            Expr::Unary(_, a) => self.expr_reads(a, env, out),
            Expr::Binary(_, a, b) => {
                self.expr_reads(a, env, out);
                self.expr_reads(b, env, out);
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    self.expr_reads(a, env, out);
                }
            }
        }
    }

    fn affine_subs(&self, subs: &[Expr], env: &SymEnv) -> Option<Vec<LinExpr>> {
        subs.iter().map(|s| env.affine(s)).collect()
    }

    /// Section of a reference (write target).  Returns `(section, is_exact)`.
    fn ref_section(&self, r: &Ref, env: &SymEnv) -> (Section, bool) {
        match r {
            Ref::Scalar(v) => (self.ctx.access_section(*v, None), true),
            Ref::Element(v, subs) => {
                let aff = self.affine_subs(subs, env);
                let exact = aff.is_some();
                (self.ctx.access_section(*v, aff.as_deref()), exact)
            }
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, env: &mut SymEnv) -> NodeSummary {
        match s {
            Stmt::Assign { lhs, rhs, .. } => self.walk_assign(lhs, rhs, env),
            Stmt::Read { lhs, .. } => {
                let mut ns = NodeSummary::empty();
                // Subscript reads, then the write.
                if let Ref::Element(_, subs) = lhs {
                    for e in subs {
                        self.expr_reads(e, env, &mut ns);
                    }
                }
                let (sec, exact) = self.ref_section(lhs, env);
                let mut w = NodeSummary::empty();
                w.acc.add_write(sec.clone(), exact);
                w.red.add_plain(sec);
                if let Ref::Scalar(v) = lhs {
                    env.kill(self.ctx, *v);
                }
                ns.then(&w)
            }
            Stmt::Print { args, .. } => {
                let mut ns = NodeSummary::empty();
                for a in args {
                    self.expr_reads(a, env, &mut ns);
                }
                ns
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => self.walk_if(cond, then_body, else_body, env),
            Stmt::Do { .. } => self.walk_do(s, env),
            Stmt::Call { callee, args, .. } => self.walk_call(*callee, args, env),
        }
    }

    fn walk_assign(&mut self, lhs: &Ref, rhs: &Expr, env: &mut SymEnv) -> NodeSummary {
        let mut reads = NodeSummary::empty();
        self.expr_reads(rhs, env, &mut reads);
        if let Ref::Element(_, subs) = lhs {
            for e in subs {
                self.expr_reads(e, env, &mut reads);
            }
        }
        let (sec, exact) = self.ref_section(lhs, env);
        let site = reduction::recognize_assign(lhs, rhs);
        let mut w = NodeSummary::empty();
        w.acc.add_write(sec.clone(), exact);
        match site {
            Some(site) => {
                // The self-read and the write form a commutative update; the
                // plain reads recorded above include the self-read, which is
                // fine for R/E soundness but must not poison the reduction
                // region — rebuild the red part of `reads` without it.
                let mut red = RedSummary::empty();
                for d in &site.data {
                    let mut tmp = NodeSummary::empty();
                    self.expr_reads(d, env, &mut tmp);
                    red = red.union(&tmp.red);
                }
                if let Ref::Element(_, subs) = lhs {
                    for e in subs {
                        let mut tmp = NodeSummary::empty();
                        self.expr_reads(e, env, &mut tmp);
                        red = red.union(&tmp.red);
                    }
                }
                red.add_update(sec, site.op);
                reads.red = red;
                w.red = RedSummary::empty();
            }
            None => {
                w.red.add_plain(sec);
            }
        }
        // Symbolic update.
        if let Ref::Scalar(v) = lhs {
            match env.affine(rhs) {
                Some(val) => env.assign(*v, val),
                None => {
                    env.kill(self.ctx, *v);
                }
            }
        }
        reads.then(&w)
    }

    fn walk_if(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
        env: &mut SymEnv,
    ) -> NodeSummary {
        // Conditional MIN/MAX reduction form (§6.2.2.1).
        if let Some(site) = reduction::recognize_if_minmax(cond, then_body, else_body) {
            let mut ns = NodeSummary::empty();
            // Data reads are plain; the target's self-read is reduction-role
            // but still recorded in R/E for soundness.
            for d in &site.data {
                self.expr_reads(d, env, &mut ns);
            }
            let target_sec = {
                let aff = self.affine_subs(site.subs, env);
                self.ctx.access_section(site.var, aff.as_deref())
            };
            ns.acc.add_read(target_sec.clone());
            // Conditional write: may-write only.
            let mut w = NodeSummary::empty();
            w.acc.add_write(target_sec.clone(), false);
            ns.red.add_update(target_sec, site.op);
            // Record statement summaries for the inner assign too (liveness
            // walks statement lists by id).
            if let Some(inner) = then_body.first() {
                self.flow
                    .stmt_summary
                    .insert(inner.id(), NodeSummary::empty());
            }
            env.kill(self.ctx, site.var);
            return ns.then(&w);
        }

        let mut cond_reads = NodeSummary::empty();
        self.expr_reads(cond, env, &mut cond_reads);
        let cc = cond_constraints(env, cond);
        let mut then_env = env.clone();
        let then_sum = self.walk_body(then_body, &mut then_env);
        let mut else_env = env.clone();
        let else_sum = self.walk_body(else_body, &mut else_env);
        let combined = match cc {
            Some((pos, neg)) => {
                // Path-partition union: summaries constrained by the branch
                // predicate, then unioned (exact for must-writes because the
                // disjuncts partition the state space).
                let t = constrain_node(&then_sum, &pos);
                let e = constrain_node(&else_sum, &neg);
                partition_union(&t, &e)
            }
            None => then_sum.meet(&else_sum),
        };
        then_env.merge(self.ctx, &else_env);
        *env = then_env;
        cond_reads.then(&combined)
    }

    fn walk_do(&mut self, s: &Stmt, env: &mut SymEnv) -> NodeSummary {
        let Stmt::Do {
            id,
            var,
            lo,
            hi,
            step,
            body,
            ..
        } = s
        else {
            unreachable!()
        };
        let mut bound_reads = NodeSummary::empty();
        self.expr_reads(lo, env, &mut bound_reads);
        self.expr_reads(hi, env, &mut bound_reads);
        if let Some(st) = step {
            self.expr_reads(st, env, &mut bound_reads);
        }
        let lo_aff = env.affine(lo);
        let hi_aff = env.affine(hi);
        let step_val = match step {
            None => Some(1i64),
            Some(e) => match env.affine(e) {
                Some(l) if l.is_constant() => Some(l.constant_part()),
                _ => None,
            },
        };
        // Normalize bounds to (first, last) so first <= i <= last.
        let bounds = match (lo_aff, hi_aff, step_val) {
            (Some(l), Some(h), Some(st)) if st > 0 => Some((l, h)),
            (Some(l), Some(h), Some(st)) if st < 0 => Some((h, l)),
            _ => None,
        };

        let fresh_start = self.ctx.fresh_watermark();
        let mut body_env = env.clone();
        let modified = self.body_modified_scalars(body);
        for &v in &modified {
            body_env.kill(self.ctx, v);
        }
        let index_sym = body_env.kill(self.ctx, *var);
        let has_calls = body_has_calls(body);
        let body_sum = self.walk_body(body, &mut body_env);
        let fresh_end = self.ctx.fresh_watermark();

        let iter = LoopIterSummary {
            sum: body_sum.clone(),
            index_sym,
            bounds: bounds.clone(),
            step: step_val,
            varying: (fresh_start, fresh_end),
            has_calls,
        };

        // Closure: constrain the induction symbol by the bounds, project it
        // and all loop-varying symbols away.
        let mut constrained = body_sum;
        if let Some((first, last)) = &bounds {
            let i = LinExpr::var(index_sym);
            let cs = vec![Constraint::geq(&i, first), Constraint::leq(&i, last)];
            constrained = constrain_node(&constrained, &[cs]);
        }
        let ctx = self.ctx;
        let mut fresh = || ctx.fresh_sym();
        let mut closed = NodeSummary {
            acc: constrained.acc.closure_with(index_sym, &mut fresh),
            red: constrained
                .red
                .map_sections(|s| Some(s.closure_keep(index_sym, &mut || ctx.fresh_sym()))),
        };
        let varying_pred = |v: Var| matches!(v, Var::Sym(n) if n >= fresh_start && n < fresh_end);
        closed.acc = closed
            .acc
            .project_symbols_keep(&varying_pred, &mut || ctx.fresh_sym());
        closed.red = closed
            .red
            .map_sections(|s| Some(s.project_symbols_keep(&varying_pred, &mut || ctx.fresh_sym())));
        // Unknown bounds ⇒ the loop may execute zero iterations (and the
        // iteration space is unconstrained): nothing is must-written.
        if bounds.is_none() {
            let arrays: Vec<_> = closed.acc.arrays().collect();
            for a in arrays {
                if let Some(cl) = closed.acc.get(a) {
                    let mut fixed = cl.clone();
                    fixed.must_write =
                        suif_poly::Section::empty(fixed.must_write.array, fixed.must_write.ndims);
                    closed.acc.insert(fixed);
                }
            }
        }

        self.flow.loop_closed_plain.insert(*id, closed.acc.clone());

        // §5.2.2.3: sharpen upwards-exposed reads — an exposed read of
        // iteration i2 is not exposed at the loop level when the must-writes
        // of iterations executed before i2 cover it (admits the psmoo
        // recurrence, rejects read-modify-write updates).
        {
            let arrays: Vec<_> = closed.acc.arrays().collect();
            for a in arrays {
                let (Some(cl), Some(it)) = (closed.acc.get(a), iter.sum.acc.get(a)) else {
                    continue;
                };
                if cl.exposed.is_empty() {
                    continue;
                }
                if let Some(better) = crate::enhance::enhanced_exposed(self.ctx, &iter, it) {
                    // Intersect with the plainly-closed exposure (both are
                    // sound over-approximations).
                    let mut sharpened = cl.clone();
                    sharpened.exposed = sharpened.exposed.intersect(&better);
                    closed.acc.insert(sharpened);
                }
            }
        }

        self.flow.loop_iter.insert(*id, iter);

        // Post-loop environment: modified scalars and the index are unknown.
        for &v in &modified {
            env.kill(self.ctx, v);
        }
        env.kill(self.ctx, *var);
        bound_reads.then(&closed)
    }

    fn walk_call(&mut self, callee: ProcId, args: &[Arg], env: &mut SymEnv) -> NodeSummary {
        let mut arg_reads = NodeSummary::empty();
        let cproc = self.ctx.program.proc(callee);
        for a in args {
            match a {
                Arg::Value(e) => self.expr_reads(e, env, &mut arg_reads),
                Arg::ArrayPart { base, .. } => {
                    for e in base {
                        self.expr_reads(e, env, &mut arg_reads);
                    }
                }
                Arg::ScalarVar(v) => {
                    let sec = self.ctx.access_section(*v, None);
                    arg_reads.acc.add_read(sec.clone());
                    arg_reads.red.add_plain(sec);
                }
                Arg::ArrayWhole(_) => {}
            }
        }

        let callee_flow = self.callees.get(&callee);
        let callee_sum = callee_flow.map(|f| f.summary.clone()).unwrap_or_default();

        // Build formal-scalar symbol substitutions (caller values).
        let callee_range = callee_flow.map(|f| f.fresh).unwrap_or((u32::MAX, u32::MAX));
        let mut subs: Vec<(Var, LinExpr)> = Vec::new();
        for (k, &formal) in cproc.params.iter().enumerate() {
            if self.ctx.program.var(formal).is_array() {
                continue;
            }
            let val = match &args[k] {
                Arg::ScalarVar(v) => env.value_of(*v),
                Arg::Value(e) => env
                    .affine(e)
                    .unwrap_or_else(|| LinExpr::var(self.ctx.fresh_sym())),
                _ => LinExpr::var(self.ctx.fresh_sym()),
            };
            subs.push((AnalysisCtx::sym_of(formal), val));
        }

        let map_section = |sec: &Section| -> Option<Section> {
            // 1. Retarget the storage object.
            let retargeted: Section = match self.ctx.key_of_id(sec.array) {
                ArrayKey::Common(_) => sec.clone(),
                ArrayKey::Var(v) => {
                    let info = self.ctx.program.var(v);
                    if info.proc != callee {
                        // Object from a deeper context that already maps to a
                        // caller-visible thing — cannot happen (we retarget at
                        // each level), but keep it if it is caller-visible.
                        sec.clone()
                    } else {
                        match info.kind {
                            VarKind::Param { index } => {
                                if info.is_array() {
                                    match &args[index] {
                                        Arg::ArrayWhole(av) => {
                                            self.ctx.map_param_section(sec, *av, None)
                                        }
                                        Arg::ArrayPart { var: av, base } => {
                                            let aff = self.affine_subs(base, env);
                                            match aff.and_then(|a| self.ctx.linear_index(*av, &a)) {
                                                Some(b) => {
                                                    self.ctx.map_param_section(sec, *av, Some(b))
                                                }
                                                None => self.ctx.whole_section(*av),
                                            }
                                        }
                                        _ => return None,
                                    }
                                } else {
                                    // Scalar formal cell.
                                    match &args[index] {
                                        Arg::ScalarVar(av) => self.ctx.access_section(*av, None),
                                        _ => return None, // by-value: no caller storage
                                    }
                                }
                            }
                            _ => return None, // callee local: dropped
                        }
                    }
                }
            };
            // 2. Substitute formal-scalar symbols with caller values.
            let mut out = retargeted;
            for (sym, val) in &subs {
                out = out.substitute(*sym, val);
            }
            // 3. Project remaining callee-origin symbols: the callee's own
            // fresh range and the callee's variable symbols.  Caller symbols
            // (including the caller's loop indices) must survive.
            let program = self.ctx.program;
            let projected = out.project_symbols(|v| match v {
                Var::Sym(n) if n >= FRESH_BASE => n >= callee_range.0 && n < callee_range.1,
                _ => AnalysisCtx::var_of_sym(v)
                    .map(|vid| program.var(vid).proc == callee)
                    .unwrap_or(false),
            });
            Some(projected)
        };

        // Map the access summary.
        let mut mapped = NodeSummary::empty();
        for (_, s) in callee_sum.acc.iter() {
            let (Some(read), Some(exposed), Some(write)) = (
                map_section(&s.read),
                map_section(&s.exposed),
                map_section(&s.write),
            ) else {
                continue;
            };
            if read.is_empty() && write.is_empty() {
                continue;
            }
            // Must-writes must stay under-approximate: the projection step
            // inside map_section over-approximates, so a mapped must-write
            // is only kept when no callee-origin symbol remained to project
            // (retarget + substitution are exact) and the mapping introduced
            // no approximation.
            let program = self.ctx.program;
            let must = map_section(&s.must_write)
                .filter(|m| !m.set.is_approximate())
                .filter(|m| {
                    m.set.vars().into_iter().all(|v| match v {
                        Var::Sym(n) if n >= FRESH_BASE => {
                            !(n >= callee_range.0 && n < callee_range.1)
                        }
                        _ => AnalysisCtx::var_of_sym(v)
                            .map(|vid| program.var(vid).proc != callee)
                            .unwrap_or(true),
                    })
                })
                .unwrap_or_else(|| Section::empty(write.array, write.ndims));
            let target = read.array;
            let merged = SectionSummary {
                read: read.clone(),
                exposed,
                write: write.clone(),
                must_write: must.retarget(target, 1),
            };
            // Union with anything already mapped onto this object.
            let combined = match mapped.acc.get(target) {
                Some(prev) => SectionSummary {
                    read: prev.read.union(&merged.read),
                    exposed: prev.exposed.union(&merged.exposed),
                    write: prev.write.union(&merged.write),
                    must_write: prev.must_write.union(&merged.must_write),
                },
                None => merged,
            };
            mapped.acc.insert(combined);
        }
        mapped.red = callee_sum.red.map_sections(|s| map_section(s));

        // Copy-out effects on scalar actuals the callee may modify.
        for (k, &formal) in cproc.params.iter().enumerate() {
            if self.ctx.program.var(formal).is_array() {
                continue;
            }
            if cproc.modified_params.get(k).copied().unwrap_or(false) {
                if let Arg::ScalarVar(v) = &args[k] {
                    let sec = self.ctx.access_section(*v, None);
                    mapped.acc.add_write(sec.clone(), true);
                    mapped.red.add_plain(sec);
                    env.kill(self.ctx, *v);
                }
            }
        }

        // Kill caller common scalars the callee may write.
        let caller = self.ctx.program.proc(self.proc);
        for &m in &caller.common_vars {
            if self.ctx.program.var(m).is_array() {
                continue;
            }
            let cell = self.ctx.access_section(m, None);
            if let Some(s) = callee_sum.acc.get(cell.array) {
                if !s.write.provably_disjoint(&cell) {
                    env.kill(self.ctx, m);
                }
            }
        }

        arg_reads.then(&mapped)
    }

    /// Scalars of the current procedure whose values may change while the
    /// body executes (assignment, read, loop index, call effects).
    /// The result is ordered (`BTreeSet`) because the caller kills these
    /// scalars in iteration order, and each kill allocates a fresh symbol —
    /// the order must be deterministic.
    fn body_modified_scalars(&self, body: &[Stmt]) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_modified(body, &mut out);
        out
    }

    fn collect_modified(&self, body: &[Stmt], out: &mut BTreeSet<VarId>) {
        for s in body {
            match s {
                Stmt::Assign { lhs, .. } | Stmt::Read { lhs, .. } => {
                    if let Ref::Scalar(v) = lhs {
                        out.insert(*v);
                    }
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.collect_modified(then_body, out);
                    self.collect_modified(else_body, out);
                }
                Stmt::Do { var, body, .. } => {
                    out.insert(*var);
                    self.collect_modified(body, out);
                }
                Stmt::Call { callee, args, .. } => {
                    let cproc = self.ctx.program.proc(*callee);
                    for (k, a) in args.iter().enumerate() {
                        if cproc.modified_params.get(k).copied().unwrap_or(false) {
                            if let Arg::ScalarVar(v) = a {
                                out.insert(*v);
                            }
                        }
                    }
                    // Common scalars the callee may write.
                    if let Some(csum) = self.callees.get(callee).map(|f| &f.summary) {
                        let caller = self.ctx.program.proc(self.proc);
                        for &m in &caller.common_vars {
                            if self.ctx.program.var(m).is_array() {
                                continue;
                            }
                            let cell = self.ctx.access_section(m, None);
                            if let Some(s) = csum.acc.get(cell.array) {
                                if !s.write.provably_disjoint(&cell) {
                                    out.insert(m);
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn body_has_calls(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Call { .. } => true,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_has_calls(then_body) || body_has_calls(else_body),
        Stmt::Do { body, .. } => body_has_calls(body),
        _ => false,
    })
}

/// Constrain every section of a summary by a disjunction of constraint
/// conjunctions (union over the disjuncts).
fn constrain_node(ns: &NodeSummary, disjuncts: &[Vec<Constraint>]) -> NodeSummary {
    let constrain_sec = |sec: &Section| -> Section {
        let mut out = Section::empty(sec.array, sec.ndims);
        for conj in disjuncts {
            let mut s = sec.clone();
            for c in conj {
                s.set = s.set.constrain(c);
            }
            out = out.union(&s);
        }
        out
    };
    let mut acc = AccessSummary::empty();
    for (_, s) in ns.acc.iter() {
        acc.insert(SectionSummary {
            read: constrain_sec(&s.read),
            exposed: constrain_sec(&s.exposed),
            write: constrain_sec(&s.write),
            must_write: constrain_sec(&s.must_write),
        });
    }
    NodeSummary {
        acc,
        red: ns.red.map_sections(|s| Some(constrain_sec(s))),
    }
}

/// Union two summaries that describe *mutually exclusive* paths (both taken
/// under complementary predicates): all four components union, including
/// must-writes.
fn partition_union(a: &NodeSummary, b: &NodeSummary) -> NodeSummary {
    let mut acc = AccessSummary::empty();
    let arrays: std::collections::BTreeSet<_> = a.acc.arrays().chain(b.acc.arrays()).collect();
    for id in arrays {
        let merged = match (a.acc.get(id), b.acc.get(id)) {
            (Some(x), Some(y)) => SectionSummary {
                read: x.read.union(&y.read),
                exposed: x.exposed.union(&y.exposed),
                write: x.write.union(&y.write),
                must_write: x.must_write.union(&y.must_write),
            },
            (Some(x), None) => x.clone(),
            (None, Some(y)) => y.clone(),
            (None, None) => continue,
        };
        acc.insert(merged);
    }
    NodeSummary {
        acc,
        red: a.red.union(&b.red),
    }
}

/// Extract branch-predicate constraints from an affine comparison:
/// `(positive disjuncts, negative disjuncts)`.
#[allow(clippy::type_complexity)]
fn cond_constraints(
    env: &SymEnv,
    cond: &Expr,
) -> Option<(Vec<Vec<Constraint>>, Vec<Vec<Constraint>>)> {
    let Expr::Binary(op, a, b) = cond else {
        return None;
    };
    let la = env.affine(a)?;
    let lb = env.affine(b)?;
    let single = |c: Constraint| vec![vec![c]];
    Some(match op {
        BinOp::Lt => (
            single(Constraint::lt(&la, &lb)),
            single(Constraint::geq(&la, &lb)),
        ),
        BinOp::Le => (
            single(Constraint::leq(&la, &lb)),
            single(Constraint::lt(&lb, &la)),
        ),
        BinOp::Gt => (
            single(Constraint::lt(&lb, &la)),
            single(Constraint::geq(&lb, &la)),
        ),
        BinOp::Ge => (
            single(Constraint::geq(&la, &lb)),
            single(Constraint::lt(&la, &lb)),
        ),
        BinOp::Eq => (
            single(Constraint::eq(&la, &lb)),
            vec![
                vec![Constraint::lt(&la, &lb)],
                vec![Constraint::lt(&lb, &la)],
            ],
        ),
        BinOp::Ne => (
            vec![
                vec![Constraint::lt(&la, &lb)],
                vec![Constraint::lt(&lb, &la)],
            ],
            single(Constraint::eq(&la, &lb)),
        ),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    fn analyze(src: &str) -> (suif_ir::Program, ArrayDataFlow) {
        let p = parse_program(src).unwrap();
        let df = {
            let ctx = AnalysisCtx::new(&p);
            ArrayDataFlow::analyze(&ctx)
        };
        (p, df)
    }

    fn loop_id(p: &suif_ir::Program, name: &str) -> StmtId {
        let tree = suif_ir::RegionTree::build(p);
        tree.loops.iter().find(|l| l.name == name).unwrap().stmt
    }

    #[test]
    fn loop_summary_covers_iteration_space() {
        let (p, df) = analyze(
            "program t\nproc main() {\n real a[10]\n int i\n do 1 i = 1, 10 {\n a[i] = i\n }\n a[1] = a[2]\n}",
        );
        let ctx = AnalysisCtx::new(&p);
        let l = loop_id(&p, "main/1");
        let closed = &df.stmt_summary[&l];
        let a = p.var_by_name("main", "a").unwrap();
        let s = closed.acc.get(ctx.array_of(a)).unwrap();
        // Must-write covers a[1:10].
        let whole = ctx.whole_section(a);
        assert!(
            whole.provably_subset_of(&s.must_write),
            "M = {}",
            s.must_write.set
        );
        assert!(s.exposed.is_empty());
    }

    #[test]
    fn exposed_reads_survive_partial_writes() {
        let (p, df) = analyze(
            "program t\nproc main() {\n real a[10]\n real acc\n int i\n do 1 i = 1, 10 {\n a[i] = 0\n }\n do 2 i = 1, 10 {\n acc = acc + a[i]\n }\n}",
        );
        let ctx = AnalysisCtx::new(&p);
        let l2 = loop_id(&p, "main/2");
        let a = p.var_by_name("main", "a").unwrap();
        let s = df.stmt_summary[&l2].acc.get(ctx.array_of(a)).unwrap();
        assert!(
            !s.exposed.is_empty(),
            "reads of a are upwards-exposed in loop 2"
        );
    }

    #[test]
    fn recurrence_enhancement_clears_exposed() {
        // psmoo pattern (§5.2.2.3, Fig. 5-4): d(1) written, then the i-loop
        // writes d(i) reading d(i-1) — no upwards-exposed reads of d in the
        // loop body as a whole.
        let (p, df) = analyze(
            r#"program t
const il = 8
proc main() {
  real d[il], t[il]
  int i, k
  do 50 k = 2, 5 {
    d[1] = 0
    do 30 i = 2, il {
      t[i] = d[i - 1] * 0.5
      d[i] = t[i] * 2.0
    }
  }
  print d[1]
}
"#,
        );
        let ctx = AnalysisCtx::new(&p);
        let d = p.var_by_name("main", "d").unwrap();
        let outer = loop_id(&p, "main/50");
        let iter = &df.loop_iter[&outer];
        let s = iter.sum.acc.get(ctx.array_of(d)).unwrap();
        assert!(
            s.exposed.set.prove_empty(),
            "exposed(d) in psmoo body should be empty, got {}",
            s.exposed.set
        );
    }

    #[test]
    fn interprocedural_subarray_write_summary() {
        // Fig. 5-1: CALL init(aif3(k1), n) writes aif3[k1 : k1+n-1].
        let (p, df) = analyze(
            r#"program t
proc init(real q[*], int n) {
  int j
  do j = 1, n {
    q[j] = 0
  }
}
proc main() {
  real aif3[100]
  int k1
  k1 = 11
  call init(aif3[k1], 5)
  aif3[1] = aif3[12]
}
"#,
        );
        let ctx = AnalysisCtx::new(&p);
        let aif3 = p.var_by_name("main", "aif3").unwrap();
        let main = p.proc_by_name("main").unwrap();
        let call_id = main.body[1].id();
        let s = df.stmt_summary[&call_id]
            .acc
            .get(ctx.array_of(aif3))
            .unwrap();
        use suif_poly::Var;
        let at = |v: i64| {
            s.write
                .set
                .contains_point(&|var| if var == Var::Dim(0) { Some(v) } else { None })
                .unwrap()
        };
        // k1 = 11 propagated: writes aif3[11..15].
        assert!(at(11) && at(15), "W = {}", s.write.set);
        assert!(!at(10) && !at(16), "W = {}", s.write.set);
        // And the write is a must-write.
        assert!(!s.must_write.is_empty());
    }

    #[test]
    fn reduction_survives_summarization() {
        let (p, df) = analyze(
            "program t\nproc main() {\n real s, a[10]\n int i\n s = 0\n do 1 i = 1, 10 {\n s = s + a[i]\n }\n print s\n}",
        );
        let ctx = AnalysisCtx::new(&p);
        let l = loop_id(&p, "main/1");
        let s_var = p.var_by_name("main", "s").unwrap();
        let iter = &df.loop_iter[&l];
        assert_eq!(
            iter.sum.red.valid_reduction(ctx.array_of(s_var)),
            Some(crate::RedOp::Add)
        );
    }

    #[test]
    fn print_poisons_reduction_in_same_loop() {
        let (p, df) = analyze(
            "program t\nproc main() {\n real s, a[10]\n int i\n do 1 i = 1, 10 {\n s = s + a[i]\n print s\n }\n}",
        );
        let ctx = AnalysisCtx::new(&p);
        let l = loop_id(&p, "main/1");
        let s_var = p.var_by_name("main", "s").unwrap();
        let iter = &df.loop_iter[&l];
        assert_eq!(iter.sum.red.valid_reduction(ctx.array_of(s_var)), None);
    }

    #[test]
    fn interprocedural_reduction_region() {
        // §6.4: reductions spanning procedures.
        let (p, df) = analyze(
            r#"program t
proc addin(real fax[*], int k) {
  fax[k] = fax[k] + 1.0
}
proc main() {
  real fax[50]
  int i
  do 1 i = 1, 50 {
    call addin(fax, i)
  }
}
"#,
        );
        let ctx = AnalysisCtx::new(&p);
        let l = loop_id(&p, "main/1");
        let fax = p.var_by_name("main", "fax").unwrap();
        let iter = &df.loop_iter[&l];
        assert_eq!(
            iter.sum.red.valid_reduction(ctx.array_of(fax)),
            Some(crate::RedOp::Add),
            "interprocedural reduction must be recognized"
        );
    }

    #[test]
    fn conditional_writes_are_predicated_or_dropped() {
        let (p, df) = analyze(
            "program t\nproc main() {\n real a[10]\n real x\n int i\n read x\n do 1 i = 1, 10 {\n if x > 0 {\n a[i] = 1\n }\n }\n}",
        );
        let ctx = AnalysisCtx::new(&p);
        let l = loop_id(&p, "main/1");
        let a = p.var_by_name("main", "a").unwrap();
        let s = df.stmt_summary[&l].acc.get(ctx.array_of(a)).unwrap();
        // The must-write may be kept *predicated* on the affine condition
        // x > 0 (sound: the section is parameterized per valuation), but it
        // must NOT claim the whole array unconditionally.
        let whole = ctx.whole_section(a);
        assert!(
            !whole.provably_subset_of(&s.must_write),
            "unconditional must-write claimed: {}",
            s.must_write.set
        );
        assert!(!s.write.is_empty());
    }

    #[test]
    fn partitioned_if_writes_are_must() {
        // if i <= 5 writes a[i] else writes a[i] too — both branches write,
        // partition union keeps the must-write.
        let (p, df) = analyze(
            "program t\nproc main() {\n real a[10]\n int i\n do 1 i = 1, 10 {\n if i <= 5 {\n a[i] = 1\n } else {\n a[i] = 2\n }\n }\n}",
        );
        let ctx = AnalysisCtx::new(&p);
        let l = loop_id(&p, "main/1");
        let a = p.var_by_name("main", "a").unwrap();
        let s = df.stmt_summary[&l].acc.get(ctx.array_of(a)).unwrap();
        let whole = ctx.whole_section(a);
        assert!(
            whole.provably_subset_of(&s.must_write),
            "M = {}",
            s.must_write.set
        );
    }
}
