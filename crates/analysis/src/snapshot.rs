//! Durable fact-store snapshots: a versioned, checksummed binary encoding
//! of the store's keys, input hashes, dependency edges, and the values of
//! the cheaply-encodable passes, plus the [`suif_poly`] emptiness-proof
//! memo.  This is what lets a daemon restart warm (§2: the analysis state
//! of an interactive session must outlive any one process).
//!
//! # What is persisted
//!
//! Only facts whose values have a small, stable wire form are encoded:
//! classify verdicts ([`crate::LoopVerdict`]), carried-dependence tables
//! ([`crate::deps::CarriedDeps`]), and the three advisories (contraction,
//! decomposition, block splits).  `Summarize` and `Liveness` facts hold
//! large graph-shaped results that are cheaper to recompute than to encode;
//! they are deliberately *not* persisted (see `docs/pipeline.md`).
//!
//! # Crash safety
//!
//! The file layout is `magic · version · payload-length · FNV-128 checksum ·
//! payload`.  [`write_atomic`] writes a temp file in the same directory and
//! renames it over the target, so a crash mid-write leaves either the old
//! snapshot or none.  [`Snapshot::decode`] verifies magic, version, length,
//! and checksum before touching the payload; any mismatch is a
//! [`SnapshotError`] and the caller cold-starts.  A fact entry that decodes
//! to an unknown pass or a malformed value is dropped individually
//! (degrading that fact to `Absent`), never served wrong.
//!
//! Loaded entries must additionally be re-validated against freshly
//! computed input hashes ([`crate::Parallelizer::expected_fact_hashes`])
//! before import — the snapshot records what *was* true, the hash check
//! proves it still is.

use crate::cache::Fnv128;
use crate::context::ArrayKey;
use crate::contract::ContractionCandidate;
use crate::decomp::{DecompConflict, DecompFact, Partitioning, Stride};
use crate::deps::{CarriedDeps, DepKind};
use crate::parallelize::{LoopPlan, LoopVerdict, StaticDep, VarClass};
use crate::pipeline::{ExportedFact, FactKey, PassId, Scope};
use crate::reduction::RedOp;
use crate::split::BlockSplit;
use std::any::Any;
use std::path::Path;
use std::sync::Arc;
use suif_ir::{CommonId, ProcId, StmtId, VarId};
use suif_poly::{ArrayId, Constraint, ConstraintKind, LinExpr, Var};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SUIFSNAP";

/// Current snapshot format version.  Bump on any wire-format change; a
/// mismatch discards the whole file (cold start), never misreads it.
///
/// History: 1 — initial format; 2 — constraints are normalized on
/// construction (GCD-reduced, equalities sign-canonical), so memo keys
/// written by a version-1 build may not match this build's normal forms.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a snapshot failed to load (the caller cold-starts either way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file is shorter than a header.
    TooShort,
    /// The magic bytes are wrong (not a snapshot file).
    BadMagic,
    /// The version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The payload is shorter than the header's recorded length (torn
    /// write).
    Truncated,
    /// The payload checksum does not match (corruption).
    BadChecksum,
    /// The payload structure itself is malformed.
    Malformed,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "file shorter than a snapshot header"),
            SnapshotError::BadMagic => write!(f, "bad magic (not a snapshot file)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "truncated payload (torn write)"),
            SnapshotError::BadChecksum => write!(f, "payload checksum mismatch (corruption)"),
            SnapshotError::Malformed => write!(f, "malformed payload"),
        }
    }
}

/// An in-memory snapshot: the encodable facts plus the emptiness-proof
/// memo, ready to encode to (or just decoded from) the wire format.
#[derive(Default)]
pub struct Snapshot {
    /// Encodable facts, in deterministic key order.
    pub facts: Vec<ExportedFact>,
    /// Finished emptiness proofs (`prove_empty` memo entries).
    pub prove_empty: Vec<(Vec<Constraint>, bool)>,
    /// Entries dropped during decode because their pass tag or value bytes
    /// were not understood (each degrades to `Absent`).
    pub undecodable: u64,
}

/// Is this pass's value persisted in snapshots?  `Summarize` and `Liveness`
/// results are recompute-on-demand instead.
pub fn is_encodable(pass: PassId) -> bool {
    matches!(
        pass,
        PassId::Classify | PassId::Deps | PassId::Contract | PassId::Decomp | PassId::Split
    )
}

/// Approximate resident bytes of one fact value, by pass.
///
/// Encodable passes measure their wire form (the in-memory layout tracks it
/// within a small constant factor, so `64 + 2×encoded` is a serviceable
/// envelope covering `Arc`/map overhead).  `Summarize` and `Liveness` hold
/// graph-shaped results with no codec; they get a flat charge large enough
/// that a budget sweep treats them as first-class residents.  Used by the
/// [`crate::FactStore`] and [`crate::SharedFactTier`] byte budgets — the
/// accounting only has to be consistent, not exact.
pub fn approx_value_bytes(pass: PassId, value: &Arc<dyn Any + Send + Sync>) -> usize {
    if is_encodable(pass) {
        let mut e = Enc::default();
        encode_value(pass, value, &mut e);
        64 + 2 * e.buf.len()
    } else {
        64 + 4096
    }
}

impl Snapshot {
    /// Build a snapshot from exported store entries (non-encodable passes
    /// are filtered out) and memo entries.
    pub fn new(
        mut facts: Vec<ExportedFact>,
        prove_empty: Vec<(Vec<Constraint>, bool)>,
    ) -> Snapshot {
        facts.retain(|f| is_encodable(f.key.pass));
        facts.sort_by_key(|f| f.key);
        Snapshot {
            facts,
            prove_empty,
            undecodable: 0,
        }
    }

    /// Encode to the complete file byte stream (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Enc::default();
        p.u32(self.facts.len() as u32);
        for f in &self.facts {
            p.u8(pass_tag(f.key.pass));
            p.scope(f.key.scope);
            p.u128(f.hash);
            p.u32(f.deps.len() as u32);
            for d in &f.deps {
                p.u8(pass_tag(d.pass));
                p.scope(d.scope);
            }
            let mut v = Enc::default();
            encode_value(f.key.pass, &f.value, &mut v);
            p.u32(v.buf.len() as u32);
            p.buf.extend_from_slice(&v.buf);
        }
        p.u32(self.prove_empty.len() as u32);
        for (cs, result) in &self.prove_empty {
            p.u32(cs.len() as u32);
            for c in cs {
                p.constraint(c);
            }
            p.u8(*result as u8);
        }

        let mut h = Fnv128::new();
        h.write(&p.buf);
        let mut out = Vec::with_capacity(36 + p.buf.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(p.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&h.0.to_le_bytes());
        out.extend_from_slice(&p.buf);
        out
    }

    /// Decode a complete file byte stream, verifying magic, version,
    /// length, and checksum.  Individual entries with unknown pass tags or
    /// malformed value bytes are dropped (counted in
    /// [`Snapshot::undecodable`]); structural damage to the payload framing
    /// fails the whole snapshot instead.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 36 {
            return Err(SnapshotError::TooShort);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let checksum = u128::from_le_bytes(bytes[20..36].try_into().unwrap());
        let payload = &bytes[36..];
        if payload.len() != len {
            return Err(SnapshotError::Truncated);
        }
        let mut h = Fnv128::new();
        h.write(payload);
        if h.0 != checksum {
            return Err(SnapshotError::BadChecksum);
        }

        let mut d = Dec {
            buf: payload,
            pos: 0,
        };
        let mut snap = Snapshot::default();
        let nfacts = d.u32().ok_or(SnapshotError::Malformed)?;
        for _ in 0..nfacts {
            let pass_byte = d.u8().ok_or(SnapshotError::Malformed)?;
            let scope = d.scope().ok_or(SnapshotError::Malformed)?;
            let hash = d.u128().ok_or(SnapshotError::Malformed)?;
            let ndeps = d.u32().ok_or(SnapshotError::Malformed)?;
            let mut deps = Vec::with_capacity(ndeps.min(1024) as usize);
            let mut deps_ok = true;
            for _ in 0..ndeps {
                let dp = d.u8().ok_or(SnapshotError::Malformed)?;
                let ds = d.scope().ok_or(SnapshotError::Malformed)?;
                match pass_of(dp) {
                    Some(p) => deps.push(FactKey::new(p, ds)),
                    None => deps_ok = false,
                }
            }
            let vlen = d.u32().ok_or(SnapshotError::Malformed)? as usize;
            let vbytes = d.take(vlen).ok_or(SnapshotError::Malformed)?;
            let Some(pass) = pass_of(pass_byte).filter(|p| is_encodable(*p) && deps_ok) else {
                snap.undecodable += 1;
                continue;
            };
            match decode_value(pass, vbytes) {
                Some(value) => {
                    let bytes = approx_value_bytes(pass, &value);
                    snap.facts.push(ExportedFact {
                        key: FactKey::new(pass, scope),
                        hash,
                        deps,
                        bytes,
                        value,
                    });
                }
                None => snap.undecodable += 1,
            }
        }
        let nmemo = d.u32().ok_or(SnapshotError::Malformed)?;
        for _ in 0..nmemo {
            let ncs = d.u32().ok_or(SnapshotError::Malformed)?;
            let mut cs = Vec::with_capacity(ncs.min(1024) as usize);
            for _ in 0..ncs {
                cs.push(d.constraint().ok_or(SnapshotError::Malformed)?);
            }
            let result = d.bool_val().ok_or(SnapshotError::Malformed)?;
            snap.prove_empty.push((cs, result));
        }
        if d.pos != d.buf.len() {
            return Err(SnapshotError::Malformed);
        }
        Ok(snap)
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// then rename.  A crash mid-write leaves the previous snapshot (or no
/// file) — never a torn one under POSIX rename semantics.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "snapshot".into()),
        std::process::id()
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn pass_tag(p: PassId) -> u8 {
    match p {
        PassId::Summarize => 0,
        PassId::Liveness => 1,
        PassId::Classify => 2,
        PassId::Deps => 3,
        PassId::Contract => 4,
        PassId::Decomp => 5,
        PassId::Split => 6,
    }
}

fn pass_of(tag: u8) -> Option<PassId> {
    Some(match tag {
        0 => PassId::Summarize,
        1 => PassId::Liveness,
        2 => PassId::Classify,
        3 => PassId::Deps,
        4 => PassId::Contract,
        5 => PassId::Decomp,
        6 => PassId::Split,
        _ => return None,
    })
}

/// Little-endian byte encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn scope(&mut self, s: Scope) {
        match s {
            Scope::Program => self.u8(0),
            Scope::Proc(p) => {
                self.u8(1);
                self.u32(p.0);
            }
            Scope::Loop(s) => {
                self.u8(2);
                self.u32(s.0);
            }
        }
    }
    fn var(&mut self, v: Var) {
        match v {
            Var::Dim(d) => {
                self.u8(0);
                self.u8(d);
            }
            Var::Sym(s) => {
                self.u8(1);
                self.u32(s);
            }
        }
    }
    fn lin_expr(&mut self, e: &LinExpr) {
        self.i64(e.constant_part());
        self.u32(e.num_vars() as u32);
        for (v, c) in e.terms() {
            self.var(v);
            self.i64(c);
        }
    }
    fn constraint(&mut self, c: &Constraint) {
        self.u8(match c.kind {
            ConstraintKind::GeqZero => 0,
            ConstraintKind::EqZero => 1,
        });
        self.lin_expr(&c.expr);
    }
    fn array_key(&mut self, k: &ArrayKey) {
        match k {
            ArrayKey::Common(c) => {
                self.u8(0);
                self.u32(c.0);
            }
            ArrayKey::Var(v) => {
                self.u8(1);
                self.u32(v.0);
            }
        }
    }
    fn red_op(&mut self, op: RedOp) {
        self.u8(match op {
            RedOp::Add => 0,
            RedOp::Mul => 1,
            RedOp::Min => 2,
            RedOp::Max => 3,
        });
    }
    fn var_class(&mut self, c: &VarClass) {
        match c {
            VarClass::Parallel => self.u8(0),
            VarClass::Privatizable { needs_finalization } => {
                self.u8(1);
                self.u8(*needs_finalization as u8);
            }
            VarClass::Reduction(op) => {
                self.u8(2);
                self.red_op(*op);
            }
            VarClass::Dep => self.u8(3),
        }
    }
    fn classes(&mut self, m: &std::collections::BTreeMap<ArrayId, VarClass>) {
        self.u32(m.len() as u32);
        for (id, c) in m {
            self.u32(id.0);
            self.var_class(c);
        }
    }
    fn stride(&mut self, s: &Stride) {
        match s {
            Stride::Elements(n) => {
                self.u8(0);
                self.i64(*n);
            }
            Stride::Irregular => self.u8(1),
        }
    }
}

/// Bounds-checked little-endian byte decoder; every method returns `None`
/// on underrun or an invalid tag, so damage degrades instead of panicking.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn bool_val(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn scope(&mut self) -> Option<Scope> {
        Some(match self.u8()? {
            0 => Scope::Program,
            1 => Scope::Proc(ProcId(self.u32()?)),
            2 => Scope::Loop(StmtId(self.u32()?)),
            _ => return None,
        })
    }
    fn var(&mut self) -> Option<Var> {
        Some(match self.u8()? {
            0 => Var::Dim(self.u8()?),
            1 => Var::Sym(self.u32()?),
            _ => return None,
        })
    }
    fn lin_expr(&mut self) -> Option<LinExpr> {
        let c = self.i64()?;
        let n = self.u32()?;
        let mut e = LinExpr::constant(c);
        for _ in 0..n {
            let v = self.var()?;
            let coef = self.i64()?;
            e = e.add(&LinExpr::term(v, coef));
        }
        Some(e)
    }
    fn constraint(&mut self) -> Option<Constraint> {
        let kind = self.u8()?;
        let expr = self.lin_expr()?;
        Some(match kind {
            0 => Constraint::geq0(expr),
            1 => Constraint::eq0(expr),
            _ => return None,
        })
    }
    fn array_key(&mut self) -> Option<ArrayKey> {
        Some(match self.u8()? {
            0 => ArrayKey::Common(CommonId(self.u32()?)),
            1 => ArrayKey::Var(VarId(self.u32()?)),
            _ => return None,
        })
    }
    fn red_op(&mut self) -> Option<RedOp> {
        Some(match self.u8()? {
            0 => RedOp::Add,
            1 => RedOp::Mul,
            2 => RedOp::Min,
            3 => RedOp::Max,
            _ => return None,
        })
    }
    fn var_class(&mut self) -> Option<VarClass> {
        Some(match self.u8()? {
            0 => VarClass::Parallel,
            1 => VarClass::Privatizable {
                needs_finalization: self.bool_val()?,
            },
            2 => VarClass::Reduction(self.red_op()?),
            3 => VarClass::Dep,
            _ => return None,
        })
    }
    fn classes(&mut self) -> Option<std::collections::BTreeMap<ArrayId, VarClass>> {
        let n = self.u32()?;
        let mut m = std::collections::BTreeMap::new();
        for _ in 0..n {
            let id = ArrayId(self.u32()?);
            m.insert(id, self.var_class()?);
        }
        Some(m)
    }
    fn stride(&mut self) -> Option<Stride> {
        Some(match self.u8()? {
            0 => Stride::Elements(self.i64()?),
            1 => Stride::Irregular,
            _ => return None,
        })
    }
}

fn encode_verdict(v: &LoopVerdict, e: &mut Enc) {
    match v {
        LoopVerdict::Parallel { plan, classes } => {
            e.u8(0);
            e.u32(plan.private.len() as u32);
            for k in &plan.private {
                e.array_key(k);
            }
            e.u32(plan.finalize_last.len() as u32);
            for k in &plan.finalize_last {
                e.array_key(k);
            }
            e.u32(plan.reductions.len() as u32);
            for (k, op) in &plan.reductions {
                e.array_key(k);
                e.red_op(*op);
            }
            e.classes(classes);
        }
        LoopVerdict::Sequential {
            deps,
            has_io,
            classes,
        } => {
            e.u8(1);
            e.u32(deps.len() as u32);
            for d in deps {
                e.u32(d.object.0);
                e.string(&d.name);
                e.u32(d.vars.len() as u32);
                for v in &d.vars {
                    e.u32(v.0);
                }
                e.u32(d.sites.len() as u32);
                for (s, line, w, call) in &d.sites {
                    e.u32(s.0);
                    e.u32(*line);
                    e.u8(*w as u8);
                    e.u8(*call as u8);
                }
            }
            e.u8(*has_io as u8);
            e.classes(classes);
        }
    }
}

fn decode_verdict(d: &mut Dec<'_>) -> Option<LoopVerdict> {
    Some(match d.u8()? {
        0 => {
            let mut plan = LoopPlan::default();
            for _ in 0..d.u32()? {
                plan.private.push(d.array_key()?);
            }
            for _ in 0..d.u32()? {
                plan.finalize_last.push(d.array_key()?);
            }
            for _ in 0..d.u32()? {
                let k = d.array_key()?;
                plan.reductions.push((k, d.red_op()?));
            }
            LoopVerdict::Parallel {
                plan,
                classes: d.classes()?,
            }
        }
        1 => {
            let ndeps = d.u32()?;
            let mut deps = Vec::with_capacity(ndeps.min(1024) as usize);
            for _ in 0..ndeps {
                let object = ArrayId(d.u32()?);
                let name = d.string()?;
                let mut vars = Vec::new();
                for _ in 0..d.u32()? {
                    vars.push(VarId(d.u32()?));
                }
                let mut sites = Vec::new();
                for _ in 0..d.u32()? {
                    let s = StmtId(d.u32()?);
                    let line = d.u32()?;
                    let w = d.bool_val()?;
                    let call = d.bool_val()?;
                    sites.push((s, line, w, call));
                }
                deps.push(StaticDep {
                    object,
                    name,
                    vars,
                    sites,
                });
            }
            let has_io = d.bool_val()?;
            LoopVerdict::Sequential {
                deps,
                has_io,
                classes: d.classes()?,
            }
        }
        _ => return None,
    })
}

/// Encode one fact value; the pass selects the concrete type behind the
/// `Any`.  A type mismatch encodes an empty payload, which decodes to
/// `None` and drops the entry — degradation, not corruption.
fn encode_value(pass: PassId, value: &Arc<dyn Any + Send + Sync>, e: &mut Enc) {
    match pass {
        PassId::Classify => {
            if let Some(v) = value.downcast_ref::<LoopVerdict>() {
                encode_verdict(v, e);
            }
        }
        PassId::Deps => {
            if let Some(v) = value.downcast_ref::<CarriedDeps>() {
                e.u32(v.len() as u32);
                for (id, kind) in v {
                    e.u32(id.0);
                    e.u8(match kind {
                        None => 0,
                        Some(DepKind::WriteRead) => 1,
                        Some(DepKind::WriteWrite) => 2,
                    });
                }
            }
        }
        PassId::Contract => {
            if let Some(v) = value.downcast_ref::<Vec<ContractionCandidate>>() {
                e.u32(v.len() as u32);
                for c in v {
                    e.u32(c.var.0);
                    e.u32(c.loop_stmt.0);
                    e.u32(c.dim as u32);
                }
            }
        }
        PassId::Decomp => {
            if let Some(v) = value.downcast_ref::<DecompFact>() {
                e.u32(v.partitionings.len() as u32);
                for p in &v.partitionings {
                    e.u32(p.loop_stmt.0);
                    e.string(&p.loop_name);
                    e.u32(p.object.0);
                    e.string(&p.object_name);
                    e.stride(&p.stride);
                    e.u8(p.writes as u8);
                }
                e.u32(v.conflicts.len() as u32);
                for c in &v.conflicts {
                    e.string(&c.object_name);
                    e.string(&c.a.0);
                    e.stride(&c.a.1);
                    e.string(&c.b.0);
                    e.stride(&c.b.1);
                }
            }
        }
        PassId::Split => {
            if let Some(v) = value.downcast_ref::<Vec<BlockSplit>>() {
                e.u32(v.len() as u32);
                for s in v {
                    e.u32(s.block.0);
                    e.string(&s.name);
                    e.u32(s.groups.len() as u32);
                    for g in &s.groups {
                        e.u32(g.len() as u32);
                        for p in g {
                            e.u32(p.0);
                        }
                    }
                }
            }
        }
        PassId::Summarize | PassId::Liveness => {}
    }
}

/// Decode one fact value; `None` drops the entry (degrades to `Absent`).
/// The value must consume its byte slice exactly — trailing bytes mean a
/// format drift this build does not understand.
fn decode_value(pass: PassId, bytes: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
    let mut d = Dec { buf: bytes, pos: 0 };
    let value: Arc<dyn Any + Send + Sync> = match pass {
        PassId::Classify => Arc::new(decode_verdict(&mut d)?),
        PassId::Deps => {
            let n = d.u32()?;
            let mut m = CarriedDeps::new();
            for _ in 0..n {
                let id = ArrayId(d.u32()?);
                let kind = match d.u8()? {
                    0 => None,
                    1 => Some(DepKind::WriteRead),
                    2 => Some(DepKind::WriteWrite),
                    _ => return None,
                };
                m.insert(id, kind);
            }
            Arc::new(m)
        }
        PassId::Contract => {
            let n = d.u32()?;
            let mut v = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let var = VarId(d.u32()?);
                let loop_stmt = StmtId(d.u32()?);
                let dim = d.u32()? as usize;
                v.push(ContractionCandidate {
                    var,
                    loop_stmt,
                    dim,
                });
            }
            Arc::new(v)
        }
        PassId::Decomp => {
            let n = d.u32()?;
            let mut partitionings = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let loop_stmt = StmtId(d.u32()?);
                let loop_name = d.string()?;
                let object = ArrayId(d.u32()?);
                let object_name = d.string()?;
                let stride = d.stride()?;
                let writes = d.bool_val()?;
                partitionings.push(Partitioning {
                    loop_stmt,
                    loop_name,
                    object,
                    object_name,
                    stride,
                    writes,
                });
            }
            let n = d.u32()?;
            let mut conflicts = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let object_name = d.string()?;
                let a = (d.string()?, d.stride()?);
                let b = (d.string()?, d.stride()?);
                conflicts.push(DecompConflict { object_name, a, b });
            }
            Arc::new(DecompFact {
                partitionings,
                conflicts,
            })
        }
        PassId::Split => {
            let n = d.u32()?;
            let mut v = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let block = CommonId(d.u32()?);
                let name = d.string()?;
                let ngroups = d.u32()?;
                let mut groups = Vec::with_capacity(ngroups.min(1024) as usize);
                for _ in 0..ngroups {
                    let mut g = Vec::new();
                    for _ in 0..d.u32()? {
                        g.push(ProcId(d.u32()?));
                    }
                    groups.push(g);
                }
                v.push(BlockSplit {
                    block,
                    name,
                    groups,
                });
            }
            Arc::new(v)
        }
        PassId::Summarize | PassId::Liveness => return None,
    };
    if d.pos != bytes.len() {
        return None;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn verdict_parallel() -> LoopVerdict {
        let mut classes = BTreeMap::new();
        classes.insert(ArrayId(0), VarClass::Parallel);
        classes.insert(
            ArrayId(3),
            VarClass::Privatizable {
                needs_finalization: true,
            },
        );
        classes.insert(ArrayId(7), VarClass::Reduction(RedOp::Max));
        LoopVerdict::Parallel {
            plan: LoopPlan {
                private: vec![ArrayKey::Var(VarId(3))],
                finalize_last: vec![ArrayKey::Common(CommonId(1))],
                reductions: vec![(ArrayKey::Var(VarId(9)), RedOp::Add)],
            },
            classes,
        }
    }

    fn verdict_sequential() -> LoopVerdict {
        LoopVerdict::Sequential {
            deps: vec![StaticDep {
                object: ArrayId(2),
                name: "q".into(),
                vars: vec![VarId(4), VarId(5)],
                sites: vec![(StmtId(11), 3, true, false), (StmtId(12), 4, false, true)],
            }],
            has_io: true,
            classes: BTreeMap::from([(ArrayId(2), VarClass::Dep)]),
        }
    }

    fn fact(
        pass: PassId,
        scope: Scope,
        hash: u128,
        value: Arc<dyn Any + Send + Sync>,
    ) -> ExportedFact {
        let bytes = approx_value_bytes(pass, &value);
        ExportedFact {
            key: FactKey::new(pass, scope),
            hash,
            deps: vec![FactKey::new(PassId::Summarize, Scope::Program)],
            bytes,
            value,
        }
    }

    fn sample_snapshot() -> Snapshot {
        let mut deps_table = CarriedDeps::new();
        deps_table.insert(ArrayId(1), Some(DepKind::WriteRead));
        deps_table.insert(ArrayId(2), None);
        let decomp = DecompFact {
            partitionings: vec![Partitioning {
                loop_stmt: StmtId(5),
                loop_name: "main/1".into(),
                object: ArrayId(0),
                object_name: "a".into(),
                stride: Stride::Elements(16),
                writes: true,
            }],
            conflicts: vec![DecompConflict {
                object_name: "a".into(),
                a: ("main/1".into(), Stride::Elements(1)),
                b: ("main/2".into(), Stride::Irregular),
            }],
        };
        let memo = vec![
            (
                vec![Constraint::geq0(
                    LinExpr::term(Var::Dim(0), 2).add(&LinExpr::constant(-3)),
                )],
                true,
            ),
            (
                vec![
                    Constraint::eq0(LinExpr::term(Var::Sym(17), -1).add(&LinExpr::constant(4))),
                    Constraint::geq0(LinExpr::var(Var::Sym(17))),
                ],
                false,
            ),
        ];
        Snapshot::new(
            vec![
                fact(
                    PassId::Classify,
                    Scope::Loop(StmtId(5)),
                    0xdead_beef,
                    Arc::new(verdict_parallel()),
                ),
                fact(
                    PassId::Classify,
                    Scope::Loop(StmtId(9)),
                    7,
                    Arc::new(verdict_sequential()),
                ),
                fact(
                    PassId::Deps,
                    Scope::Loop(StmtId(5)),
                    8,
                    Arc::new(deps_table),
                ),
                fact(
                    PassId::Contract,
                    Scope::Program,
                    9,
                    Arc::new(vec![ContractionCandidate {
                        var: VarId(1),
                        loop_stmt: StmtId(5),
                        dim: 0,
                    }]),
                ),
                fact(PassId::Decomp, Scope::Program, 10, Arc::new(decomp)),
                fact(
                    PassId::Split,
                    Scope::Program,
                    11,
                    Arc::new(vec![BlockSplit {
                        block: CommonId(0),
                        name: "blk".into(),
                        groups: vec![vec![ProcId(0)], vec![ProcId(1), ProcId(2)]],
                    }]),
                ),
                // Not encodable: must be filtered out by `Snapshot::new`.
                fact(PassId::Summarize, Scope::Program, 1, Arc::new(0u64)),
            ],
            memo,
        )
    }

    #[test]
    fn golden_round_trip_is_bit_identical() {
        let snap = sample_snapshot();
        assert_eq!(snap.facts.len(), 6, "summarize filtered out");
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.undecodable, 0);
        assert_eq!(back.facts.len(), snap.facts.len());
        for (a, b) in snap.facts.iter().zip(back.facts.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.deps, b.deps);
        }
        // Values re-encode to the same bytes (bit-identical round trip).
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.prove_empty, snap.prove_empty);
        // Verdict content survives.
        let v = back.facts[0]
            .value
            .downcast_ref::<LoopVerdict>()
            .expect("classify decodes to a verdict");
        assert_eq!(format!("{v:?}"), format!("{:?}", verdict_parallel()));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample_snapshot().encode();

        assert!(matches!(
            Snapshot::decode(&bytes[..10]),
            Err(SnapshotError::TooShort)
        ));
        // Truncated payload (torn write).
        assert!(matches!(
            Snapshot::decode(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated)
        ));
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xff;
        assert!(matches!(Snapshot::decode(&b), Err(SnapshotError::BadMagic)));
        // Future version.
        let mut b = bytes.clone();
        b[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&b),
            Err(SnapshotError::BadVersion(_))
        ));
        // Any single payload bit flip fails the checksum.
        for probe in [36usize, 40, bytes.len() / 2, bytes.len() - 1] {
            let mut b = bytes.clone();
            b[probe] ^= 0x01;
            assert!(
                matches!(Snapshot::decode(&b), Err(SnapshotError::BadChecksum)),
                "flip at {probe} must fail the checksum"
            );
        }
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("suif_snap_unit_{}", std::process::id()));
        let path = dir.join("facts.snap");
        let bytes = sample_snapshot().encode();
        write_atomic(&path, &bytes).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        // Overwrite with a different snapshot; the file is replaced whole.
        let small = Snapshot::default().encode();
        write_atomic(&path, &small).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), small);
        // No temp files left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
