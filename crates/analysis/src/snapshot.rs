//! Durable fact-store snapshots: a versioned, checksummed binary encoding
//! of the store's keys, input hashes, dependency edges, and the values of
//! the cheaply-encodable passes, plus the [`suif_poly`] emptiness-proof
//! memo.  This is what lets a daemon restart warm (§2: the analysis state
//! of an interactive session must outlive any one process).
//!
//! # What is persisted
//!
//! Every pass, since version 3: classify verdicts ([`crate::LoopVerdict`]),
//! carried-dependence tables ([`crate::deps::CarriedDeps`]), the three
//! advisories (contraction, decomposition, block splits), and — the two
//! passes that dominate a cold run — `<R,E,W,M>` array-section summaries
//! ([`crate::summarize::ArrayDataFlow`]) and liveness flows
//! ([`crate::liveness::LivenessResult`]).  The summary/flow wire form is
//! canonical: hash maps are framed in sorted-key order and polyhedra are
//! written constraint-for-constraint (PR 5 normalizes constraints on
//! construction, so decode re-normalization is the identity), which makes
//! `encode(decode(x)) == x` hold bit-for-bit and lets tests compare facts
//! by their encodings.  Nondeterministic run metadata (schedule traffic,
//! wall-clock) is deliberately outside the wire form; a decoded fact
//! reports zero traffic exactly like any other reused fact.
//!
//! # Crash safety
//!
//! The file layout is `magic · version · payload-length · FNV-128 checksum ·
//! payload`.  [`write_atomic`] writes a temp file in the same directory and
//! renames it over the target, so a crash mid-write leaves either the old
//! snapshot or none.  [`Snapshot::decode`] verifies magic, version, length,
//! and checksum before touching the payload; any mismatch is a
//! [`SnapshotError`] and the caller cold-starts.  A fact entry that decodes
//! to an unknown pass or a malformed value is dropped individually
//! (degrading that fact to `Absent`), never served wrong.
//!
//! Loaded entries must additionally be re-validated against freshly
//! computed input hashes ([`crate::Parallelizer::expected_fact_hashes`])
//! before import — the snapshot records what *was* true, the hash check
//! proves it still is.

use crate::cache::Fnv128;
use crate::context::ArrayKey;
use crate::contract::ContractionCandidate;
use crate::decomp::{DecompConflict, DecompFact, Partitioning, Stride};
use crate::deps::{CarriedDeps, DepKind};
use crate::liveness::{LivenessMode, LivenessResult};
use crate::parallelize::{LoopPlan, LoopVerdict, StaticDep, SummaryFact, VarClass};
use crate::pipeline::{ExportedFact, FactKey, PassId, Scope};
use crate::reduction::{RedEntry, RedOp, RedSummary};
use crate::schedule::ScheduleStats;
use crate::split::BlockSplit;
use crate::summarize::{ArrayDataFlow, LoopIterSummary, NodeSummary};
use std::any::Any;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use suif_ir::{CommonId, ProcId, RegionId, StmtId, VarId};
use suif_poly::{
    AccessSummary, ArrayId, Constraint, ConstraintKind, LinExpr, PolySet, Polyhedron, Section,
    SectionSummary, Var,
};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SUIFSNAP";

/// Current snapshot format version.  Bump on any wire-format change; a
/// mismatch discards the whole file (cold start), never misreads it.
///
/// History: 1 — initial format; 2 — constraints are normalized on
/// construction (GCD-reduced, equalities sign-canonical), so memo keys
/// written by a version-1 build may not match this build's normal forms;
/// 3 — `Summarize` and `Liveness` values gained codecs (previously those
/// passes were filtered out of snapshots entirely), so a version-2 file
/// read by this build would warm-start without the expensive facts and a
/// version-3 file read by an old build would mis-frame them.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Why a snapshot failed to load (the caller cold-starts either way).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file is shorter than a header.
    TooShort,
    /// The magic bytes are wrong (not a snapshot file).
    BadMagic,
    /// The version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// The payload is shorter than the header's recorded length (torn
    /// write).
    Truncated,
    /// The payload checksum does not match (corruption).
    BadChecksum,
    /// The payload structure itself is malformed.
    Malformed,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "file shorter than a snapshot header"),
            SnapshotError::BadMagic => write!(f, "bad magic (not a snapshot file)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "truncated payload (torn write)"),
            SnapshotError::BadChecksum => write!(f, "payload checksum mismatch (corruption)"),
            SnapshotError::Malformed => write!(f, "malformed payload"),
        }
    }
}

/// An in-memory snapshot: the encodable facts plus the emptiness-proof
/// memo, ready to encode to (or just decoded from) the wire format.
#[derive(Default)]
pub struct Snapshot {
    /// Encodable facts, in deterministic key order.
    pub facts: Vec<ExportedFact>,
    /// Finished emptiness proofs (`prove_empty` memo entries).
    pub prove_empty: Vec<(Vec<Constraint>, bool)>,
    /// Entries dropped during decode because their pass tag or value bytes
    /// were not understood (each degrades to `Absent`).
    pub undecodable: u64,
}

/// Is this pass's value persisted in snapshots?  Every pass is, since
/// format version 3 gave `Summarize` and `Liveness` wire forms; the
/// predicate remains the single gate a future non-encodable pass would
/// flip.
pub fn is_encodable(pass: PassId) -> bool {
    matches!(
        pass,
        PassId::Summarize
            | PassId::Liveness
            | PassId::Classify
            | PassId::Deps
            | PassId::Contract
            | PassId::Decomp
            | PassId::Split
    )
}

/// Approximate resident bytes of one fact value, by pass.
///
/// Measures the wire form (the in-memory layout tracks it within a small
/// constant factor, so `64 + 2×encoded` is a serviceable envelope covering
/// `Arc`/map overhead).  Used by the [`crate::FactStore`] and
/// [`crate::SharedFactTier`] byte budgets — the accounting only has to be
/// consistent, not exact.
pub fn approx_value_bytes(pass: PassId, value: &Arc<dyn Any + Send + Sync>) -> usize {
    let mut e = Enc::default();
    encode_value(pass, value, &mut e);
    64 + 2 * e.buf.len()
}

/// One-shot word-folded checksum of a payload body (eight bytes per
/// multiply; see `Fnv128::write_words`).  This is the integrity checksum
/// stored in snapshot headers and log records — it is part of the v3 file
/// format, and deliberately not byte-compatible with the per-byte FNV used
/// for fact content hashes.
fn payload_checksum(payload: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write_words(payload);
    h.0
}

impl Snapshot {
    /// Build a snapshot from exported store entries (non-encodable passes
    /// are filtered out) and memo entries.
    pub fn new(
        mut facts: Vec<ExportedFact>,
        prove_empty: Vec<(Vec<Constraint>, bool)>,
    ) -> Snapshot {
        facts.retain(|f| is_encodable(f.key.pass));
        facts.sort_by_key(|f| f.key);
        Snapshot {
            facts,
            prove_empty,
            undecodable: 0,
        }
    }

    /// Encode to the complete file byte stream (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = encode_payload(&self.facts, &self.prove_empty);
        let checksum = payload_checksum(&payload);
        let mut out = Vec::with_capacity(36 + payload.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a complete file byte stream, verifying magic, version,
    /// length, and checksum.  Individual entries with unknown pass tags or
    /// malformed value bytes are dropped (counted in
    /// [`Snapshot::undecodable`]); structural damage to the payload framing
    /// fails the whole snapshot instead.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 36 {
            return Err(SnapshotError::TooShort);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let checksum = u128::from_le_bytes(bytes[20..36].try_into().unwrap());
        let payload = &bytes[36..];
        if payload.len() != len {
            return Err(SnapshotError::Truncated);
        }
        if payload_checksum(payload) != checksum {
            return Err(SnapshotError::BadChecksum);
        }
        decode_payload(payload)
    }
}

/// Encode a fact/memo set to the shared payload body (no header, no
/// checksum) — the unit both a whole snapshot and one append-log record
/// frame.
fn encode_payload(facts: &[ExportedFact], prove_empty: &[(Vec<Constraint>, bool)]) -> Vec<u8> {
    let mut p = Enc::default();
    p.u32(facts.len() as u32);
    for f in facts {
        p.u8(pass_tag(f.key.pass));
        p.scope(f.key.scope);
        p.u128(f.hash);
        p.u32(f.deps.len() as u32);
        for d in &f.deps {
            p.u8(pass_tag(d.pass));
            p.scope(d.scope);
        }
        let mut v = Enc::default();
        encode_value(f.key.pass, &f.value, &mut v);
        p.u32(v.buf.len() as u32);
        p.buf.extend_from_slice(&v.buf);
    }
    p.u32(prove_empty.len() as u32);
    for (cs, result) in prove_empty {
        p.u32(cs.len() as u32);
        for c in cs {
            p.constraint(c);
        }
        p.u8(*result as u8);
    }
    p.buf
}

/// Decode one payload body (a whole snapshot's or one log record's).
fn decode_payload(payload: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let mut snap = Snapshot::default();
    let nfacts = d.u32().ok_or(SnapshotError::Malformed)?;
    for _ in 0..nfacts {
        let pass_byte = d.u8().ok_or(SnapshotError::Malformed)?;
        let scope = d.scope().ok_or(SnapshotError::Malformed)?;
        let hash = d.u128().ok_or(SnapshotError::Malformed)?;
        let ndeps = d.u32().ok_or(SnapshotError::Malformed)?;
        let mut deps = Vec::with_capacity(ndeps.min(1024) as usize);
        let mut deps_ok = true;
        for _ in 0..ndeps {
            let dp = d.u8().ok_or(SnapshotError::Malformed)?;
            let ds = d.scope().ok_or(SnapshotError::Malformed)?;
            match pass_of(dp) {
                Some(p) => deps.push(FactKey::new(p, ds)),
                None => deps_ok = false,
            }
        }
        let vlen = d.u32().ok_or(SnapshotError::Malformed)? as usize;
        let vbytes = d.take(vlen).ok_or(SnapshotError::Malformed)?;
        let Some(pass) = pass_of(pass_byte).filter(|p| is_encodable(*p) && deps_ok) else {
            snap.undecodable += 1;
            continue;
        };
        match decode_value(pass, vbytes) {
            Some(value) => {
                // Same figure `approx_value_bytes` would compute, without
                // re-encoding: the wire length is already in hand here.
                let bytes = 64 + 2 * vlen;
                snap.facts.push(ExportedFact {
                    key: FactKey::new(pass, scope),
                    hash,
                    deps,
                    bytes,
                    value,
                });
            }
            None => snap.undecodable += 1,
        }
    }
    let nmemo = d.u32().ok_or(SnapshotError::Malformed)?;
    for _ in 0..nmemo {
        let ncs = d.u32().ok_or(SnapshotError::Malformed)?;
        let mut cs = Vec::with_capacity(ncs.min(1024) as usize);
        for _ in 0..ncs {
            cs.push(d.constraint().ok_or(SnapshotError::Malformed)?);
        }
        let result = d.bool_val().ok_or(SnapshotError::Malformed)?;
        snap.prove_empty.push((cs, result));
    }
    if d.pos != d.buf.len() {
        return Err(SnapshotError::Malformed);
    }
    Ok(snap)
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// then rename.  A crash mid-write leaves the previous snapshot (or no
/// file) — never a torn one under POSIX rename semantics.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "snapshot".into()),
        std::process::id()
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Magic bytes opening every snapshot append-log file.
pub const LOG_MAGIC: [u8; 8] = *b"SUIFSLOG";

/// Append-log format version.  Independent of [`SNAPSHOT_VERSION`] — the
/// record payloads reuse the snapshot payload body, so a snapshot format
/// bump invalidates logs through the base-checksum binding, not this.
pub const LOG_VERSION: u32 = 1;

/// Size of the append-log header: magic · version · base checksum.
pub const LOG_HEADER_LEN: usize = 28;

/// Per-record framing overhead: payload length (u32) · FNV-128 checksum.
pub const LOG_RECORD_OVERHEAD: usize = 20;

/// The append-log header.  `base_checksum` is the payload checksum recorded
/// in the base snapshot's header ([`file_checksum`]): a log only replays
/// over the exact base image it was appended against, so a crash between a
/// compaction's base rewrite and its log reset leaves a stale log that is
/// ignored, never misapplied.
pub fn log_header(base_checksum: u128) -> Vec<u8> {
    let mut out = Vec::with_capacity(LOG_HEADER_LEN);
    out.extend_from_slice(&LOG_MAGIC);
    out.extend_from_slice(&LOG_VERSION.to_le_bytes());
    out.extend_from_slice(&base_checksum.to_le_bytes());
    out
}

/// The payload checksum recorded in a snapshot file's header, without
/// decoding the payload.  `None` if the bytes are not a snapshot header.
pub fn file_checksum(bytes: &[u8]) -> Option<u128> {
    if bytes.len() < 36 || bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    Some(u128::from_le_bytes(bytes[20..36].try_into().unwrap()))
}

/// Encode one framed append-log record: `len(u32) · FNV-128 checksum ·
/// payload`, where the payload is the shared snapshot body for the delta
/// facts and memo entries.  Ready to append to an existing log file.
pub fn encode_log_record(
    facts: Vec<ExportedFact>,
    prove_empty: Vec<(Vec<Constraint>, bool)>,
) -> Vec<u8> {
    let snap = Snapshot::new(facts, prove_empty);
    let payload = encode_payload(&snap.facts, &snap.prove_empty);
    let checksum = payload_checksum(&payload);
    let mut out = Vec::with_capacity(LOG_RECORD_OVERHEAD + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A canonical fingerprint of one emptiness-memo entry, used to track which
/// entries have already been persisted (so appends stay O(delta)).
pub fn memo_fingerprint(cs: &[Constraint], result: bool) -> u128 {
    let mut e = Enc::default();
    e.u32(cs.len() as u32);
    for c in cs {
        e.constraint(c);
    }
    e.u8(result as u8);
    payload_checksum(&e.buf)
}

/// What replaying an append-log stream produced.
#[derive(Default)]
pub struct LogReplay {
    /// Delta facts in append order (a later record's fact for the same key
    /// supersedes an earlier one; [`merge_image`] resolves that).
    pub facts: Vec<ExportedFact>,
    /// Delta memo entries in append order.
    pub prove_empty: Vec<(Vec<Constraint>, bool)>,
    /// Per-entry decode degradations inside otherwise valid records.
    pub undecodable: u64,
    /// Complete records replayed.
    pub records: u64,
    /// A torn or corrupt suffix was dropped (the valid prefix still
    /// replayed — an interrupted append loses only its own record).
    pub truncated: bool,
}

/// Replay an append-log byte stream over a base with payload checksum
/// `base_checksum`.  Returns `None` when the log does not apply at all
/// (missing/foreign header, version mismatch, or a header bound to a
/// different base image); a torn or corrupt record ends the replay there,
/// keeping the valid prefix.
pub fn replay_log(bytes: &[u8], base_checksum: u128) -> Option<LogReplay> {
    if bytes.len() < LOG_HEADER_LEN || bytes[..8] != LOG_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != LOG_VERSION {
        return None;
    }
    let bound = u128::from_le_bytes(bytes[12..28].try_into().unwrap());
    if bound != base_checksum {
        return None;
    }
    let mut out = LogReplay::default();
    let mut pos = LOG_HEADER_LEN;
    while pos < bytes.len() {
        if pos + LOG_RECORD_OVERHEAD > bytes.len() {
            out.truncated = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let checksum = u128::from_le_bytes(bytes[pos + 4..pos + 20].try_into().unwrap());
        let Some(end) = pos.checked_add(LOG_RECORD_OVERHEAD + len) else {
            out.truncated = true;
            break;
        };
        if end > bytes.len() {
            out.truncated = true;
            break;
        }
        let payload = &bytes[pos + LOG_RECORD_OVERHEAD..end];
        if payload_checksum(payload) != checksum {
            out.truncated = true;
            break;
        }
        match decode_payload(payload) {
            Ok(snap) => {
                out.facts.extend(snap.facts);
                out.prove_empty.extend(snap.prove_empty);
                out.undecodable += snap.undecodable;
                out.records += 1;
            }
            // A checksummed record that still fails structurally is format
            // drift; stop here like a torn suffix rather than guess.
            Err(_) => {
                out.truncated = true;
                break;
            }
        }
        pos = end;
    }
    Some(out)
}

/// A base snapshot with its append-log replayed over it: the durable image
/// a warm start imports.
pub struct LoadedImage {
    /// Merged facts (log supersedes base per `(key, hash)`; several
    /// hashes may coexist per key), in `(key, hash)` order.
    pub facts: Vec<ExportedFact>,
    /// Base memo entries plus log deltas, fingerprint-deduplicated.
    pub prove_empty: Vec<(Vec<Constraint>, bool)>,
    /// Per-entry decode degradations across base and log.
    pub undecodable: u64,
    /// Payload checksum of the base image (what a continuing log must bind
    /// to).
    pub base_checksum: u128,
    /// Complete log records replayed.
    pub log_records: u64,
    /// A torn/corrupt log suffix was dropped.
    pub log_truncated: bool,
    /// The log did not apply (absent, foreign, or bound to another base).
    pub log_ignored: bool,
}

/// Decode `base_bytes` and replay `log_bytes` (if any) over it.  Base
/// damage fails the whole load ([`SnapshotError`], caller cold-starts);
/// log damage degrades — an inapplicable log is ignored, a torn one keeps
/// its valid prefix.
pub fn merge_image(
    base_bytes: &[u8],
    log_bytes: Option<&[u8]>,
) -> Result<LoadedImage, SnapshotError> {
    let base = Snapshot::decode(base_bytes)?;
    let base_checksum = file_checksum(base_bytes).expect("decoded snapshot has a header");
    let mut out = LoadedImage {
        facts: Vec::new(),
        prove_empty: base.prove_empty,
        undecodable: base.undecodable,
        base_checksum,
        log_records: 0,
        log_truncated: false,
        log_ignored: false,
    };
    // Merge by `(key, hash)`, not key alone: a content-addressed tier
    // legitimately holds several hashes per key (sibling programs sharing
    // stmt ids), and all of them must survive a round trip.  For a
    // key-addressed session store the extra variants are harmless — its
    // expected-hash validation keeps exactly one per key and evicts the
    // rest as stale.
    let mut merged: HashMap<(FactKey, u128), ExportedFact> =
        base.facts.into_iter().map(|f| ((f.key, f.hash), f)).collect();
    match log_bytes {
        None => {}
        Some(lb) => match replay_log(lb, base_checksum) {
            None => out.log_ignored = true,
            Some(replay) => {
                for f in replay.facts {
                    merged.insert((f.key, f.hash), f);
                }
                let mut seen: std::collections::HashSet<u128> = out
                    .prove_empty
                    .iter()
                    .map(|(cs, r)| memo_fingerprint(cs, *r))
                    .collect();
                for (cs, r) in replay.prove_empty {
                    if seen.insert(memo_fingerprint(&cs, r)) {
                        out.prove_empty.push((cs, r));
                    }
                }
                out.undecodable += replay.undecodable;
                out.log_records = replay.records;
                out.log_truncated = replay.truncated;
            }
        },
    }
    out.facts = merged.into_values().collect();
    out.facts.sort_by_key(|f| (f.key, f.hash));
    Ok(out)
}

fn pass_tag(p: PassId) -> u8 {
    match p {
        PassId::Summarize => 0,
        PassId::Liveness => 1,
        PassId::Classify => 2,
        PassId::Deps => 3,
        PassId::Contract => 4,
        PassId::Decomp => 5,
        PassId::Split => 6,
    }
}

fn pass_of(tag: u8) -> Option<PassId> {
    Some(match tag {
        0 => PassId::Summarize,
        1 => PassId::Liveness,
        2 => PassId::Classify,
        3 => PassId::Deps,
        4 => PassId::Contract,
        5 => PassId::Decomp,
        6 => PassId::Split,
        _ => return None,
    })
}

/// Little-endian byte encoder.
#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn scope(&mut self, s: Scope) {
        match s {
            Scope::Program => self.u8(0),
            Scope::Proc(p) => {
                self.u8(1);
                self.u32(p.0);
            }
            Scope::Loop(s) => {
                self.u8(2);
                self.u32(s.0);
            }
        }
    }
    fn var(&mut self, v: Var) {
        match v {
            Var::Dim(d) => {
                self.u8(0);
                self.u8(d);
            }
            Var::Sym(s) => {
                self.u8(1);
                self.u32(s);
            }
        }
    }
    fn lin_expr(&mut self, e: &LinExpr) {
        self.i64(e.constant_part());
        self.u32(e.num_vars() as u32);
        for (v, c) in e.terms() {
            self.var(v);
            self.i64(c);
        }
    }
    fn constraint(&mut self, c: &Constraint) {
        self.u8(match c.kind {
            ConstraintKind::GeqZero => 0,
            ConstraintKind::EqZero => 1,
        });
        self.lin_expr(&c.expr);
    }
    fn array_key(&mut self, k: &ArrayKey) {
        match k {
            ArrayKey::Common(c) => {
                self.u8(0);
                self.u32(c.0);
            }
            ArrayKey::Var(v) => {
                self.u8(1);
                self.u32(v.0);
            }
        }
    }
    fn red_op(&mut self, op: RedOp) {
        self.u8(match op {
            RedOp::Add => 0,
            RedOp::Mul => 1,
            RedOp::Min => 2,
            RedOp::Max => 3,
        });
    }
    fn var_class(&mut self, c: &VarClass) {
        match c {
            VarClass::Parallel => self.u8(0),
            VarClass::Privatizable { needs_finalization } => {
                self.u8(1);
                self.u8(*needs_finalization as u8);
            }
            VarClass::Reduction(op) => {
                self.u8(2);
                self.red_op(*op);
            }
            VarClass::Dep => self.u8(3),
        }
    }
    fn classes(&mut self, m: &std::collections::BTreeMap<ArrayId, VarClass>) {
        self.u32(m.len() as u32);
        for (id, c) in m {
            self.u32(id.0);
            self.var_class(c);
        }
    }
    fn stride(&mut self, s: &Stride) {
        match s {
            Stride::Elements(n) => {
                self.u8(0);
                self.i64(*n);
            }
            Stride::Irregular => self.u8(1),
        }
    }
    fn polyset(&mut self, s: &PolySet) {
        // The raw set-level flag, not `is_approximate()` (which also folds
        // in the per-disjunct flags written below).
        self.u8(s.set_approximate() as u8);
        self.u32(s.disjuncts().len() as u32);
        for p in s.disjuncts() {
            self.u8(p.is_proven_empty() as u8);
            self.u8(p.is_approximate() as u8);
            self.u32(p.constraints().len() as u32);
            for c in p.constraints() {
                self.constraint(c);
            }
        }
    }
    fn section(&mut self, s: &Section) {
        self.u32(s.array.0);
        self.u8(s.ndims);
        self.polyset(&s.set);
    }
    fn section_summary(&mut self, s: &SectionSummary) {
        self.section(&s.read);
        self.section(&s.exposed);
        self.section(&s.write);
        self.section(&s.must_write);
    }
    fn access_summary(&mut self, a: &AccessSummary) {
        // `iter` walks a `BTreeMap`, so the frame order is canonical; the
        // array id and dimensionality ride inside each section.
        self.u32(a.len() as u32);
        for (_, s) in a.iter() {
            self.section_summary(s);
        }
    }
    fn red_summary(&mut self, r: &RedSummary) {
        let entries: Vec<_> = r.iter().collect();
        self.u32(entries.len() as u32);
        for (id, e) in entries {
            self.u32(id.0);
            match e.op {
                None => self.u8(0),
                Some(op) => {
                    self.u8(1);
                    self.red_op(op);
                }
            }
            self.section(&e.red);
            self.section(&e.nonred);
        }
    }
    fn node_summary(&mut self, n: &NodeSummary) {
        self.access_summary(&n.acc);
        self.red_summary(&n.red);
    }
    fn loop_iter_summary(&mut self, l: &LoopIterSummary) {
        self.node_summary(&l.sum);
        self.var(l.index_sym);
        match &l.bounds {
            None => self.u8(0),
            Some((first, last)) => {
                self.u8(1);
                self.lin_expr(first);
                self.lin_expr(last);
            }
        }
        match l.step {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.i64(s);
            }
        }
        self.u32(l.varying.0);
        self.u32(l.varying.1);
        self.u8(l.has_calls as u8);
    }
    /// Frame every map of the data flow in sorted-key order (the maps hash,
    /// so iteration order is not canonical on its own).
    fn data_flow(&mut self, df: &ArrayDataFlow) {
        let mut procs: Vec<_> = df.proc_summary.iter().collect();
        procs.sort_by_key(|(p, _)| p.0);
        self.u32(procs.len() as u32);
        for (p, n) in procs {
            self.u32(p.0);
            self.node_summary(n);
        }
        let mut fresh: Vec<_> = df.proc_fresh.iter().collect();
        fresh.sort_by_key(|(p, _)| p.0);
        self.u32(fresh.len() as u32);
        for (p, (lo, hi)) in fresh {
            self.u32(p.0);
            self.u32(*lo);
            self.u32(*hi);
        }
        let mut stmts: Vec<_> = df.stmt_summary.iter().collect();
        stmts.sort_by_key(|(s, _)| s.0);
        self.u32(stmts.len() as u32);
        for (s, n) in stmts {
            self.u32(s.0);
            self.node_summary(n);
        }
        let mut iters: Vec<_> = df.loop_iter.iter().collect();
        iters.sort_by_key(|(s, _)| s.0);
        self.u32(iters.len() as u32);
        for (s, l) in iters {
            self.u32(s.0);
            self.loop_iter_summary(l);
        }
        let mut plain: Vec<_> = df.loop_closed_plain.iter().collect();
        plain.sort_by_key(|(s, _)| s.0);
        self.u32(plain.len() as u32);
        for (s, a) in plain {
            self.u32(s.0);
            self.access_summary(a);
        }
    }
    fn stmt_arrays(&mut self, m: &HashMap<StmtId, BTreeSet<ArrayId>>) {
        let mut entries: Vec<_> = m.iter().collect();
        entries.sort_by_key(|(s, _)| s.0);
        self.u32(entries.len() as u32);
        for (s, ids) in entries {
            self.u32(s.0);
            self.u32(ids.len() as u32);
            for id in ids {
                self.u32(id.0);
            }
        }
    }
}

/// Bounds-checked little-endian byte decoder; every method returns `None`
/// on underrun or an invalid tag, so damage degrades instead of panicking.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn bool_val(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn scope(&mut self) -> Option<Scope> {
        Some(match self.u8()? {
            0 => Scope::Program,
            1 => Scope::Proc(ProcId(self.u32()?)),
            2 => Scope::Loop(StmtId(self.u32()?)),
            _ => return None,
        })
    }
    fn var(&mut self) -> Option<Var> {
        Some(match self.u8()? {
            0 => Var::Dim(self.u8()?),
            1 => Var::Sym(self.u32()?),
            _ => return None,
        })
    }
    fn lin_expr(&mut self) -> Option<LinExpr> {
        let c = self.i64()?;
        let n = self.u32()?;
        let mut e = LinExpr::constant(c);
        for _ in 0..n {
            let v = self.var()?;
            let coef = self.i64()?;
            e = e.add(&LinExpr::term(v, coef));
        }
        Some(e)
    }
    fn constraint(&mut self) -> Option<Constraint> {
        let kind = self.u8()?;
        let expr = self.lin_expr()?;
        Some(match kind {
            0 => Constraint::geq0(expr),
            1 => Constraint::eq0(expr),
            _ => return None,
        })
    }
    fn array_key(&mut self) -> Option<ArrayKey> {
        Some(match self.u8()? {
            0 => ArrayKey::Common(CommonId(self.u32()?)),
            1 => ArrayKey::Var(VarId(self.u32()?)),
            _ => return None,
        })
    }
    fn red_op(&mut self) -> Option<RedOp> {
        Some(match self.u8()? {
            0 => RedOp::Add,
            1 => RedOp::Mul,
            2 => RedOp::Min,
            3 => RedOp::Max,
            _ => return None,
        })
    }
    fn var_class(&mut self) -> Option<VarClass> {
        Some(match self.u8()? {
            0 => VarClass::Parallel,
            1 => VarClass::Privatizable {
                needs_finalization: self.bool_val()?,
            },
            2 => VarClass::Reduction(self.red_op()?),
            3 => VarClass::Dep,
            _ => return None,
        })
    }
    fn classes(&mut self) -> Option<std::collections::BTreeMap<ArrayId, VarClass>> {
        let n = self.u32()?;
        let mut m = std::collections::BTreeMap::new();
        for _ in 0..n {
            let id = ArrayId(self.u32()?);
            m.insert(id, self.var_class()?);
        }
        Some(m)
    }
    fn stride(&mut self) -> Option<Stride> {
        Some(match self.u8()? {
            0 => Stride::Elements(self.i64()?),
            1 => Stride::Irregular,
            _ => return None,
        })
    }
    fn polyset(&mut self) -> Option<PolySet> {
        let approx = self.bool_val()?;
        let n = self.u32()?;
        let mut disjuncts = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            let empty = self.bool_val()?;
            let papprox = self.bool_val()?;
            let ncs = self.u32()?;
            let mut cs = Vec::with_capacity(ncs.min(1024) as usize);
            for _ in 0..ncs {
                cs.push(self.constraint()?);
            }
            // `from_parts`, not `push`/`from_constraints`: the encoded parts
            // already went through normalization, subsumption, and widening
            // when first built, and re-running those reductions would change
            // the representation (breaking bit-identical round trips).
            disjuncts.push(Polyhedron::from_parts(cs, empty, papprox));
        }
        Some(PolySet::from_parts(disjuncts, approx))
    }
    fn section(&mut self) -> Option<Section> {
        let array = ArrayId(self.u32()?);
        let ndims = self.u8()?;
        let set = self.polyset()?;
        Some(Section { array, ndims, set })
    }
    fn section_summary(&mut self) -> Option<SectionSummary> {
        Some(SectionSummary {
            read: self.section()?,
            exposed: self.section()?,
            write: self.section()?,
            must_write: self.section()?,
        })
    }
    fn access_summary(&mut self) -> Option<AccessSummary> {
        let n = self.u32()?;
        let mut a = AccessSummary::empty();
        for _ in 0..n {
            a.insert(self.section_summary()?);
        }
        Some(a)
    }
    fn red_summary(&mut self) -> Option<RedSummary> {
        let n = self.u32()?;
        let mut r = RedSummary::empty();
        for _ in 0..n {
            let id = ArrayId(self.u32()?);
            let op = match self.u8()? {
                0 => None,
                1 => Some(self.red_op()?),
                _ => return None,
            };
            let red = self.section()?;
            let nonred = self.section()?;
            r.insert_entry(id, RedEntry { op, red, nonred });
        }
        Some(r)
    }
    fn node_summary(&mut self) -> Option<NodeSummary> {
        Some(NodeSummary {
            acc: self.access_summary()?,
            red: self.red_summary()?,
        })
    }
    fn loop_iter_summary(&mut self) -> Option<LoopIterSummary> {
        let sum = self.node_summary()?;
        let index_sym = self.var()?;
        let bounds = match self.u8()? {
            0 => None,
            1 => Some((self.lin_expr()?, self.lin_expr()?)),
            _ => return None,
        };
        let step = match self.u8()? {
            0 => None,
            1 => Some(self.i64()?),
            _ => return None,
        };
        let varying = (self.u32()?, self.u32()?);
        let has_calls = self.bool_val()?;
        Some(LoopIterSummary {
            sum,
            index_sym,
            bounds,
            step,
            varying,
            has_calls,
        })
    }
    fn data_flow(&mut self) -> Option<ArrayDataFlow> {
        let mut df = ArrayDataFlow::default();
        for _ in 0..self.u32()? {
            let p = ProcId(self.u32()?);
            df.proc_summary.insert(p, self.node_summary()?);
        }
        for _ in 0..self.u32()? {
            let p = ProcId(self.u32()?);
            let lo = self.u32()?;
            let hi = self.u32()?;
            df.proc_fresh.insert(p, (lo, hi));
        }
        for _ in 0..self.u32()? {
            let s = StmtId(self.u32()?);
            df.stmt_summary.insert(s, self.node_summary()?);
        }
        for _ in 0..self.u32()? {
            let s = StmtId(self.u32()?);
            df.loop_iter.insert(s, self.loop_iter_summary()?);
        }
        for _ in 0..self.u32()? {
            let s = StmtId(self.u32()?);
            df.loop_closed_plain.insert(s, self.access_summary()?);
        }
        Some(df)
    }
    fn stmt_arrays(&mut self) -> Option<HashMap<StmtId, BTreeSet<ArrayId>>> {
        let n = self.u32()?;
        let mut m = HashMap::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            let s = StmtId(self.u32()?);
            let k = self.u32()?;
            let mut ids = BTreeSet::new();
            for _ in 0..k {
                ids.insert(ArrayId(self.u32()?));
            }
            m.insert(s, ids);
        }
        Some(m)
    }
}

fn encode_verdict(v: &LoopVerdict, e: &mut Enc) {
    match v {
        LoopVerdict::Parallel { plan, classes } => {
            e.u8(0);
            e.u32(plan.private.len() as u32);
            for k in &plan.private {
                e.array_key(k);
            }
            e.u32(plan.finalize_last.len() as u32);
            for k in &plan.finalize_last {
                e.array_key(k);
            }
            e.u32(plan.reductions.len() as u32);
            for (k, op) in &plan.reductions {
                e.array_key(k);
                e.red_op(*op);
            }
            e.classes(classes);
        }
        LoopVerdict::Sequential {
            deps,
            has_io,
            classes,
        } => {
            e.u8(1);
            e.u32(deps.len() as u32);
            for d in deps {
                e.u32(d.object.0);
                e.string(&d.name);
                e.u32(d.vars.len() as u32);
                for v in &d.vars {
                    e.u32(v.0);
                }
                e.u32(d.sites.len() as u32);
                for (s, line, w, call) in &d.sites {
                    e.u32(s.0);
                    e.u32(*line);
                    e.u8(*w as u8);
                    e.u8(*call as u8);
                }
            }
            e.u8(*has_io as u8);
            e.classes(classes);
        }
    }
}

fn decode_verdict(d: &mut Dec<'_>) -> Option<LoopVerdict> {
    Some(match d.u8()? {
        0 => {
            let mut plan = LoopPlan::default();
            for _ in 0..d.u32()? {
                plan.private.push(d.array_key()?);
            }
            for _ in 0..d.u32()? {
                plan.finalize_last.push(d.array_key()?);
            }
            for _ in 0..d.u32()? {
                let k = d.array_key()?;
                plan.reductions.push((k, d.red_op()?));
            }
            LoopVerdict::Parallel {
                plan,
                classes: d.classes()?,
            }
        }
        1 => {
            let ndeps = d.u32()?;
            let mut deps = Vec::with_capacity(ndeps.min(1024) as usize);
            for _ in 0..ndeps {
                let object = ArrayId(d.u32()?);
                let name = d.string()?;
                let mut vars = Vec::new();
                for _ in 0..d.u32()? {
                    vars.push(VarId(d.u32()?));
                }
                let mut sites = Vec::new();
                for _ in 0..d.u32()? {
                    let s = StmtId(d.u32()?);
                    let line = d.u32()?;
                    let w = d.bool_val()?;
                    let call = d.bool_val()?;
                    sites.push((s, line, w, call));
                }
                deps.push(StaticDep {
                    object,
                    name,
                    vars,
                    sites,
                });
            }
            let has_io = d.bool_val()?;
            LoopVerdict::Sequential {
                deps,
                has_io,
                classes: d.classes()?,
            }
        }
        _ => return None,
    })
}

/// Encode one fact value; the pass selects the concrete type behind the
/// `Any`.  A type mismatch encodes an empty payload, which decodes to
/// `None` and drops the entry — degradation, not corruption.
fn encode_value(pass: PassId, value: &Arc<dyn Any + Send + Sync>, e: &mut Enc) {
    match pass {
        PassId::Classify => {
            if let Some(v) = value.downcast_ref::<LoopVerdict>() {
                encode_verdict(v, e);
            }
        }
        PassId::Deps => {
            if let Some(v) = value.downcast_ref::<CarriedDeps>() {
                e.u32(v.len() as u32);
                for (id, kind) in v {
                    e.u32(id.0);
                    e.u8(match kind {
                        None => 0,
                        Some(DepKind::WriteRead) => 1,
                        Some(DepKind::WriteWrite) => 2,
                    });
                }
            }
        }
        PassId::Contract => {
            if let Some(v) = value.downcast_ref::<Vec<ContractionCandidate>>() {
                e.u32(v.len() as u32);
                for c in v {
                    e.u32(c.var.0);
                    e.u32(c.loop_stmt.0);
                    e.u32(c.dim as u32);
                }
            }
        }
        PassId::Decomp => {
            if let Some(v) = value.downcast_ref::<DecompFact>() {
                e.u32(v.partitionings.len() as u32);
                for p in &v.partitionings {
                    e.u32(p.loop_stmt.0);
                    e.string(&p.loop_name);
                    e.u32(p.object.0);
                    e.string(&p.object_name);
                    e.stride(&p.stride);
                    e.u8(p.writes as u8);
                }
                e.u32(v.conflicts.len() as u32);
                for c in &v.conflicts {
                    e.string(&c.object_name);
                    e.string(&c.a.0);
                    e.stride(&c.a.1);
                    e.string(&c.b.0);
                    e.stride(&c.b.1);
                }
            }
        }
        PassId::Split => {
            if let Some(v) = value.downcast_ref::<Vec<BlockSplit>>() {
                e.u32(v.len() as u32);
                for s in v {
                    e.u32(s.block.0);
                    e.string(&s.name);
                    e.u32(s.groups.len() as u32);
                    for g in &s.groups {
                        e.u32(g.len() as u32);
                        for p in g {
                            e.u32(p.0);
                        }
                    }
                }
            }
        }
        PassId::Summarize => {
            // Only the data flow is wire-worthy: `stats` records how the
            // computing run was scheduled (thread counts, wall-clock) —
            // nondeterministic metadata a reused fact reports as zero anyway.
            if let Some(v) = value.downcast_ref::<SummaryFact>() {
                e.data_flow(&v.df);
            }
        }
        PassId::Liveness => {
            if let Some(v) = value.downcast_ref::<LivenessResult>() {
                e.u8(match v.mode {
                    LivenessMode::FlowInsensitive => 0,
                    LivenessMode::OneBit => 1,
                    LivenessMode::Full => 2,
                });
                e.stmt_arrays(&v.written);
                e.stmt_arrays(&v.live_after_write);
                match &v.after_full {
                    None => e.u8(0),
                    Some(m) => {
                        e.u8(1);
                        let mut entries: Vec<_> = m.iter().collect();
                        entries.sort_by_key(|(r, _)| r.0);
                        e.u32(entries.len() as u32);
                        for (r, a) in entries {
                            e.u32(r.0);
                            e.access_summary(a);
                        }
                    }
                }
            }
        }
    }
}

/// Decode one fact value; `None` drops the entry (degrades to `Absent`).
/// The value must consume its byte slice exactly — trailing bytes mean a
/// format drift this build does not understand.
fn decode_value(pass: PassId, bytes: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
    let mut d = Dec { buf: bytes, pos: 0 };
    let value: Arc<dyn Any + Send + Sync> = match pass {
        PassId::Classify => Arc::new(decode_verdict(&mut d)?),
        PassId::Deps => {
            let n = d.u32()?;
            let mut m = CarriedDeps::new();
            for _ in 0..n {
                let id = ArrayId(d.u32()?);
                let kind = match d.u8()? {
                    0 => None,
                    1 => Some(DepKind::WriteRead),
                    2 => Some(DepKind::WriteWrite),
                    _ => return None,
                };
                m.insert(id, kind);
            }
            Arc::new(m)
        }
        PassId::Contract => {
            let n = d.u32()?;
            let mut v = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let var = VarId(d.u32()?);
                let loop_stmt = StmtId(d.u32()?);
                let dim = d.u32()? as usize;
                v.push(ContractionCandidate {
                    var,
                    loop_stmt,
                    dim,
                });
            }
            Arc::new(v)
        }
        PassId::Decomp => {
            let n = d.u32()?;
            let mut partitionings = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let loop_stmt = StmtId(d.u32()?);
                let loop_name = d.string()?;
                let object = ArrayId(d.u32()?);
                let object_name = d.string()?;
                let stride = d.stride()?;
                let writes = d.bool_val()?;
                partitionings.push(Partitioning {
                    loop_stmt,
                    loop_name,
                    object,
                    object_name,
                    stride,
                    writes,
                });
            }
            let n = d.u32()?;
            let mut conflicts = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let object_name = d.string()?;
                let a = (d.string()?, d.stride()?);
                let b = (d.string()?, d.stride()?);
                conflicts.push(DecompConflict { object_name, a, b });
            }
            Arc::new(DecompFact {
                partitionings,
                conflicts,
            })
        }
        PassId::Split => {
            let n = d.u32()?;
            let mut v = Vec::with_capacity(n.min(1024) as usize);
            for _ in 0..n {
                let block = CommonId(d.u32()?);
                let name = d.string()?;
                let ngroups = d.u32()?;
                let mut groups = Vec::with_capacity(ngroups.min(1024) as usize);
                for _ in 0..ngroups {
                    let mut g = Vec::new();
                    for _ in 0..d.u32()? {
                        g.push(ProcId(d.u32()?));
                    }
                    groups.push(g);
                }
                v.push(BlockSplit {
                    block,
                    name,
                    groups,
                });
            }
            Arc::new(v)
        }
        PassId::Summarize => Arc::new(SummaryFact {
            df: Arc::new(d.data_flow()?),
            // A decoded fact is a reused fact: zero schedule traffic, like
            // `analyze_in`'s own reuse path.
            stats: ScheduleStats::default(),
        }),
        PassId::Liveness => {
            let mode = match d.u8()? {
                0 => LivenessMode::FlowInsensitive,
                1 => LivenessMode::OneBit,
                2 => LivenessMode::Full,
                _ => return None,
            };
            let written = d.stmt_arrays()?;
            let live_after_write = d.stmt_arrays()?;
            let after_full = match d.u8()? {
                0 => None,
                1 => {
                    let n = d.u32()?;
                    let mut m = HashMap::with_capacity(n.min(1024) as usize);
                    for _ in 0..n {
                        let r = RegionId(d.u32()?);
                        m.insert(r, d.access_summary()?);
                    }
                    Some(m)
                }
                _ => return None,
            };
            Arc::new(LivenessResult {
                mode,
                written,
                live_after_write,
                after_full,
                elapsed: Duration::ZERO,
            })
        }
    };
    if d.pos != bytes.len() {
        return None;
    }
    Some(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn verdict_parallel() -> LoopVerdict {
        let mut classes = BTreeMap::new();
        classes.insert(ArrayId(0), VarClass::Parallel);
        classes.insert(
            ArrayId(3),
            VarClass::Privatizable {
                needs_finalization: true,
            },
        );
        classes.insert(ArrayId(7), VarClass::Reduction(RedOp::Max));
        LoopVerdict::Parallel {
            plan: LoopPlan {
                private: vec![ArrayKey::Var(VarId(3))],
                finalize_last: vec![ArrayKey::Common(CommonId(1))],
                reductions: vec![(ArrayKey::Var(VarId(9)), RedOp::Add)],
            },
            classes,
        }
    }

    fn verdict_sequential() -> LoopVerdict {
        LoopVerdict::Sequential {
            deps: vec![StaticDep {
                object: ArrayId(2),
                name: "q".into(),
                vars: vec![VarId(4), VarId(5)],
                sites: vec![(StmtId(11), 3, true, false), (StmtId(12), 4, false, true)],
            }],
            has_io: true,
            classes: BTreeMap::from([(ArrayId(2), VarClass::Dep)]),
        }
    }

    fn sample_section(id: u32) -> Section {
        let poly = Polyhedron::from_constraints([
            Constraint::geq0(LinExpr::var(Var::Dim(0))),
            Constraint::geq0(LinExpr::constant(9).add(&LinExpr::term(Var::Dim(0), -1))),
        ]);
        Section {
            array: ArrayId(id),
            ndims: 1,
            set: PolySet::from_parts(vec![poly], false),
        }
    }

    fn sample_section_summary(id: u32) -> SectionSummary {
        SectionSummary {
            read: sample_section(id),
            exposed: sample_section(id),
            write: sample_section(id),
            must_write: sample_section(id),
        }
    }

    fn sample_summary_fact() -> SummaryFact {
        let mut acc = AccessSummary::empty();
        acc.insert(sample_section_summary(0));
        let mut red = RedSummary::empty();
        red.insert_entry(
            ArrayId(2),
            RedEntry {
                op: Some(RedOp::Add),
                red: sample_section(2),
                nonred: Section::empty(ArrayId(2), 1),
            },
        );
        let node = NodeSummary { acc, red };
        let mut df = ArrayDataFlow::default();
        df.proc_summary.insert(ProcId(0), node.clone());
        df.proc_fresh.insert(ProcId(0), (4, 7));
        df.stmt_summary.insert(StmtId(3), node.clone());
        df.loop_iter.insert(
            StmtId(3),
            LoopIterSummary {
                sum: node.clone(),
                index_sym: Var::Sym(9),
                bounds: Some((LinExpr::constant(1), LinExpr::var(Var::Sym(2)))),
                step: Some(1),
                varying: (4, 7),
                has_calls: false,
            },
        );
        df.loop_closed_plain.insert(StmtId(3), node.acc.clone());
        SummaryFact {
            df: Arc::new(df),
            stats: ScheduleStats::default(),
        }
    }

    fn sample_liveness() -> LivenessResult {
        let mut after = HashMap::new();
        let mut acc = AccessSummary::empty();
        acc.insert(sample_section_summary(0));
        after.insert(RegionId(1), acc);
        LivenessResult {
            mode: LivenessMode::Full,
            written: HashMap::from([(StmtId(3), BTreeSet::from([ArrayId(0), ArrayId(2)]))]),
            live_after_write: HashMap::from([(StmtId(3), BTreeSet::from([ArrayId(0)]))]),
            after_full: Some(after),
            // Run metadata: must NOT survive the round trip (decodes as zero).
            elapsed: Duration::from_secs(5),
        }
    }

    fn fact(
        pass: PassId,
        scope: Scope,
        hash: u128,
        value: Arc<dyn Any + Send + Sync>,
    ) -> ExportedFact {
        let bytes = approx_value_bytes(pass, &value);
        ExportedFact {
            key: FactKey::new(pass, scope),
            hash,
            deps: vec![FactKey::new(PassId::Summarize, Scope::Program)],
            bytes,
            value,
        }
    }

    fn sample_snapshot() -> Snapshot {
        let mut deps_table = CarriedDeps::new();
        deps_table.insert(ArrayId(1), Some(DepKind::WriteRead));
        deps_table.insert(ArrayId(2), None);
        let decomp = DecompFact {
            partitionings: vec![Partitioning {
                loop_stmt: StmtId(5),
                loop_name: "main/1".into(),
                object: ArrayId(0),
                object_name: "a".into(),
                stride: Stride::Elements(16),
                writes: true,
            }],
            conflicts: vec![DecompConflict {
                object_name: "a".into(),
                a: ("main/1".into(), Stride::Elements(1)),
                b: ("main/2".into(), Stride::Irregular),
            }],
        };
        let memo = vec![
            (
                vec![Constraint::geq0(
                    LinExpr::term(Var::Dim(0), 2).add(&LinExpr::constant(-3)),
                )],
                true,
            ),
            (
                vec![
                    Constraint::eq0(LinExpr::term(Var::Sym(17), -1).add(&LinExpr::constant(4))),
                    Constraint::geq0(LinExpr::var(Var::Sym(17))),
                ],
                false,
            ),
        ];
        Snapshot::new(
            vec![
                fact(
                    PassId::Classify,
                    Scope::Loop(StmtId(5)),
                    0xdead_beef,
                    Arc::new(verdict_parallel()),
                ),
                fact(
                    PassId::Classify,
                    Scope::Loop(StmtId(9)),
                    7,
                    Arc::new(verdict_sequential()),
                ),
                fact(
                    PassId::Deps,
                    Scope::Loop(StmtId(5)),
                    8,
                    Arc::new(deps_table),
                ),
                fact(
                    PassId::Contract,
                    Scope::Program,
                    9,
                    Arc::new(vec![ContractionCandidate {
                        var: VarId(1),
                        loop_stmt: StmtId(5),
                        dim: 0,
                    }]),
                ),
                fact(PassId::Decomp, Scope::Program, 10, Arc::new(decomp)),
                fact(
                    PassId::Split,
                    Scope::Program,
                    11,
                    Arc::new(vec![BlockSplit {
                        block: CommonId(0),
                        name: "blk".into(),
                        groups: vec![vec![ProcId(0)], vec![ProcId(1), ProcId(2)]],
                    }]),
                ),
                fact(
                    PassId::Summarize,
                    Scope::Program,
                    1,
                    Arc::new(sample_summary_fact()),
                ),
                fact(
                    PassId::Liveness,
                    Scope::Program,
                    2,
                    Arc::new(sample_liveness()),
                ),
            ],
            memo,
        )
    }

    #[test]
    fn golden_round_trip_is_bit_identical() {
        let snap = sample_snapshot();
        assert_eq!(snap.facts.len(), 8, "every pass is encodable");
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.undecodable, 0);
        assert_eq!(back.facts.len(), snap.facts.len());
        for (a, b) in snap.facts.iter().zip(back.facts.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.deps, b.deps);
        }
        // Values re-encode to the same bytes (bit-identical round trip).
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.prove_empty, snap.prove_empty);
        // Verdict content survives.
        let classify = back
            .facts
            .iter()
            .find(|f| f.key == FactKey::new(PassId::Classify, Scope::Loop(StmtId(5))))
            .unwrap();
        let v = classify
            .value
            .downcast_ref::<LoopVerdict>()
            .expect("classify decodes to a verdict");
        assert_eq!(format!("{v:?}"), format!("{:?}", verdict_parallel()));
        // The summary's data flow survives structurally.
        let summarize = back
            .facts
            .iter()
            .find(|f| f.key.pass == PassId::Summarize)
            .unwrap();
        let sf = summarize
            .value
            .downcast_ref::<SummaryFact>()
            .expect("summarize decodes to a summary fact");
        let want = sample_summary_fact();
        assert_eq!(sf.df.proc_summary.len(), want.df.proc_summary.len());
        assert_eq!(sf.df.proc_fresh[&ProcId(0)], (4, 7));
        assert_eq!(sf.df.loop_iter[&StmtId(3)].step, Some(1));
        assert_eq!(sf.stats.summarized, 0, "decoded facts report zero traffic");
        // Liveness flows survive; run metadata does not.
        let liveness = back
            .facts
            .iter()
            .find(|f| f.key.pass == PassId::Liveness)
            .unwrap();
        let lr = liveness
            .value
            .downcast_ref::<LivenessResult>()
            .expect("liveness decodes to a result");
        assert!(matches!(lr.mode, LivenessMode::Full));
        assert_eq!(lr.written[&StmtId(3)].len(), 2);
        assert!(lr.after_full.as_ref().unwrap().contains_key(&RegionId(1)));
        assert_eq!(lr.elapsed, Duration::ZERO);
    }

    #[test]
    fn type_mismatched_value_degrades_to_undecodable() {
        // A wrong concrete type behind the `Any` encodes an empty payload,
        // which fails to decode and drops the one entry — never the file.
        let snap = Snapshot::new(
            vec![fact(PassId::Summarize, Scope::Program, 1, Arc::new(0u64))],
            vec![],
        );
        assert_eq!(snap.facts.len(), 1);
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.facts.len(), 0);
        assert_eq!(back.undecodable, 1);
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample_snapshot().encode();

        assert!(matches!(
            Snapshot::decode(&bytes[..10]),
            Err(SnapshotError::TooShort)
        ));
        // Truncated payload (torn write).
        assert!(matches!(
            Snapshot::decode(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated)
        ));
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xff;
        assert!(matches!(Snapshot::decode(&b), Err(SnapshotError::BadMagic)));
        // Future version.
        let mut b = bytes.clone();
        b[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&b),
            Err(SnapshotError::BadVersion(_))
        ));
        // Any single payload bit flip fails the checksum.
        for probe in [36usize, 40, bytes.len() / 2, bytes.len() - 1] {
            let mut b = bytes.clone();
            b[probe] ^= 0x01;
            assert!(
                matches!(Snapshot::decode(&b), Err(SnapshotError::BadChecksum)),
                "flip at {probe} must fail the checksum"
            );
        }
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("suif_snap_unit_{}", std::process::id()));
        let path = dir.join("facts.snap");
        let bytes = sample_snapshot().encode();
        write_atomic(&path, &bytes).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        // Overwrite with a different snapshot; the file is replaced whole.
        let small = Snapshot::default().encode();
        write_atomic(&path, &small).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), small);
        // No temp files left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
