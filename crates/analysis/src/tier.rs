//! The process-wide shared fact tier: a content-addressed store of finished
//! analysis facts, shared by every session of a multi-tenant daemon.
//!
//! A [`crate::Pass`] is a *pure function of its input hash* (the
//! [`crate::pipeline`] contract), and every input hash folds the region
//! content keys, the configuration, and the resolved assertion marks that
//! affect the fact.  Two sessions demanding a fact under the same
//! `(pass, hash)` pair are therefore asking for interchangeable values — so
//! the tier can hand one session's finished fact to another without any
//! notion of which program, session, or assertion set produced it.
//!
//! # Relationship to the per-session [`crate::FactStore`]
//!
//! The tier sits *under* each session's store ([`crate::FactStore`] built
//! with [`crate::FactStore::with_shared`]).  The session store stays the
//! overlay: it owns the `(pass, scope)` keyed slots, the `Running` in-flight
//! state machine, and the invalidation edges.  The tier only ever holds
//! finished, valid values keyed purely by content — it has **no**
//! invalidation: a fact whose inputs change simply stops being looked up
//! (its hash no longer matches any demand), and an *assertion* folds into
//! the demanded hash itself, so one tenant's asserted facts live at
//! different tier keys than another tenant's clean ones.  Session-scoped
//! invalidation (`assert`, `reload`) touches only the overlay.
//!
//! # Memory budget
//!
//! Entries carry an approximate byte size ([`crate::snapshot`]'s sizing of
//! the value wire form).  With a budget set, inserts that push the tier
//! over it trigger a second-chance (clock) sweep across the shards: each
//! entry gets one round of grace via its `referenced` bit — set on every
//! hit, cleared by a passing sweep — before being evicted.  Evicting is
//! always sound (the next demand recomputes the same value by purity), so
//! the sweep never needs to coordinate with readers.

use crate::pipeline::{ExportedFact, FactKey, PassId};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independently locked shards (mirrors the session store).
const TIER_SHARDS: usize = 16;

struct TierEntry {
    value: Arc<dyn Any + Send + Sync>,
    /// Approximate resident bytes of `value` (see
    /// [`crate::snapshot::approx_value_bytes`]).
    bytes: usize,
    /// Second-chance bit: set on every hit, cleared by a passing eviction
    /// sweep; an unreferenced entry is evicted on the sweep's next visit.
    referenced: bool,
    /// A representative store key (the key of the first session to publish
    /// the fact) — only used to round-trip through the snapshot codec,
    /// which addresses facts by `(key, hash)`.
    key: FactKey,
    /// Dependency edges recorded by the publishing session, installed into
    /// an overlay on a hit so session-scoped invalidation keeps
    /// propagating through shared facts.
    deps: Vec<FactKey>,
    /// Session id of the first publisher ([`WARM_START_OWNER`] for facts
    /// seeded from a snapshot).  Drives per-session resident accounting and
    /// eviction fairness; irrelevant to fact identity (content-addressed).
    owner: u64,
}

/// Owner id credited for facts installed by a warm-start import rather
/// than a live session.
pub const WARM_START_OWNER: u64 = 0;

#[derive(Default)]
struct TierShard {
    map: Mutex<HashMap<(PassId, u128), TierEntry>>,
}

/// Counter snapshot of one [`SharedFactTier`] (the daemon's `stats.tier`
/// payload).
#[derive(Clone, Copy, Debug, Default)]
pub struct TierStats {
    /// Lookups answered from the tier.
    pub hits: u64,
    /// Lookups that found nothing (the session computes and publishes).
    pub misses: u64,
    /// Facts published (first insert of a `(pass, hash)` pair).
    pub inserts: u64,
    /// Entries evicted by the budget sweep.
    pub evicted: u64,
    /// Approximate bytes reclaimed by eviction.
    pub evicted_bytes: u64,
    /// Approximate resident bytes right now.
    pub resident_bytes: u64,
    /// Resident entries right now.
    pub resident_entries: u64,
    /// High-water mark of resident bytes over the tier's lifetime (eviction
    /// lowers `resident_bytes` but never this) — the peak memory the tier
    /// actually held, the corpus benchmark's bounded-memory signal.
    pub peak_resident_bytes: u64,
    /// Configured byte budget (`None` = unbounded).
    pub budget: Option<u64>,
    /// Entries spared (skipped, not merely granted second chance) by
    /// eviction fairness protecting the smallest session.
    pub fairness_spared: u64,
}

/// A process-wide, content-addressed store of finished analysis facts,
/// shared across every session of a daemon.  See the module docs for the
/// soundness argument and the division of labor with the per-session
/// overlay store.
pub struct SharedFactTier {
    shards: Vec<TierShard>,
    /// Byte budget; `0` means unbounded.
    budget: AtomicUsize,
    resident: AtomicUsize,
    /// High-water mark of `resident` (never decremented).
    peak_resident: AtomicUsize,
    /// Clock hand of the second-chance sweep (a shard index).
    clock: AtomicUsize,
    /// Approximate resident bytes per publishing session — the fairness
    /// signal (protect the smallest) and the `stats.tier.sessions` payload.
    owner_bytes: Mutex<HashMap<u64, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evicted: AtomicU64,
    evicted_bytes: AtomicU64,
    fairness_spared: AtomicU64,
}

impl Default for SharedFactTier {
    fn default() -> SharedFactTier {
        SharedFactTier::new()
    }
}

fn tier_shard_index(pass: PassId, hash: u128) -> usize {
    // The content hash is already well-mixed (FNV-128); fold in the pass so
    // the (unlikely) same hash under two passes still spreads.
    ((hash as u64 as usize) ^ ((pass as usize) << 3)) % TIER_SHARDS
}

impl SharedFactTier {
    /// An unbounded tier.
    pub fn new() -> SharedFactTier {
        SharedFactTier::with_budget(None)
    }

    /// A tier with an approximate byte budget (`None` = unbounded).
    pub fn with_budget(budget: Option<usize>) -> SharedFactTier {
        SharedFactTier {
            shards: (0..TIER_SHARDS).map(|_| TierShard::default()).collect(),
            budget: AtomicUsize::new(budget.unwrap_or(0)),
            resident: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            clock: AtomicUsize::new(0),
            owner_bytes: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            fairness_spared: AtomicU64::new(0),
        }
    }

    /// Look up a finished fact by content: the value, its approximate byte
    /// size, and the dependency edges recorded when it was published
    /// (installed into the caller's overlay so invalidation keeps
    /// propagating).  Marks the entry referenced.
    pub fn lookup(
        &self,
        pass: PassId,
        hash: u128,
    ) -> Option<(Arc<dyn Any + Send + Sync>, usize, Vec<FactKey>)> {
        let shard = &self.shards[tier_shard_index(pass, hash)];
        let mut map = shard.map.lock();
        match map.get_mut(&(pass, hash)) {
            Some(e) => {
                e.referenced = true;
                let out = (e.value.clone(), e.bytes, e.deps.clone());
                drop(map);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                drop(map);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a finished fact.  First writer wins: a `(pass, hash)` pair
    /// already present is left untouched (by purity the values are
    /// interchangeable, and keeping the resident one preserves pointer
    /// sharing with sessions already holding it).
    ///
    /// `owner` is the publishing session's id — it is credited with the
    /// entry's bytes for fairness accounting, and an overflow this publish
    /// causes will not evict the *smallest* other session's facts first.
    pub fn publish_owned(
        &self,
        owner: u64,
        key: FactKey,
        hash: u128,
        bytes: usize,
        deps: Vec<FactKey>,
        value: Arc<dyn Any + Send + Sync>,
    ) {
        let shard = &self.shards[tier_shard_index(key.pass, hash)];
        {
            let mut map = shard.map.lock();
            if map.contains_key(&(key.pass, hash)) {
                return;
            }
            map.insert(
                (key.pass, hash),
                TierEntry {
                    value,
                    bytes,
                    referenced: true,
                    key,
                    deps,
                    owner,
                },
            );
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let now = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident.fetch_max(now, Ordering::Relaxed);
        *self.owner_bytes.lock().entry(owner).or_insert(0) += bytes as u64;
        self.evict_to_budget(owner);
    }

    /// [`SharedFactTier::publish_owned`] with the anonymous
    /// [`WARM_START_OWNER`] — kept for callers that predate per-session
    /// accounting (tests, single-tenant embedding).
    pub fn publish(
        &self,
        key: FactKey,
        hash: u128,
        bytes: usize,
        deps: Vec<FactKey>,
        value: Arc<dyn Any + Send + Sync>,
    ) {
        self.publish_owned(WARM_START_OWNER, key, hash, bytes, deps, value);
    }

    /// The session whose facts an overflow caused by `cause` must spare:
    /// the one with the smallest resident footprint, provided it is not
    /// the cause itself and at least two sessions hold resident bytes
    /// (fairness is meaningless with a single tenant).
    fn fairness_protected(&self, cause: u64) -> Option<u64> {
        let owners = self.owner_bytes.lock();
        let holders = owners.iter().filter(|(_, b)| **b > 0);
        if holders.clone().count() < 2 {
            return None;
        }
        holders
            .filter(|(o, _)| **o != cause)
            .min_by_key(|(o, b)| (**b, **o))
            .map(|(o, _)| *o)
    }

    /// Second-chance sweep: while over budget, advance the clock hand over
    /// the shards, giving each referenced entry one round of grace and
    /// evicting the rest.  Two full revolutions guarantee termination even
    /// when everything starts referenced.
    ///
    /// Fairness: the sweep first runs with the smallest *other* session's
    /// entries protected outright (a big tenant blowing the budget should
    /// not flush a small tenant's working set); in the rare case the
    /// protected facts are themselves most of the tier, a second
    /// unprotected sweep still guarantees the budget holds.
    fn evict_to_budget(&self, cause: u64) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        if let Some(protected) = self.fairness_protected(cause) {
            self.sweep(budget, Some(protected));
        }
        if self.resident.load(Ordering::Relaxed) > budget {
            self.sweep(budget, None);
        }
    }

    fn sweep(&self, budget: usize, protected: Option<u64>) {
        let mut visits = 0;
        while self.resident.load(Ordering::Relaxed) > budget && visits < 2 * TIER_SHARDS {
            let i = self.clock.fetch_add(1, Ordering::Relaxed) % TIER_SHARDS;
            visits += 1;
            let mut freed = 0usize;
            let mut dropped = 0u64;
            let mut spared = 0u64;
            let mut owner_freed: HashMap<u64, u64> = HashMap::new();
            {
                let mut map = self.shards[i].map.lock();
                map.retain(|_, e| {
                    if self.resident.load(Ordering::Relaxed) <= budget + freed {
                        return true;
                    }
                    if protected == Some(e.owner) {
                        spared += 1;
                        return true;
                    }
                    if e.referenced {
                        e.referenced = false;
                        true
                    } else {
                        freed += e.bytes;
                        dropped += 1;
                        *owner_freed.entry(e.owner).or_insert(0) += e.bytes as u64;
                        false
                    }
                });
            }
            if spared > 0 {
                self.fairness_spared.fetch_add(spared, Ordering::Relaxed);
            }
            if freed > 0 {
                self.resident.fetch_sub(freed, Ordering::Relaxed);
                self.evicted.fetch_add(dropped, Ordering::Relaxed);
                self.evicted_bytes
                    .fetch_add(freed as u64, Ordering::Relaxed);
                let mut owners = self.owner_bytes.lock();
                for (o, b) in owner_freed {
                    if let Some(total) = owners.get_mut(&o) {
                        *total = total.saturating_sub(b);
                    }
                }
            }
        }
    }

    /// Lift every resident fact out for persistence, in deterministic
    /// `(key, hash)` order.  One snapshot covers every session — the tier
    /// is the superset of all clean (shareable) facts.
    pub fn export(&self) -> Vec<ExportedFact> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.map.lock();
            for ((_, hash), e) in map.iter() {
                out.push(ExportedFact {
                    key: e.key,
                    hash: *hash,
                    deps: e.deps.clone(),
                    bytes: e.bytes,
                    value: e.value.clone(),
                });
            }
        }
        out.sort_by_key(|f| (f.key, f.hash));
        out
    }

    /// Seed the tier with previously exported facts (a warm start).
    /// Existing `(pass, hash)` pairs are left untouched.  Returns how many
    /// facts were installed.
    pub fn import(&self, facts: &[ExportedFact]) -> usize {
        let mut installed = 0;
        for f in facts {
            let shard = &self.shards[tier_shard_index(f.key.pass, f.hash)];
            let mut map = shard.map.lock();
            if let std::collections::hash_map::Entry::Vacant(v) = map.entry((f.key.pass, f.hash)) {
                v.insert(TierEntry {
                    value: f.value.clone(),
                    bytes: f.bytes,
                    referenced: true,
                    key: f.key,
                    deps: f.deps.clone(),
                    owner: WARM_START_OWNER,
                });
                let now = self.resident.fetch_add(f.bytes, Ordering::Relaxed) + f.bytes;
                self.peak_resident.fetch_max(now, Ordering::Relaxed);
                *self.owner_bytes.lock().entry(WARM_START_OWNER).or_insert(0) += f.bytes as u64;
                installed += 1;
            }
        }
        if installed > 0 {
            self.evict_to_budget(WARM_START_OWNER);
        }
        installed
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Is the tier empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// High-water mark of resident bytes over the tier's lifetime.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident.load(Ordering::Relaxed)
    }

    /// Approximate resident bytes per publishing session, sorted by
    /// session id (owner `0` is warm-start imports).  Sessions whose
    /// every fact has been evicted are omitted.
    pub fn session_bytes(&self) -> Vec<(u64, u64)> {
        let owners = self.owner_bytes.lock();
        let mut out: Vec<(u64, u64)> = owners
            .iter()
            .filter(|(_, b)| **b > 0)
            .map(|(o, b)| (*o, *b))
            .collect();
        out.sort_unstable();
        out
    }

    /// Counter snapshot (the daemon's `stats.tier` payload).
    pub fn stats(&self) -> TierStats {
        let budget = self.budget.load(Ordering::Relaxed);
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed) as u64,
            resident_entries: self.len() as u64,
            peak_resident_bytes: self.peak_resident.load(Ordering::Relaxed) as u64,
            budget: (budget != 0).then_some(budget as u64),
            fairness_spared: self.fairness_spared.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scope;

    fn key(pass: PassId, n: u32) -> FactKey {
        FactKey::new(pass, Scope::Loop(suif_ir::StmtId(n)))
    }

    #[test]
    fn publish_then_lookup_round_trips() {
        let tier = SharedFactTier::new();
        assert!(tier.lookup(PassId::Classify, 7).is_none());
        tier.publish(
            key(PassId::Classify, 1),
            7,
            100,
            vec![key(PassId::Summarize, 0)],
            Arc::new(42i64),
        );
        let (v, bytes, deps) = tier.lookup(PassId::Classify, 7).unwrap();
        assert_eq!(*v.downcast::<i64>().unwrap(), 42);
        assert_eq!(bytes, 100);
        assert_eq!(deps, vec![key(PassId::Summarize, 0)]);
        // A different hash is a different fact.
        assert!(tier.lookup(PassId::Classify, 8).is_none());
        let s = tier.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
        assert_eq!(s.resident_bytes, 100);
        assert_eq!(s.resident_entries, 1);
    }

    #[test]
    fn first_writer_wins() {
        let tier = SharedFactTier::new();
        tier.publish(key(PassId::Deps, 1), 5, 10, vec![], Arc::new(1i64));
        tier.publish(key(PassId::Deps, 2), 5, 10, vec![], Arc::new(2i64));
        let (v, _, _) = tier.lookup(PassId::Deps, 5).unwrap();
        assert_eq!(*v.downcast::<i64>().unwrap(), 1, "first publish kept");
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.resident_bytes(), 10);
    }

    #[test]
    fn budget_evicts_cold_entries_but_spares_referenced_ones() {
        let tier = SharedFactTier::with_budget(Some(500));
        for i in 0..10u32 {
            tier.publish(
                key(PassId::Classify, i),
                i as u128,
                100,
                vec![],
                Arc::new(i64::from(i)),
            );
        }
        let s = tier.stats();
        assert!(
            s.resident_bytes <= 500,
            "sweep keeps the tier under budget: {} bytes",
            s.resident_bytes
        );
        assert!(s.evicted >= 5, "overflow evicted: {}", s.evicted);
        assert_eq!(
            s.evicted_bytes,
            s.evicted * 100,
            "every eviction reclaims its bytes"
        );
        // Whatever survived still answers; a re-publish of an evicted hash
        // is admitted again.
        let survivors = (0..10u32)
            .filter(|i| tier.lookup(PassId::Classify, *i as u128).is_some())
            .count();
        assert_eq!(survivors, tier.len());
        assert!(survivors >= 1);
    }

    #[test]
    fn session_bytes_tracks_owners() {
        let tier = SharedFactTier::new();
        tier.publish_owned(1, key(PassId::Classify, 0), 10, 100, vec![], Arc::new(0i64));
        tier.publish_owned(1, key(PassId::Classify, 1), 11, 50, vec![], Arc::new(0i64));
        tier.publish_owned(2, key(PassId::Classify, 2), 12, 30, vec![], Arc::new(0i64));
        // Duplicate hash from another owner: first writer keeps the credit.
        tier.publish_owned(2, key(PassId::Classify, 3), 10, 100, vec![], Arc::new(0i64));
        assert_eq!(tier.session_bytes(), vec![(1, 150), (2, 30)]);
        assert_eq!(tier.resident_bytes(), 180);
    }

    #[test]
    fn overflow_by_big_tenant_spares_smallest_session() {
        // Budget fits the small tenant plus a slice of the big one.
        let tier = SharedFactTier::with_budget(Some(600));
        // Small tenant (session 1): 2 facts, 100 bytes.
        for i in 0..2u32 {
            tier.publish_owned(
                1,
                key(PassId::Classify, i),
                i as u128,
                50,
                vec![],
                Arc::new(0i64),
            );
        }
        // Big tenant (session 2) floods the tier way past budget.
        for i in 100..140u32 {
            tier.publish_owned(
                2,
                key(PassId::Classify, i),
                i as u128,
                100,
                vec![],
                Arc::new(0i64),
            );
        }
        let s = tier.stats();
        assert!(
            s.resident_bytes <= 600,
            "budget holds: {} bytes",
            s.resident_bytes
        );
        let sessions = tier.session_bytes();
        let small = sessions.iter().find(|(o, _)| *o == 1).map(|(_, b)| *b);
        assert_eq!(
            small,
            Some(100),
            "smallest session untouched by the big tenant's overflow: {sessions:?}"
        );
        assert!(s.fairness_spared > 0, "protection engaged");
        // Every eviction debited its owner: totals reconcile.
        let total: u64 = sessions.iter().map(|(_, b)| *b).sum();
        assert_eq!(total, s.resident_bytes);
    }

    #[test]
    fn fairness_does_not_protect_sole_tenant_or_break_budget() {
        let tier = SharedFactTier::with_budget(Some(300));
        for i in 0..10u32 {
            tier.publish_owned(
                7,
                key(PassId::Classify, i),
                i as u128,
                100,
                vec![],
                Arc::new(0i64),
            );
        }
        let s = tier.stats();
        assert!(s.resident_bytes <= 300, "sole tenant still bounded");
        assert_eq!(s.fairness_spared, 0, "no fairness with one tenant");
        // Degenerate case: the smallest session itself overflows — the
        // unprotected second sweep must still enforce the budget.
        let tier = SharedFactTier::with_budget(Some(250));
        tier.publish_owned(1, key(PassId::Deps, 0), 1000, 200, vec![], Arc::new(0i64));
        for i in 0..8u32 {
            tier.publish_owned(
                2,
                key(PassId::Deps, 1 + i),
                2000 + i as u128,
                10,
                vec![],
                Arc::new(0i64),
            );
        }
        // Session 2 (80 bytes) is smaller than session 1 (200); now session
        // 2 causes the overflow.
        tier.publish_owned(2, key(PassId::Deps, 99), 3000, 200, vec![], Arc::new(0i64));
        assert!(
            tier.resident_bytes() <= 250,
            "budget holds even when the cause is the small session: {}",
            tier.resident_bytes()
        );
    }

    #[test]
    fn export_import_round_trip() {
        let tier = SharedFactTier::new();
        tier.publish(
            key(PassId::Classify, 3),
            11,
            64,
            vec![key(PassId::Summarize, 0)],
            Arc::new(7i64),
        );
        tier.publish(key(PassId::Deps, 3), 12, 32, vec![], Arc::new(8i64));
        let exported = tier.export();
        assert_eq!(exported.len(), 2);

        let fresh = SharedFactTier::new();
        assert_eq!(fresh.import(&exported), 2);
        assert_eq!(fresh.import(&exported), 0, "idempotent");
        assert_eq!(fresh.resident_bytes(), 96);
        let (v, _, deps) = fresh.lookup(PassId::Classify, 11).unwrap();
        assert_eq!(*v.downcast::<i64>().unwrap(), 7);
        assert_eq!(deps, vec![key(PassId::Summarize, 0)]);
    }
}
