//! The process-wide shared fact tier: a content-addressed store of finished
//! analysis facts, shared by every session of a multi-tenant daemon.
//!
//! A [`crate::Pass`] is a *pure function of its input hash* (the
//! [`crate::pipeline`] contract), and every input hash folds the region
//! content keys, the configuration, and the resolved assertion marks that
//! affect the fact.  Two sessions demanding a fact under the same
//! `(pass, hash)` pair are therefore asking for interchangeable values — so
//! the tier can hand one session's finished fact to another without any
//! notion of which program, session, or assertion set produced it.
//!
//! # Relationship to the per-session [`crate::FactStore`]
//!
//! The tier sits *under* each session's store ([`crate::FactStore`] built
//! with [`crate::FactStore::with_shared`]).  The session store stays the
//! overlay: it owns the `(pass, scope)` keyed slots, the `Running` in-flight
//! state machine, and the invalidation edges.  The tier only ever holds
//! finished, valid values keyed purely by content — it has **no**
//! invalidation: a fact whose inputs change simply stops being looked up
//! (its hash no longer matches any demand), and an *assertion* folds into
//! the demanded hash itself, so one tenant's asserted facts live at
//! different tier keys than another tenant's clean ones.  Session-scoped
//! invalidation (`assert`, `reload`) touches only the overlay.
//!
//! # Memory budget
//!
//! Entries carry an approximate byte size ([`crate::snapshot`]'s sizing of
//! the value wire form).  With a budget set, inserts that push the tier
//! over it trigger a second-chance (clock) sweep across the shards: each
//! entry gets one round of grace via its `referenced` bit — set on every
//! hit, cleared by a passing sweep — before being evicted.  Evicting is
//! always sound (the next demand recomputes the same value by purity), so
//! the sweep never needs to coordinate with readers.

use crate::pipeline::{ExportedFact, FactKey, PassId};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independently locked shards (mirrors the session store).
const TIER_SHARDS: usize = 16;

struct TierEntry {
    value: Arc<dyn Any + Send + Sync>,
    /// Approximate resident bytes of `value` (see
    /// [`crate::snapshot::approx_value_bytes`]).
    bytes: usize,
    /// Second-chance bit: set on every hit, cleared by a passing eviction
    /// sweep; an unreferenced entry is evicted on the sweep's next visit.
    referenced: bool,
    /// A representative store key (the key of the first session to publish
    /// the fact) — only used to round-trip through the snapshot codec,
    /// which addresses facts by `(key, hash)`.
    key: FactKey,
    /// Dependency edges recorded by the publishing session, installed into
    /// an overlay on a hit so session-scoped invalidation keeps
    /// propagating through shared facts.
    deps: Vec<FactKey>,
}

#[derive(Default)]
struct TierShard {
    map: Mutex<HashMap<(PassId, u128), TierEntry>>,
}

/// Counter snapshot of one [`SharedFactTier`] (the daemon's `stats.tier`
/// payload).
#[derive(Clone, Copy, Debug, Default)]
pub struct TierStats {
    /// Lookups answered from the tier.
    pub hits: u64,
    /// Lookups that found nothing (the session computes and publishes).
    pub misses: u64,
    /// Facts published (first insert of a `(pass, hash)` pair).
    pub inserts: u64,
    /// Entries evicted by the budget sweep.
    pub evicted: u64,
    /// Approximate bytes reclaimed by eviction.
    pub evicted_bytes: u64,
    /// Approximate resident bytes right now.
    pub resident_bytes: u64,
    /// Resident entries right now.
    pub resident_entries: u64,
    /// Configured byte budget (`None` = unbounded).
    pub budget: Option<u64>,
}

/// A process-wide, content-addressed store of finished analysis facts,
/// shared across every session of a daemon.  See the module docs for the
/// soundness argument and the division of labor with the per-session
/// overlay store.
pub struct SharedFactTier {
    shards: Vec<TierShard>,
    /// Byte budget; `0` means unbounded.
    budget: AtomicUsize,
    resident: AtomicUsize,
    /// Clock hand of the second-chance sweep (a shard index).
    clock: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evicted: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl Default for SharedFactTier {
    fn default() -> SharedFactTier {
        SharedFactTier::new()
    }
}

fn tier_shard_index(pass: PassId, hash: u128) -> usize {
    // The content hash is already well-mixed (FNV-128); fold in the pass so
    // the (unlikely) same hash under two passes still spreads.
    ((hash as u64 as usize) ^ ((pass as usize) << 3)) % TIER_SHARDS
}

impl SharedFactTier {
    /// An unbounded tier.
    pub fn new() -> SharedFactTier {
        SharedFactTier::with_budget(None)
    }

    /// A tier with an approximate byte budget (`None` = unbounded).
    pub fn with_budget(budget: Option<usize>) -> SharedFactTier {
        SharedFactTier {
            shards: (0..TIER_SHARDS).map(|_| TierShard::default()).collect(),
            budget: AtomicUsize::new(budget.unwrap_or(0)),
            resident: AtomicUsize::new(0),
            clock: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    /// Look up a finished fact by content: the value, its approximate byte
    /// size, and the dependency edges recorded when it was published
    /// (installed into the caller's overlay so invalidation keeps
    /// propagating).  Marks the entry referenced.
    pub fn lookup(
        &self,
        pass: PassId,
        hash: u128,
    ) -> Option<(Arc<dyn Any + Send + Sync>, usize, Vec<FactKey>)> {
        let shard = &self.shards[tier_shard_index(pass, hash)];
        let mut map = shard.map.lock();
        match map.get_mut(&(pass, hash)) {
            Some(e) => {
                e.referenced = true;
                let out = (e.value.clone(), e.bytes, e.deps.clone());
                drop(map);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                drop(map);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publish a finished fact.  First writer wins: a `(pass, hash)` pair
    /// already present is left untouched (by purity the values are
    /// interchangeable, and keeping the resident one preserves pointer
    /// sharing with sessions already holding it).
    pub fn publish(
        &self,
        key: FactKey,
        hash: u128,
        bytes: usize,
        deps: Vec<FactKey>,
        value: Arc<dyn Any + Send + Sync>,
    ) {
        let shard = &self.shards[tier_shard_index(key.pass, hash)];
        {
            let mut map = shard.map.lock();
            if map.contains_key(&(key.pass, hash)) {
                return;
            }
            map.insert(
                (key.pass, hash),
                TierEntry {
                    value,
                    bytes,
                    referenced: true,
                    key,
                    deps,
                },
            );
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.resident.fetch_add(bytes, Ordering::Relaxed);
        self.evict_to_budget();
    }

    /// Second-chance sweep: while over budget, advance the clock hand over
    /// the shards, giving each referenced entry one round of grace and
    /// evicting the rest.  Two full revolutions guarantee termination even
    /// when everything starts referenced.
    fn evict_to_budget(&self) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let mut visits = 0;
        while self.resident.load(Ordering::Relaxed) > budget && visits < 2 * TIER_SHARDS {
            let i = self.clock.fetch_add(1, Ordering::Relaxed) % TIER_SHARDS;
            visits += 1;
            let mut freed = 0usize;
            let mut dropped = 0u64;
            {
                let mut map = self.shards[i].map.lock();
                map.retain(|_, e| {
                    if self.resident.load(Ordering::Relaxed) <= budget + freed {
                        return true;
                    }
                    if e.referenced {
                        e.referenced = false;
                        true
                    } else {
                        freed += e.bytes;
                        dropped += 1;
                        false
                    }
                });
            }
            if freed > 0 {
                self.resident.fetch_sub(freed, Ordering::Relaxed);
                self.evicted.fetch_add(dropped, Ordering::Relaxed);
                self.evicted_bytes
                    .fetch_add(freed as u64, Ordering::Relaxed);
            }
        }
    }

    /// Lift every resident fact out for persistence, in deterministic
    /// `(key, hash)` order.  One snapshot covers every session — the tier
    /// is the superset of all clean (shareable) facts.
    pub fn export(&self) -> Vec<ExportedFact> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.map.lock();
            for ((_, hash), e) in map.iter() {
                out.push(ExportedFact {
                    key: e.key,
                    hash: *hash,
                    deps: e.deps.clone(),
                    bytes: e.bytes,
                    value: e.value.clone(),
                });
            }
        }
        out.sort_by_key(|f| (f.key, f.hash));
        out
    }

    /// Seed the tier with previously exported facts (a warm start).
    /// Existing `(pass, hash)` pairs are left untouched.  Returns how many
    /// facts were installed.
    pub fn import(&self, facts: &[ExportedFact]) -> usize {
        let mut installed = 0;
        for f in facts {
            let shard = &self.shards[tier_shard_index(f.key.pass, f.hash)];
            let mut map = shard.map.lock();
            if let std::collections::hash_map::Entry::Vacant(v) = map.entry((f.key.pass, f.hash)) {
                v.insert(TierEntry {
                    value: f.value.clone(),
                    bytes: f.bytes,
                    referenced: true,
                    key: f.key,
                    deps: f.deps.clone(),
                });
                self.resident.fetch_add(f.bytes, Ordering::Relaxed);
                installed += 1;
            }
        }
        if installed > 0 {
            self.evict_to_budget();
        }
        installed
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Is the tier empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Counter snapshot (the daemon's `stats.tier` payload).
    pub fn stats(&self) -> TierStats {
        let budget = self.budget.load(Ordering::Relaxed);
        TierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed) as u64,
            resident_entries: self.len() as u64,
            budget: (budget != 0).then_some(budget as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Scope;

    fn key(pass: PassId, n: u32) -> FactKey {
        FactKey::new(pass, Scope::Loop(suif_ir::StmtId(n)))
    }

    #[test]
    fn publish_then_lookup_round_trips() {
        let tier = SharedFactTier::new();
        assert!(tier.lookup(PassId::Classify, 7).is_none());
        tier.publish(
            key(PassId::Classify, 1),
            7,
            100,
            vec![key(PassId::Summarize, 0)],
            Arc::new(42i64),
        );
        let (v, bytes, deps) = tier.lookup(PassId::Classify, 7).unwrap();
        assert_eq!(*v.downcast::<i64>().unwrap(), 42);
        assert_eq!(bytes, 100);
        assert_eq!(deps, vec![key(PassId::Summarize, 0)]);
        // A different hash is a different fact.
        assert!(tier.lookup(PassId::Classify, 8).is_none());
        let s = tier.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
        assert_eq!(s.resident_bytes, 100);
        assert_eq!(s.resident_entries, 1);
    }

    #[test]
    fn first_writer_wins() {
        let tier = SharedFactTier::new();
        tier.publish(key(PassId::Deps, 1), 5, 10, vec![], Arc::new(1i64));
        tier.publish(key(PassId::Deps, 2), 5, 10, vec![], Arc::new(2i64));
        let (v, _, _) = tier.lookup(PassId::Deps, 5).unwrap();
        assert_eq!(*v.downcast::<i64>().unwrap(), 1, "first publish kept");
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.resident_bytes(), 10);
    }

    #[test]
    fn budget_evicts_cold_entries_but_spares_referenced_ones() {
        let tier = SharedFactTier::with_budget(Some(500));
        for i in 0..10u32 {
            tier.publish(
                key(PassId::Classify, i),
                i as u128,
                100,
                vec![],
                Arc::new(i64::from(i)),
            );
        }
        let s = tier.stats();
        assert!(
            s.resident_bytes <= 500,
            "sweep keeps the tier under budget: {} bytes",
            s.resident_bytes
        );
        assert!(s.evicted >= 5, "overflow evicted: {}", s.evicted);
        assert_eq!(
            s.evicted_bytes,
            s.evicted * 100,
            "every eviction reclaims its bytes"
        );
        // Whatever survived still answers; a re-publish of an evicted hash
        // is admitted again.
        let survivors = (0..10u32)
            .filter(|i| tier.lookup(PassId::Classify, *i as u128).is_some())
            .count();
        assert_eq!(survivors, tier.len());
        assert!(survivors >= 1);
    }

    #[test]
    fn export_import_round_trip() {
        let tier = SharedFactTier::new();
        tier.publish(
            key(PassId::Classify, 3),
            11,
            64,
            vec![key(PassId::Summarize, 0)],
            Arc::new(7i64),
        );
        tier.publish(key(PassId::Deps, 3), 12, 32, vec![], Arc::new(8i64));
        let exported = tier.export();
        assert_eq!(exported.len(), 2);

        let fresh = SharedFactTier::new();
        assert_eq!(fresh.import(&exported), 2);
        assert_eq!(fresh.import(&exported), 0, "idempotent");
        assert_eq!(fresh.resident_bytes(), 96);
        let (v, _, deps) = fresh.lookup(PassId::Classify, 11).unwrap();
        assert_eq!(*v.downcast::<i64>().unwrap(), 7);
        assert_eq!(deps, vec![key(PassId::Summarize, 0)]);
    }
}
