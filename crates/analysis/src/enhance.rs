//! The §5.2.2.3 upwards-exposed-read enhancement, implemented as a direct
//! coverage computation.
//!
//! The paper subtracts the written section from the exposed reads of
//! call-free recurrence loops ("all of the write operations must precede any
//! reads to the same location").  Stated as a *value-flow* property, the
//! valid subtraction is: an exposed read of iteration `i2` is not exposed at
//! the loop level iff it is covered by the **must-writes of earlier
//! iterations** (`i1` executed before `i2`).  This cleanly admits the
//! `psmoo` recurrence (`d(i-1)` read is written by iteration `i-1`) while
//! correctly rejecting read-modify-write updates (`fax(ia) += …` reads
//! `fax(ia)` *before* the same iteration writes it — no earlier iteration
//! covers it).

use crate::context::AnalysisCtx;
use crate::summarize::LoopIterSummary;
use suif_poly::{Constraint, LinExpr, Section, SectionSummary};

/// Compute the enhanced loop-level exposed section for one array, or `None`
/// when the preconditions for precise reasoning fail (the caller then keeps
/// the plain closure).
pub fn enhanced_exposed(
    ctx: &AnalysisCtx<'_>,
    iter: &LoopIterSummary,
    s: &SectionSummary,
) -> Option<Section> {
    if s.exposed.is_empty() || s.must_write.is_empty() {
        return None;
    }
    let (first, last) = iter.bounds.clone()?;
    let step = iter.step?;
    if step.abs() != 1 {
        return None; // stride gaps: earlier-iteration coverage is partial
    }
    // The must-write section may only mention the induction symbol and
    // loop-invariant symbols: per-iteration-varying symbols make "covered by
    // iteration i1" unverifiable.
    if s.must_write
        .set
        .vars()
        .into_iter()
        .any(|v| v != iter.index_sym && iter.is_varying(v))
    {
        return None;
    }

    let i1 = ctx.fresh_sym();
    let i2 = ctx.fresh_sym();

    // Union of must-writes over all iterations executed before i2:
    // exact projection of i1 required (the union must not be widened —
    // claimed coverage has to be real).
    let m1 = s.must_write.substitute(iter.index_sym, &LinExpr::var(i1));
    let mut m_union = m1.set.clone();
    m_union = m_union
        .constrain(&Constraint::geq(&LinExpr::var(i1), &first))
        .constrain(&Constraint::leq(&LinExpr::var(i1), &last));
    // "executed before": positive step → i1 < i2; negative → i1 > i2.
    let order = if step > 0 {
        Constraint::lt(&LinExpr::var(i1), &LinExpr::var(i2))
    } else {
        Constraint::lt(&LinExpr::var(i2), &LinExpr::var(i1))
    };
    m_union = m_union.constrain(&order);
    let m_union = m_union.project_exact(i1)?;
    let m_union_sec = Section {
        array: s.must_write.array,
        ndims: s.must_write.ndims,
        set: m_union,
    };

    // Exposed reads of iteration i2 (bounded), minus the earlier coverage.
    let mut e2 = s.exposed.substitute(iter.index_sym, &LinExpr::var(i2));
    e2.set = e2
        .set
        .constrain(&Constraint::geq(&LinExpr::var(i2), &first))
        .constrain(&Constraint::leq(&LinExpr::var(i2), &last));
    let remainder = e2.subtract(&m_union_sec);

    // Close over i2 (and over any per-copy varying symbols that remain,
    // conservatively keeping them as existentials).
    let mut fresh = || ctx.fresh_sym();
    let mut closed = remainder.closure_keep(i2, &mut fresh);
    // Any remaining varying symbols become existential too.
    closed = closed.project_symbols_keep(&|v| iter.is_varying(v), &mut fresh);
    Some(closed)
}

#[cfg(test)]
mod tests {
    use crate::context::AnalysisCtx;
    use crate::summarize::ArrayDataFlow;
    use suif_ir::parse_program;

    fn exposed_empty(src: &str, loop_name: &str, var: &str) -> bool {
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let df = ArrayDataFlow::analyze(&ctx);
        let li = ctx.tree.loops.iter().find(|l| l.name == loop_name).unwrap();
        let v = {
            let proc_name = &p.proc(li.proc).name;
            p.var_by_name(proc_name, var).unwrap()
        };
        let id = ctx.array_of(v);
        let closed = &df.stmt_summary[&li.stmt];
        closed
            .acc
            .get(id)
            .map(|s| s.exposed.set.prove_empty())
            .unwrap_or(true)
    }

    #[test]
    fn recurrence_reads_are_covered() {
        // d[i] written at i covers the read d[i-1] of iteration i+1 — only
        // d[1] stays exposed, and the preceding write kills it at the outer
        // level (the psmoo composition); at this single loop the exposed
        // remainder is d[1] only, so with d[1] pre-written E is nonempty
        // here but excludes d[2..].
        let src = "program t\nproc main() {\n real d[10]\n int i\n d[1] = 0\n do 1 i = 2, 10 {\n d[i] = d[i - 1] * 0.5\n }\n print d[10]\n}";
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let df = ArrayDataFlow::analyze(&ctx);
        let li = ctx.tree.loops.iter().find(|l| l.name == "main/1").unwrap();
        let d = p.var_by_name("main", "d").unwrap();
        let s = df.stmt_summary[&li.stmt].acc.get(ctx.array_of(d)).unwrap();
        // Exposed at the loop = exactly d[1].
        use suif_poly::Var;
        let at = |v: i64| {
            s.exposed
                .set
                .contains_point(&|var| if var == Var::Dim(0) { Some(v) } else { None })
                .unwrap()
        };
        assert!(at(1), "d[1] exposed: {}", s.exposed.set);
        assert!(!at(2) && !at(5), "covered reads removed: {}", s.exposed.set);
    }

    #[test]
    fn read_modify_write_stays_exposed() {
        // fax[ia] += w: the same-iteration read is NOT covered by earlier
        // writes — E must stay (the bdna correctness case).
        assert!(!exposed_empty(
            "program t\nproc main() {\n real fax[10], w[10]\n int ia\n do 20 ia = 1, 10 {\n fax[ia] = fax[ia] + w[ia]\n }\n print fax[1]\n}",
            "main/20",
            "fax"
        ));
    }

    #[test]
    fn scalar_update_stays_exposed() {
        // x[i] = x[i] + vh[i] (the mdg predic loop).
        assert!(!exposed_empty(
            "program t\nproc main() {\n real x[10], vh[10]\n int i\n do 200 i = 1, 10 {\n x[i] = x[i] + vh[i]\n }\n print x[1]\n}",
            "main/200",
            "x"
        ));
    }
}
