//! The interprocedural parallelization analyses of the SUIF Explorer
//! reproduction (Liao, CSL-TR-00-807, Ch. 2.4, 5 and 6):
//!
//! * **symbolic analysis** on scalar variables (constants, affine relations,
//!   loop invariants) — [`symenv`];
//! * **array data-flow analysis**: region-based, bottom-up `<R, E, W, M>`
//!   section summaries over sets of systems of linear inequalities —
//!   [`summarize`]; including the §5.2.2.3 enhancement that subtracts
//!   recurrence writes from upwards-exposed reads;
//! * **dependence and privatization tests** on per-iteration summaries —
//!   [`deps`];
//! * **reduction recognition** (scalar, regular array, sparse/indirect,
//!   interprocedural; `+`, `*`, `min`, `max`) integrated into the data-flow
//!   framework — [`reduction`];
//! * **interprocedural array liveness** — the two-phase (bottom-up +
//!   top-down) context- and flow-sensitive algorithm of §5.2, plus the 1-bit
//!   and flow-insensitive precision variants of §5.2.3 — [`liveness`];
//! * **transformations** enabled by liveness: array contraction (§5.6) and
//!   common-block live-range splitting (§5.5) — [`contract`] and [`split`];
//! * the **data-decomposition advisory** of §4.2.4/Fig. 4-6 (conflicting
//!   array partitionings across parallel loops) — [`decomp`];
//! * the **parallelization driver** producing per-loop verdicts, with the
//!   configuration toggles the evaluation ablates (reduction recognition
//!   on/off for Fig. 6-4, liveness variant for Figs. 5-7/5-8) and support
//!   for checked user assertions — [`parallelize`].
//!
//! Scalars are analyzed uniformly with arrays as single-cell sections, which
//! is how privatizable/reduction scalars, scalar dependences and scalar
//! liveness fall out of one framework.
//!
//! ```
//! use suif_analysis::{ParallelizeConfig, Parallelizer};
//! let program = suif_ir::parse_program(
//!     "program p\nproc main() {\n real s, a[100]\n int i\n do 1 i = 1, 100 {\n s = s + a[i]\n }\n print s\n}",
//! ).unwrap();
//! let pa = Parallelizer::analyze(&program, ParallelizeConfig::default());
//! let l = &pa.ctx.tree.loops[0];
//! assert!(pa.verdicts[&l.stmt].is_parallel()); // a scalar sum reduction
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod context;
pub mod decomp;
pub mod deps;
pub mod enhance;
pub mod liveness;
pub mod parallelize;
pub mod pipeline;
pub mod reduction;
pub mod schedule;
pub mod summarize;
pub mod symenv;

pub mod contract;
pub mod snapshot;
pub mod split;
pub mod tier;

pub use cache::SummaryCache;
pub use context::{AnalysisCtx, ArrayKey};
pub use deps::{DepKind, DepTest};
pub use liveness::{LivenessMode, LivenessResult};
pub use parallelize::{
    AnalyzeStats, Assertion, LoopCertInfo, LoopVerdict, ParallelizeConfig, Parallelizer, PassStat,
    PrefetchOutcome, ProgramAnalysis, StaticDep, VarClass,
};
pub use pipeline::{
    ExecStats, Executor, ExecutorService, ExportedFact, FactKey, FactStore, Pass, PassId,
    PassMetrics, Scope, StoreByteStats,
};
pub use reduction::RedOp;
pub use schedule::{ScheduleOptions, ScheduleStats};
pub use snapshot::{Snapshot, SnapshotError, SNAPSHOT_VERSION};
pub use summarize::{ArrayDataFlow, LoopIterSummary, ProcFlow};
pub use tier::{SharedFactTier, TierStats};
