//! Analysis context: array identity (with common-block alias unification),
//! linearized array sections, and symbol management.
//!
//! Every storage object is given one [`ArrayKey`]:
//! * all members of a common block share the block's key (the §3.4.2 "alias
//!   variable" idea — overlapping storage is one analysis object), with
//!   accesses *linearized* to a 1-D element offset inside the block, so
//!   different-shape views (`vz(mp,np)` vs `vz1(0:mp,np)` in Fig. 5-9)
//!   analyze precisely against each other;
//! * every other variable (local, parameter — scalar or array) is its own
//!   key; scalars are single-cell sections.
//!
//! Linearization is exact whenever subscripts are affine and extents are
//! compile-time constants; otherwise the access falls back to the
//! whole-object section, which is the paper's own fallback for non-affine
//! subscripts (§5.2.1).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use suif_ir::{CallGraph, CommonId, Extent, Program, RegionTree, VarId, VarKind};
use suif_poly::{ArrayId, Constraint, LinExpr, PolySet, Polyhedron, Section, Var};

/// First analysis-allocated ("fresh") symbol id; ids below this are
/// variable-value symbols (`Var::Sym(VarId.0)`).
pub const FRESH_BASE: u32 = 0x4000_0000;

/// Width of one per-procedure fresh-symbol block.  Each procedure's
/// summarization draws fresh symbols exclusively from its own block, so the
/// ids a procedure's summary contains depend only on that procedure — not on
/// the order procedures are analyzed in.  That makes the parallel scheduler
/// bit-identical to the sequential pass and per-procedure results cacheable.
pub const PROC_FRESH_BLOCK: u32 = 1 << 20;

/// First symbol id of the shared post-pass allocator used outside any
/// procedure block (dependence tests, liveness, closure projection on merged
/// summaries).
pub const POST_PASS_BASE: u32 = 0x8000_0000;

std::thread_local! {
    /// The active per-procedure block on this thread: `(next, end)`.
    static FRESH_BLOCK: std::cell::Cell<Option<(u32, u32)>> =
        const { std::cell::Cell::new(None) };
}

/// Restores the previous thread-local block even on unwind.
struct BlockGuard(Option<(u32, u32)>);

impl Drop for BlockGuard {
    fn drop(&mut self) {
        FRESH_BLOCK.with(|b| b.set(self.0));
    }
}

/// Identity of one analysis storage object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ArrayKey {
    /// A whole common block (all views unified, linearized).
    Common(CommonId),
    /// A non-common variable (scalar or array).
    Var(VarId),
}

/// Shared analysis context.
pub struct AnalysisCtx<'p> {
    /// The program under analysis.
    pub program: &'p Program,
    /// Its region tree.
    pub tree: RegionTree,
    /// Its call graph.
    pub cg: CallGraph,
    key_to_id: HashMap<ArrayKey, ArrayId>,
    id_to_key: Vec<ArrayKey>,
    /// Next post-pass fresh symbol id (fresh symbols live above any `VarId`).
    /// Per-procedure summarization does not touch this counter — it draws
    /// from the thread-local block installed by [`AnalysisCtx::with_fresh_block`].
    fresh_counter: AtomicU32,
}

impl<'p> AnalysisCtx<'p> {
    /// Build the context for a program.
    pub fn new(program: &'p Program) -> AnalysisCtx<'p> {
        let mut ctx = AnalysisCtx {
            program,
            tree: RegionTree::build(program),
            cg: CallGraph::build(program),
            key_to_id: HashMap::new(),
            id_to_key: Vec::new(),
            fresh_counter: AtomicU32::new(POST_PASS_BASE),
        };
        // Intern every storage object deterministically.
        for b in 0..program.commons.len() {
            ctx.intern(ArrayKey::Common(CommonId(b as u32)));
        }
        for v in 0..program.vars.len() {
            let key = ctx.key_of(VarId(v as u32));
            ctx.intern(key);
        }
        ctx
    }

    fn intern(&mut self, key: ArrayKey) -> ArrayId {
        if let Some(&id) = self.key_to_id.get(&key) {
            return id;
        }
        let id = ArrayId(self.id_to_key.len() as u32);
        self.id_to_key.push(key);
        self.key_to_id.insert(key, id);
        id
    }

    /// The storage key of a variable.
    pub fn key_of(&self, v: VarId) -> ArrayKey {
        match self.program.var(v).kind {
            VarKind::Common { block, .. } => ArrayKey::Common(block),
            _ => ArrayKey::Var(v),
        }
    }

    /// The interned id of a variable's storage object.
    pub fn array_of(&self, v: VarId) -> ArrayId {
        self.key_to_id[&self.key_of(v)]
    }

    /// Reverse lookup.
    pub fn key_of_id(&self, id: ArrayId) -> ArrayKey {
        self.id_to_key[id.0 as usize]
    }

    /// Display name of a storage object.
    pub fn array_name(&self, id: ArrayId) -> String {
        match self.key_of_id(id) {
            ArrayKey::Common(c) => format!("/{}/", self.program.commons[c.0 as usize].name),
            ArrayKey::Var(v) => self.program.var(v).name.clone(),
        }
    }

    /// Is this storage object an array (vs a single scalar cell)?
    pub fn is_array_object(&self, id: ArrayId) -> bool {
        match self.key_of_id(id) {
            ArrayKey::Common(_) => true,
            ArrayKey::Var(v) => self.program.var(v).is_array(),
        }
    }

    /// A fresh symbol (used to rename per-iteration-varying symbols in
    /// dependence tests).  Inside [`AnalysisCtx::with_fresh_block`] the
    /// symbol comes from the installed per-procedure block; outside, from
    /// the shared post-pass counter.
    pub fn fresh_sym(&self) -> Var {
        FRESH_BLOCK.with(|b| match b.get() {
            Some((next, end)) => {
                assert!(next < end, "per-procedure fresh-symbol block exhausted");
                b.set(Some((next + 1, end)));
                Var::Sym(next)
            }
            None => Var::Sym(self.fresh_counter.fetch_add(1, Ordering::Relaxed)),
        })
    }

    /// Current fresh-symbol watermark: all fresh symbols allocated from now
    /// on *in this allocation scope* have ids `>=` this value.  Symbol
    /// ranges delimit loop-variance and callee-origin classification.
    pub fn fresh_watermark(&self) -> u32 {
        FRESH_BLOCK.with(|b| match b.get() {
            Some((next, _)) => next,
            None => self.fresh_counter.load(Ordering::Relaxed),
        })
    }

    /// The fresh-symbol block of procedure `pid`: `[start, end)`.
    pub fn proc_block(pid: suif_ir::ProcId) -> (u32, u32) {
        assert!(
            pid.0 < (POST_PASS_BASE - FRESH_BASE) / PROC_FRESH_BLOCK,
            "too many procedures for per-procedure fresh-symbol blocks"
        );
        let start = FRESH_BASE + pid.0 * PROC_FRESH_BLOCK;
        (start, start + PROC_FRESH_BLOCK)
    }

    /// Run `f` with this thread's fresh-symbol allocations drawn from
    /// procedure `pid`'s block, starting at the block base.  Used by the
    /// bottom-up pass so each procedure's symbols are a pure function of the
    /// procedure, independent of analysis order and thread placement.
    pub fn with_fresh_block<R>(&self, pid: suif_ir::ProcId, f: impl FnOnce() -> R) -> R {
        let range = Self::proc_block(pid);
        let prev = FRESH_BLOCK.with(|b| b.replace(Some(range)));
        debug_assert!(prev.is_none(), "nested per-procedure fresh-symbol blocks");
        let _guard = BlockGuard(prev);
        f()
    }

    /// Is this a fresh (analysis-allocated) symbol?
    pub fn is_fresh(sym: Var) -> bool {
        matches!(sym, Var::Sym(n) if n >= FRESH_BASE)
    }

    /// The symbol standing for a scalar variable's value.
    pub fn sym_of(v: VarId) -> Var {
        Var::Sym(v.0)
    }

    /// The variable behind a symbol, if it is a variable symbol.
    pub fn var_of_sym(sym: Var) -> Option<VarId> {
        match sym {
            Var::Sym(n) if n < FRESH_BASE => Some(VarId(n)),
            _ => None,
        }
    }

    /// Constant extents of an array variable, if all extents are constant.
    pub fn const_extents(&self, v: VarId) -> Option<Vec<i64>> {
        self.program
            .var(v)
            .dims
            .iter()
            .map(|d| match d {
                Extent::Const(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    /// The whole-object section of a variable's storage: for a common
    /// member, the member's own element range inside the block (not the
    /// whole block); for an array, all its elements when the size is
    /// constant, else the unbounded positive range; for a scalar, its cell.
    pub fn whole_section(&self, v: VarId) -> Section {
        let id = self.array_of(v);
        let info = self.program.var(v);
        let d0 = LinExpr::var(Var::Dim(0));
        let (lo, hi) = match info.kind {
            VarKind::Common { offset, .. } => {
                let size = info.const_size().unwrap_or(1);
                (offset + 1, Some(offset + size))
            }
            _ => {
                if info.is_array() {
                    (1, info.const_size())
                } else {
                    (1, Some(1))
                }
            }
        };
        let mut cs = vec![Constraint::geq(&d0, &LinExpr::constant(lo))];
        if let Some(h) = hi {
            cs.push(Constraint::leq(&d0, &LinExpr::constant(h)));
        }
        let mut set = PolySet::from_poly(Polyhedron::from_constraints(cs));
        // Unknown-extent objects and non-affine fallbacks over-approximate.
        if hi.is_none() {
            set.mark_approximate();
        }
        Section {
            array: id,
            ndims: 1,
            set,
        }
    }

    /// The section of one element access `v[subs]` given *affine* subscript
    /// expressions; `None` subscripts (non-affine) widen to the whole
    /// object.  The result is linearized to the 1-D element offset.
    pub fn access_section(&self, v: VarId, subs: Option<&[LinExpr]>) -> Section {
        let id = self.array_of(v);
        let info = self.program.var(v);
        if !info.is_array() {
            // Scalar cell: offset inside common (1-based) or the single cell.
            let off = match info.kind {
                VarKind::Common { offset, .. } => offset + 1,
                _ => 1,
            };
            return Section::point(id, &[LinExpr::constant(off)]);
        }
        let Some(subs) = subs else {
            return self.whole_section(v);
        };
        // Linearize: 1-based element index = 1 + Σ (sub_k − 1) · Π_{j<k} ext_j,
        // requiring constant extents for every non-final dimension.
        let mut lin = LinExpr::constant(1);
        let mut mult: i64 = 1;
        for (k, sub) in subs.iter().enumerate() {
            lin = lin.add(&sub.offset(-1).scale(mult));
            match info.dims.get(k) {
                Some(Extent::Const(c)) => mult = mult.saturating_mul(*c),
                Some(Extent::Star) if k + 1 == subs.len() => {}
                Some(_) if k + 1 == subs.len() => {
                    // Symbolic final extent never multiplies anything.
                }
                _ => return self.whole_section(v),
            }
        }
        if let VarKind::Common { offset, .. } = info.kind {
            lin = lin.offset(offset);
        }
        let mut sec = Section::point(id, &[lin]);
        // Constrain subscripts to the declared ranges where constant — this
        // keeps sections inside the object and sharpens emptiness tests.
        for (k, sub) in subs.iter().enumerate() {
            if let Some(Extent::Const(c)) = info.dims.get(k) {
                sec.set = sec
                    .set
                    .constrain(&Constraint::geq(sub, &LinExpr::constant(1)))
                    .constrain(&Constraint::leq(sub, &LinExpr::constant(*c)));
            }
        }
        sec
    }

    /// Map a callee-side section of a formal array parameter into the
    /// caller: retarget to the actual's storage object, shifting by the
    /// sub-array base offset (`a[k]` bases) and the actual's common offset.
    ///
    /// `base_lin` is the caller-side linearized element index of the base
    /// element (1-based within the actual's storage object), or `None` for
    /// whole-array passing of an object whose storage starts at its own
    /// element 1.
    pub fn map_param_section(
        &self,
        callee_sec: &Section,
        actual: VarId,
        base_lin: Option<LinExpr>,
    ) -> Section {
        let target = self.array_of(actual);
        let info = self.program.var(actual);
        let base = match base_lin {
            Some(b) => b,
            None => {
                let off = match info.kind {
                    VarKind::Common { offset, .. } => offset,
                    _ => 0,
                };
                LinExpr::constant(off + 1)
            }
        };
        // callee element d0 (1-based) maps to caller element base + d0 - 1.
        callee_sec.shift_dim0(&base).retarget(target, 1)
    }

    /// Linearized element index of `v[subs]` within `v`'s storage object
    /// (1-based), if affine with constant extents.
    pub fn linear_index(&self, v: VarId, subs: &[LinExpr]) -> Option<LinExpr> {
        let info = self.program.var(v);
        let mut lin = LinExpr::constant(1);
        let mut mult: i64 = 1;
        for (k, sub) in subs.iter().enumerate() {
            lin = lin.add(&sub.offset(-1).scale(mult));
            match info.dims.get(k) {
                Some(Extent::Const(c)) => mult = mult.saturating_mul(*c),
                Some(_) if k + 1 == subs.len() => {}
                _ => return None,
            }
        }
        if let VarKind::Common { offset, .. } = info.kind {
            lin = lin.offset(offset);
        }
        Some(lin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    #[test]
    fn common_members_share_one_key() {
        let p = parse_program(
            "program t\nproc main() {\n common /c/ real a[4], real b[4]\n real x[2]\n a[1] = 0\n b[1] = x[1]\n}",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let a = p.var_by_name("main", "a").unwrap();
        let b = p.var_by_name("main", "b").unwrap();
        let x = p.var_by_name("main", "x").unwrap();
        assert_eq!(ctx.array_of(a), ctx.array_of(b));
        assert_ne!(ctx.array_of(a), ctx.array_of(x));
    }

    #[test]
    fn common_member_sections_are_offset() {
        let p = parse_program(
            "program t\nproc main() {\n common /c/ real a[4], real b[4]\n a[1] = 0\n b[1] = 0\n}",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let a = p.var_by_name("main", "a").unwrap();
        let b = p.var_by_name("main", "b").unwrap();
        let sa = ctx.access_section(a, Some(&[LinExpr::constant(1)]));
        let sb = ctx.access_section(b, Some(&[LinExpr::constant(1)]));
        // a[1] is block element 1; b[1] is block element 5: disjoint.
        assert!(sa.provably_disjoint(&sb));
        // Block element 5 (b[1]'s cell) built directly overlaps sb.
        let sb1 = Section::point(ctx.array_of(a), &[LinExpr::constant(5)]);
        assert!(!sb1.provably_disjoint(&sb));
    }

    #[test]
    fn column_major_linearization() {
        let p = parse_program("program t\nproc main() {\n real a[2, 3]\n a[2, 3] = 0\n}").unwrap();
        let ctx = AnalysisCtx::new(&p);
        let a = p.var_by_name("main", "a").unwrap();
        let lin = ctx
            .linear_index(a, &[LinExpr::constant(2), LinExpr::constant(3)])
            .unwrap();
        // (2-1) + 2*(3-1) + 1 = 6
        assert_eq!(lin, LinExpr::constant(6));
    }

    #[test]
    fn scalar_cells_are_points() {
        let p = parse_program(
            "program t\nproc main() {\n common /c/ real a[4], int n\n int m\n n = 1\n m = 2\n a[1] = 0\n}",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let n = p.var_by_name("main", "n").unwrap();
        let m = p.var_by_name("main", "m").unwrap();
        let a = p.var_by_name("main", "a").unwrap();
        // n is block cell 5 — distinct from a[1..4] but same object.
        let sn = ctx.access_section(n, None);
        assert_eq!(sn.array, ctx.array_of(a));
        let sa = ctx.whole_section(a);
        assert!(sn.provably_disjoint(&sa));
        // m is its own object.
        assert_ne!(ctx.array_of(m), ctx.array_of(n));
    }

    #[test]
    fn whole_section_of_star_array_is_approximate() {
        let p = parse_program(
            "program t\nproc f(real q[*]) { q[1] = 0 }\nproc main() {\n real b[4]\n call f(b)\n}",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let q = p.var_by_name("f", "q").unwrap();
        assert!(ctx.whole_section(q).set.is_approximate());
    }

    #[test]
    fn param_section_mapping_shifts_base() {
        let p = parse_program(
            "program t\nproc f(real q[*]) { q[2] = 0 }\nproc main() {\n real b[10]\n int k\n k = 4\n call f(b[k])\n}",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let q = p.var_by_name("f", "q").unwrap();
        let b = p.var_by_name("main", "b").unwrap();
        let k = p.var_by_name("main", "k").unwrap();
        // Callee writes q[2]; base is b[k] → caller element k + 1.
        let callee = ctx.access_section(q, Some(&[LinExpr::constant(2)]));
        let mapped = ctx.map_param_section(&callee, b, Some(LinExpr::var(AnalysisCtx::sym_of(k))));
        let expect = Section::point(
            ctx.array_of(b),
            &[LinExpr::var(AnalysisCtx::sym_of(k)).offset(1)],
        );
        assert!(
            mapped.provably_subset_of(&expect) && expect.provably_subset_of(&mapped),
            "mapped={} expect={}",
            mapped.set,
            expect.set
        );
    }
}
