//! Loop-carried dependence and privatization tests (§2.4).
//!
//! All tests operate on the *per-iteration* body summary of a loop: two
//! symbolic iterations `i1 ≠ i2` are materialized by renaming the induction
//! symbol (and every loop-varying symbol) separately in the two copies, the
//! loop bounds constrain both, and Fourier–Motzkin emptiness decides whether
//! the two iterations can touch a common element.  "Cannot prove empty"
//! conservatively means "dependence".

use crate::context::AnalysisCtx;
use crate::summarize::{ArrayDataFlow, LoopIterSummary};
use suif_ir::StmtId;
use suif_poly::{ArrayId, Constraint, LinExpr, Section, Var};

/// Kinds of loop-carried conflicts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// Write in one iteration, read in another (flow/anti).
    WriteRead,
    /// Writes in two iterations to the same element (output).
    WriteWrite,
}

/// Rename a section into a specific symbolic iteration: the induction symbol
/// becomes `index`, and every other loop-varying symbol becomes a fresh
/// symbol private to this copy (its value may differ between iterations).
fn iteration_copy(
    ctx: &AnalysisCtx<'_>,
    iter: &LoopIterSummary,
    sec: &Section,
    index: Var,
) -> Section {
    let mut s = sec.substitute(iter.index_sym, &LinExpr::var(index));
    while let Some(v) = s
        .set
        .vars()
        .into_iter()
        .find(|&v| v != index && iter.is_varying(v))
    {
        s = s.substitute(v, &LinExpr::var(ctx.fresh_sym()));
    }
    s
}

fn bounds_constraints(iter: &LoopIterSummary, index: Var) -> Vec<Constraint> {
    let mut out = Vec::new();
    if let Some((first, last)) = &iter.bounds {
        let i = LinExpr::var(index);
        out.push(Constraint::geq(&i, first));
        out.push(Constraint::leq(&i, last));
    }
    out
}

/// Can `a` (in some iteration `i1`) overlap `b` (in a different iteration
/// `i2`)?  With `ordered` set, only `i1 < i2` is considered (anti-dependence
/// direction when `a` is the read set); otherwise both orders are tested.
///
/// Returns `true` when overlap **cannot be ruled out** (conservative).
pub fn cross_iteration_overlap(
    ctx: &AnalysisCtx<'_>,
    iter: &LoopIterSummary,
    a: &Section,
    b: &Section,
    ordered: bool,
) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    debug_assert_eq!(a.array, b.array);
    let i1 = ctx.fresh_sym();
    let i2 = ctx.fresh_sym();
    let ca = iteration_copy(ctx, iter, a, i1);
    let cb = iteration_copy(ctx, iter, b, i2);
    // A self-test (write vs. write of the same section) is symmetric: the
    // `i2 < i1` system is the `i1 < i2` system under the variable bijection
    // swapping the two iteration copies, so one direction decides both.
    let symmetric = !ordered && std::ptr::eq(a, b);
    if suif_poly::staged_emptiness_enabled() {
        // Subscript-level quick ladder (constant-difference / GCD /
        // Banerjee): when every pair of disjuncts provably accesses
        // different elements in some dimension, there is no overlap and no
        // joint system needs to be built — let alone eliminated.
        let lt_gone = quick_order_disjoint(&ca, &cb, i1, i2, iter);
        if lt_gone && (ordered || symmetric || quick_order_disjoint(&cb, &ca, i2, i1, iter)) {
            return false;
        }
    }
    let mut joint = ca.set.intersect(&cb.set);
    for c in bounds_constraints(iter, i1) {
        joint = joint.constrain(&c);
    }
    for c in bounds_constraints(iter, i2) {
        joint = joint.constrain(&c);
    }
    let lt = joint.constrain(&Constraint::lt(&LinExpr::var(i1), &LinExpr::var(i2)));
    if !lt.prove_empty() {
        return true;
    }
    if !ordered && !symmetric {
        let gt = joint.constrain(&Constraint::lt(&LinExpr::var(i2), &LinExpr::var(i1)));
        if !gt.prove_empty() {
            return true;
        }
    }
    false
}

/// Do all disjunct pairs of `first` (iteration `fi`) and `second` (iteration
/// `si`) provably access different elements when `fi < si`?  Sound in one
/// direction only: `true` proves disjointness, `false` is inconclusive.
fn quick_order_disjoint(
    first: &Section,
    second: &Section,
    fi: Var,
    si: Var,
    iter: &LoopIterSummary,
) -> bool {
    let bounds = iter.bounds.as_ref().and_then(|(f, l)| {
        (f.is_constant() && l.is_constant()).then(|| (f.constant_part(), l.constant_part()))
    });
    first.set.disjuncts().iter().all(|pa| {
        second.set.disjuncts().iter().all(|pb| {
            if pa.is_proven_empty() || pb.is_proven_empty() {
                return true;
            }
            (0..first.ndims).any(|k| {
                let d = Var::Dim(k);
                match (pa.solve_unit_eq(d), pb.solve_unit_eq(d)) {
                    (Some(e1), Some(e2)) => {
                        suif_poly::subscript_pair_disjoint(&e1, &e2, fi, si, bounds)
                    }
                    _ => false,
                }
            })
        })
    })
}

/// Are the two sections *identical for every pair of iterations*?  Used for
/// the old-SUIF finalization rule ("every iteration must write to exactly
/// the same region", §5.1.1): then the last iteration's values are the
/// array's final values.
pub fn section_iteration_invariant(
    ctx: &AnalysisCtx<'_>,
    iter: &LoopIterSummary,
    sec: &Section,
) -> bool {
    if sec.is_empty() {
        return true;
    }
    if sec.set.is_approximate() {
        return false;
    }
    let i1 = ctx.fresh_sym();
    let i2 = ctx.fresh_sym();
    let ca = iteration_copy(ctx, iter, sec, i1);
    let cb = iteration_copy(ctx, iter, sec, i2);
    // If any loop-varying symbols other than the index remain, the regions
    // are symbol-dependent and we cannot prove invariance.
    let fresh_ok = |s: &Section, idx: Var| {
        s.set
            .vars()
            .into_iter()
            .all(|v| v == idx || !AnalysisCtx::is_fresh(v) || !in_range(v, iter))
    };
    fn in_range(v: Var, iter: &LoopIterSummary) -> bool {
        matches!(v, Var::Sym(n) if n >= iter.varying.0 && n < iter.varying.1)
    }
    if !fresh_ok(sec, iter.index_sym) {
        return false;
    }
    // ca \ cb must be empty under the bounds (and symmetrically); the index
    // symbols are distinct, so emptiness means the section does not depend
    // on the iteration.
    // `ca \ cb` must be empty for EVERY pair i1 ≠ i2 — both orderings
    // (a monotonically growing region like `[1..i]` differs in exactly one
    // direction, so a single ordering is not enough).
    let mut diff = ca.set.subtract(&cb.set);
    for c in bounds_constraints(iter, i1) {
        diff = diff.constrain(&c);
    }
    for c in bounds_constraints(iter, i2) {
        diff = diff.constrain(&c);
    }
    for order in [
        Constraint::lt(&LinExpr::var(i1), &LinExpr::var(i2)),
        Constraint::lt(&LinExpr::var(i2), &LinExpr::var(i1)),
    ] {
        if !diff.clone().constrain(&order).prove_empty() {
            return false;
        }
    }
    true
}

/// Dependence tester over a completed bottom-up data flow.
pub struct DepTest<'a, 'p> {
    /// The analysis context.
    pub ctx: &'a AnalysisCtx<'p>,
    /// The bottom-up data-flow result.
    pub df: &'a ArrayDataFlow,
}

impl<'a, 'p> DepTest<'a, 'p> {
    /// Does the loop carry a dependence on this storage object?
    /// (Write–read or write–write across iterations.)
    pub fn has_carried_dep(&self, loop_stmt: StmtId, id: ArrayId) -> Option<DepKind> {
        let iter = self.df.loop_iter.get(&loop_stmt)?;
        let s = iter.sum.acc.get(id)?;
        if cross_iteration_overlap(self.ctx, iter, &s.write, &s.read, false) {
            return Some(DepKind::WriteRead);
        }
        if cross_iteration_overlap(self.ctx, iter, &s.write, &s.write, false) {
            return Some(DepKind::WriteWrite);
        }
        None
    }

    /// Is the object privatizable in the loop: no iteration's writes feed
    /// another iteration's *upwards-exposed* reads (§2.4: "the value used in
    /// each iteration comes from [no] previous iteration")?
    pub fn is_privatizable(&self, loop_stmt: StmtId, id: ArrayId) -> bool {
        let Some(iter) = self.df.loop_iter.get(&loop_stmt) else {
            return false;
        };
        let Some(s) = iter.sum.acc.get(id) else {
            return false;
        };
        !cross_iteration_overlap(self.ctx, iter, &s.write, &s.exposed, false)
    }

    /// Old-SUIF finalization rule: every iteration must-writes exactly the
    /// same region (then only the last iteration's values survive, §5.1.1).
    pub fn writes_iteration_invariant(&self, loop_stmt: StmtId, id: ArrayId) -> bool {
        let Some(iter) = self.df.loop_iter.get(&loop_stmt) else {
            return false;
        };
        let Some(s) = iter.sum.acc.get(id) else {
            return true;
        };
        // All writes must be must-writes and the must region invariant.
        if !s.write.subtract(&s.must_write).set.prove_empty() {
            return false;
        }
        section_iteration_invariant(self.ctx, iter, &s.must_write)
    }

    /// Valid parallel reduction on this object in this loop?
    ///
    /// Beyond the region test of §6.2.2.4 (the reduction region must not
    /// overlap any plain access), the accesses *outside* the reduction
    /// region must themselves be dependence-free across iterations: the
    /// reduction runtime only combines the reduction region, so e.g. a
    /// plain must-write to some other cell in every iteration is an output
    /// dependence a reduction cannot repair.
    pub fn reduction_of(&self, loop_stmt: StmtId, id: ArrayId) -> Option<crate::RedOp> {
        let iter = self.df.loop_iter.get(&loop_stmt)?;
        let op = iter.sum.red.valid_reduction(id)?;
        let e = iter.sum.red.get(id)?;
        if let Some(s) = iter.sum.acc.get(id) {
            // The plain writes/reads are the parts of W/R falling in the
            // recorded plain-access region (update accesses live in `red`,
            // provably disjoint from `nonred` per `valid_reduction`, so the
            // intersection over-approximates exactly the plain accesses —
            // conservative for the dependence test).  Subtracting `red`
            // instead would leave spurious residue whenever W and `red`
            // describe the same region through different existential
            // symbols.
            let w = s.write.intersect(&e.nonred);
            let r = s.read.intersect(&e.nonred);
            if cross_iteration_overlap(self.ctx, iter, &w, &r, false)
                || cross_iteration_overlap(self.ctx, iter, &w, &w, false)
            {
                return None;
            }
        }
        Some(op)
    }
}

/// The demand-driven carried-dependence fact of one loop: every storage
/// object the loop accesses, mapped to its carried conflict (if any).
pub type CarriedDeps = std::collections::BTreeMap<ArrayId, Option<DepKind>>;

struct DepsPass<'a, 'p> {
    pa: &'a crate::parallelize::ProgramAnalysis<'p>,
    loop_stmt: StmtId,
}

impl crate::pipeline::Pass for DepsPass<'_, '_> {
    type Output = CarriedDeps;
    fn key(&self) -> crate::pipeline::FactKey {
        crate::pipeline::FactKey::new(
            crate::pipeline::PassId::Deps,
            crate::pipeline::Scope::Loop(self.loop_stmt),
        )
    }
    fn input_hash(&self) -> u128 {
        let mut h = crate::cache::Fnv128::new();
        h.write_u128(self.pa.epoch_hash);
        h.write_u32(self.loop_stmt.0);
        h.0
    }
    fn deps(&self) -> Vec<crate::pipeline::FactKey> {
        vec![crate::pipeline::FactKey::new(
            crate::pipeline::PassId::Summarize,
            crate::pipeline::Scope::Program,
        )]
    }
    fn run(&self) -> CarriedDeps {
        let dt = DepTest {
            ctx: &self.pa.ctx,
            df: &self.pa.df,
        };
        let mut out = CarriedDeps::new();
        if let Some(iter) = self.pa.df.loop_iter.get(&self.loop_stmt) {
            for id in iter.sum.acc.arrays() {
                out.insert(id, dt.has_carried_dep(self.loop_stmt, id));
            }
        }
        out
    }
}

/// Compute (or reuse) the carried-dependence table of one loop through the
/// fact store — a demand-only pass, run the first time a query asks.
pub fn carried_deps_cached(
    pa: &crate::parallelize::ProgramAnalysis<'_>,
    store: &crate::pipeline::FactStore,
    loop_stmt: StmtId,
) -> std::sync::Arc<CarriedDeps> {
    store.demand(&DepsPass { pa, loop_stmt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summarize::ArrayDataFlow;
    use suif_ir::parse_program;

    struct Setup {
        p: suif_ir::Program,
    }

    impl Setup {
        fn new(src: &str) -> Setup {
            Setup {
                p: parse_program(src).unwrap(),
            }
        }

        fn with<R>(
            &self,
            f: impl FnOnce(&AnalysisCtx<'_>, &ArrayDataFlow, &suif_ir::RegionTree) -> R,
        ) -> R {
            let ctx = AnalysisCtx::new(&self.p);
            let df = ArrayDataFlow::analyze(&ctx);
            let tree = suif_ir::RegionTree::build(&self.p);
            f(&ctx, &df, &tree)
        }
    }

    fn loop_named(tree: &suif_ir::RegionTree, name: &str) -> StmtId {
        tree.loops.iter().find(|l| l.name == name).unwrap().stmt
    }

    #[test]
    fn independent_writes_have_no_dep() {
        let s = Setup::new(
            "program t\nproc main() {\n real a[10]\n int i\n do 1 i = 1, 10 {\n a[i] = i\n }\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let a = s.p.var_by_name("main", "a").unwrap();
            assert_eq!(dt.has_carried_dep(l, ctx.array_of(a)), None);
        });
    }

    #[test]
    fn recurrence_is_a_dep_and_not_privatizable() {
        let s = Setup::new(
            "program t\nproc main() {\n real a[11]\n int i\n do 1 i = 1, 10 {\n a[i] = a[i + 1] + a[i]\n }\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let a = s.p.var_by_name("main", "a").unwrap();
            assert!(dt.has_carried_dep(l, ctx.array_of(a)).is_some());
            assert!(!dt.is_privatizable(l, ctx.array_of(a)));
        });
    }

    #[test]
    fn write_then_read_temp_is_privatizable() {
        // tmp fully written then read each iteration: cross-iteration W×E
        // is empty even though W×R overlaps.
        let s = Setup::new(
            "program t\nproc main() {\n real tmp[4], out[20]\n int i, j\n do 1 i = 1, 20 {\n do 2 j = 1, 4 {\n tmp[j] = i + j\n }\n do 3 j = 1, 4 {\n out[i] = out[i] + tmp[j]\n }\n }\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let tmp = s.p.var_by_name("main", "tmp").unwrap();
            assert!(dt.has_carried_dep(l, ctx.array_of(tmp)).is_some());
            assert!(dt.is_privatizable(l, ctx.array_of(tmp)));
            assert!(dt.writes_iteration_invariant(l, ctx.array_of(tmp)));
        });
    }

    #[test]
    fn loop_varying_symbol_blocks_invariance() {
        // Writes a[k..k+1] where k varies per iteration (from an array):
        // regions differ per iteration → not invariant, and deps assumed.
        let s = Setup::new(
            "program t\nproc main() {\n real a[30]\n int idx[10]\n int i, k\n do 1 i = 1, 10 {\n k = idx[i]\n a[k] = 1\n a[k + 1] = 2\n }\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let a = s.p.var_by_name("main", "a").unwrap();
            assert!(!dt.writes_iteration_invariant(l, ctx.array_of(a)));
            // k unknown → possible overlap → dep.
            assert!(dt.has_carried_dep(l, ctx.array_of(a)).is_some());
        });
    }

    #[test]
    fn disjoint_strided_halves_are_independent() {
        // Iteration i writes a[i] and a[i + 100]: never overlaps across
        // iterations.
        let s = Setup::new(
            "program t\nproc main() {\n real a[200]\n int i\n do 1 i = 1, 100 {\n a[i] = 0\n a[i + 100] = 1\n }\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let a = s.p.var_by_name("main", "a").unwrap();
            assert_eq!(dt.has_carried_dep(l, ctx.array_of(a)), None);
        });
    }

    #[test]
    fn scalar_sum_is_dep_but_reduction() {
        let s = Setup::new(
            "program t\nproc main() {\n real s, a[10]\n int i\n do 1 i = 1, 10 {\n s = s + a[i]\n }\n print s\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let sv = s.p.var_by_name("main", "s").unwrap();
            let id = ctx.array_of(sv);
            assert!(dt.has_carried_dep(l, id).is_some());
            assert!(!dt.is_privatizable(l, id));
            assert_eq!(dt.reduction_of(l, id), Some(crate::RedOp::Add));
        });
    }

    #[test]
    fn reduction_rejected_when_other_cell_carries_output_dep() {
        // a[1] is a sum reduction, but a[7] is plainly must-written by every
        // iteration — an output dependence the reduction runtime cannot
        // repair, so the object must NOT be classified as a reduction.
        let s = Setup::new(
            "program t\nproc main() {\n real a[10]\n int i\n do 1 i = 1, 10 {\n a[1] = a[1] + 1.0\n a[7] = 0.0\n }\n print a[1], a[7]\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let a = s.p.var_by_name("main", "a").unwrap();
            let id = ctx.array_of(a);
            assert!(dt.has_carried_dep(l, id).is_some());
            assert_eq!(dt.reduction_of(l, id), None);
        });
    }

    #[test]
    fn reduction_allowed_when_other_cells_are_read_only() {
        // a[1] is a sum reduction and a[7] is only *read* — reads carry no
        // dependence among themselves, so the reduction classification must
        // survive the leftover-access check.
        let s = Setup::new(
            "program t\nproc main() {\n real a[10], x\n int i\n do 1 i = 1, 10 {\n a[1] = a[1] + 1.0\n x = a[7]\n }\n print a[1], x\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let a = s.p.var_by_name("main", "a").unwrap();
            let id = ctx.array_of(a);
            assert_eq!(dt.reduction_of(l, id), Some(crate::RedOp::Add));
        });
    }

    #[test]
    fn histogram_indirect_reduction() {
        let s = Setup::new(
            "program t\nproc main() {\n real h[16]\n int idx[100]\n int i\n do 1 i = 1, 100 {\n h[idx[i]] = h[idx[i]] + 1\n }\n}",
        );
        s.with(|ctx, df, tree| {
            let dt = DepTest { ctx, df };
            let l = loop_named(tree, "main/1");
            let h = s.p.var_by_name("main", "h").unwrap();
            let id = ctx.array_of(h);
            // Unknown subscripts → dependence assumed …
            assert!(dt.has_carried_dep(l, id).is_some());
            // … but the updates form a valid whole-array reduction.
            assert_eq!(dt.reduction_of(l, id), Some(crate::RedOp::Add));
        });
    }
}
