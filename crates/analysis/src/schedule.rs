//! Parallel bottom-up scheduler for the interprocedural pass (§5.2).
//!
//! The call graph (a DAG — recursion is rejected by sema) is condensed into
//! *levels*: `level(p) = 1 + max(level(callees))`, leaves at level 0.  All
//! procedures of one level have their callee flows ready, so a level is
//! summarized concurrently by a pool of scoped workers pulling procedures
//! off a shared claim counter.
//!
//! Parallel results are bit-identical to the sequential pass because
//! [`summarize_proc`] draws fresh symbols from each procedure's own id block
//! ([`AnalysisCtx::with_fresh_block`]) and array ids are interned before the
//! pass starts — no observable state depends on thread placement or
//! completion order.  The final [`ArrayDataFlow`] is merged in deterministic
//! bottom-up order after all levels complete.
//!
//! When a [`SummaryCache`] is supplied, each procedure's content key
//! ([`proc_key`]) is computed level-by-level and the summarization is
//! skipped on a hit — this is what makes the daemon's `reload`
//! incremental.

use crate::cache::{proc_key, SummaryCache};
use crate::context::AnalysisCtx;
use crate::pipeline::Executor;
use crate::summarize::{summarize_proc, ArrayDataFlow, ProcFlow};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use suif_ir::{CallGraph, ProcId};

/// One finished procedure: (pid, flow, seconds spent, served from cache).
type LevelResult = (ProcId, Arc<ProcFlow>, f64, bool);

/// How the bottom-up pass should run.
#[derive(Clone, Debug, Default)]
pub struct ScheduleOptions {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
}

impl ScheduleOptions {
    /// Run on the current thread only.
    pub fn sequential() -> ScheduleOptions {
        ScheduleOptions { threads: 1 }
    }

    /// The effective worker count (honoring the `SUIF_EXECUTOR_THREADS`
    /// override and `0` → cores), shared with [`Executor::resolve`].
    pub fn resolved_threads(&self) -> usize {
        Executor::resolve(self.threads)
    }

    /// An [`Executor`] sized by these options.
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads)
    }
}

/// What the scheduler did: sizes, cache traffic, and timing.
#[derive(Clone, Debug, Default)]
pub struct ScheduleStats {
    /// Worker threads used.
    pub threads: usize,
    /// Number of call-graph levels.
    pub levels: usize,
    /// Total procedures.
    pub procs: usize,
    /// Procedures actually summarized this run (= cache misses, or all
    /// procedures when no cache is attached).
    pub summarized: usize,
    /// Procedures served from the summary cache.
    pub cache_hits: usize,
    /// Wall-clock seconds of the whole bottom-up pass.
    pub wall_secs: f64,
    /// Summed busy seconds across workers; utilization is
    /// `busy_secs / (threads * wall_secs)`.
    pub busy_secs: f64,
    /// Busy seconds per worker id, accumulated across levels (the server's
    /// `stats` surfaces these individually, not only the total).
    pub worker_busy_secs: Vec<f64>,
    /// Per-procedure summarize seconds, bottom-up order (cache hits report
    /// the lookup time, effectively 0).
    pub proc_secs: Vec<(ProcId, f64)>,
}

impl ScheduleStats {
    /// Fraction of worker capacity spent summarizing, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.threads == 0 || self.wall_secs <= 0.0 {
            return 0.0;
        }
        (self.busy_secs / (self.threads as f64 * self.wall_secs)).min(1.0)
    }
}

/// Condense the call graph into bottom-up levels; within a level,
/// procedures are sorted by id (a stable, schedule-independent order).
pub fn levels(cg: &CallGraph) -> Vec<Vec<ProcId>> {
    let mut level: HashMap<ProcId, usize> = HashMap::new();
    let mut out: Vec<Vec<ProcId>> = Vec::new();
    for &p in cg.bottom_up() {
        let l = cg
            .callees_of(p)
            .iter()
            .map(|c| level[c] + 1)
            .max()
            .unwrap_or(0);
        level.insert(p, l);
        if out.len() <= l {
            out.resize_with(l + 1, Vec::new);
        }
        out[l].push(p);
    }
    for lv in &mut out {
        lv.sort_unstable();
    }
    out
}

/// Run the bottom-up pass over the whole program and return the merged
/// data-flow result plus scheduling statistics.
pub fn run(
    ctx: &AnalysisCtx<'_>,
    opts: &ScheduleOptions,
    cache: Option<&SummaryCache>,
) -> (ArrayDataFlow, ScheduleStats) {
    let t0 = Instant::now();
    let lvls = levels(&ctx.cg);
    let exec = opts.executor();
    let threads = exec.threads().max(1);
    let mut flows: HashMap<ProcId, Arc<ProcFlow>> = HashMap::new();
    let mut keys: HashMap<ProcId, u128> = HashMap::new();
    let mut stats = ScheduleStats {
        threads,
        levels: lvls.len(),
        procs: ctx.cg.bottom_up().len(),
        ..ScheduleStats::default()
    };
    let mut proc_secs: HashMap<ProcId, f64> = HashMap::new();

    for level in &lvls {
        // Content keys depend only on lower levels; compute them up front so
        // workers share one immutable map.
        if cache.is_some() {
            for &pid in level {
                let k = proc_key(ctx, pid, &keys);
                keys.insert(pid, k);
            }
        }
        let done: Mutex<Vec<LevelResult>> = Mutex::new(Vec::with_capacity(level.len()));
        let level_stats = exec.run(level.len(), |i| {
            let pid = level[i];
            let p0 = Instant::now();
            let (flow, hit) = match cache {
                Some(c) => match c.get(keys[&pid]) {
                    Some(f) => (f, true),
                    None => {
                        let f = Arc::new(summarize_proc(ctx, pid, &flows));
                        c.insert(keys[&pid], f.clone());
                        (f, false)
                    }
                },
                None => (Arc::new(summarize_proc(ctx, pid, &flows)), false),
            };
            done.lock()
                .push((pid, flow, p0.elapsed().as_secs_f64(), hit));
        });
        stats.busy_secs += level_stats.busy_secs();
        if stats.worker_busy_secs.len() < level_stats.worker_busy_secs.len() {
            stats
                .worker_busy_secs
                .resize(level_stats.worker_busy_secs.len(), 0.0);
        }
        for (w, secs) in level_stats.worker_busy_secs.iter().enumerate() {
            stats.worker_busy_secs[w] += secs;
        }
        for (pid, flow, secs, hit) in done.into_inner() {
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.summarized += 1;
            }
            proc_secs.insert(pid, secs);
            flows.insert(pid, flow);
        }
    }

    // Deterministic merge, independent of completion order.
    let mut df = ArrayDataFlow::default();
    for &pid in ctx.cg.bottom_up() {
        df.merge_proc(pid, &flows[&pid]);
        stats
            .proc_secs
            .push((pid, proc_secs.get(&pid).copied().unwrap_or(0.0)));
    }
    stats.wall_secs = t0.elapsed().as_secs_f64();
    (df, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    const SRC: &str = "program t
proc leaf1(real q[*]) { q[1] = 0 }
proc leaf2(real q[*]) { q[2] = 0 }
proc mid(real q[*]) { call leaf1(q) call leaf2(q) }
proc main() {
 real b[8]
 int i
 do 1 i = 1, 4 {
  call mid(b)
 }
}";

    #[test]
    fn levels_respect_call_depth() {
        let p = parse_program(SRC).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let lv = levels(&ctx.cg);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0].len(), 2); // leaf1, leaf2
        assert_eq!(lv[1].len(), 1); // mid
        assert_eq!(lv[2].len(), 1); // main
    }

    fn df_fingerprint(df: &ArrayDataFlow) -> String {
        use std::collections::BTreeMap;
        let procs: BTreeMap<_, _> = df
            .proc_summary
            .iter()
            .map(|(k, v)| (k.0, format!("{v:?}")))
            .collect();
        let stmts: BTreeMap<_, _> = df
            .stmt_summary
            .iter()
            .map(|(k, v)| (k.0, format!("{v:?}")))
            .collect();
        let iters: BTreeMap<_, _> = df
            .loop_iter
            .iter()
            .map(|(k, v)| (k.0, format!("{v:?}")))
            .collect();
        format!("{procs:?}|{stmts:?}|{iters:?}")
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let p = parse_program(SRC).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let seq = ArrayDataFlow::analyze(&ctx);
        let (par, stats) = run(&ctx, &ScheduleOptions { threads: 4 }, None);
        assert_eq!(df_fingerprint(&seq), df_fingerprint(&par));
        assert_eq!(stats.summarized, 4);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn warm_cache_summarizes_nothing() {
        let p = parse_program(SRC).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let cache = SummaryCache::new();
        let (cold, s1) = run(&ctx, &ScheduleOptions::sequential(), Some(&cache));
        assert_eq!(s1.summarized, 4);
        let (warm, s2) = run(&ctx, &ScheduleOptions { threads: 4 }, Some(&cache));
        assert_eq!(s2.summarized, 0, "warm run must re-summarize nothing");
        assert_eq!(s2.cache_hits, 4);
        assert_eq!(df_fingerprint(&cold), df_fingerprint(&warm));
    }
}
