//! Scalar symbolic analysis (§2.4: "finds loop invariants and induction
//! variables, determines affine relationships between variables, and
//! performs constant propagation").
//!
//! The environment maps every scalar variable to an affine value over
//! *value symbols*.  A value symbol is immutable (SSA-like): `Sym(v.0)`
//! denotes "the value `v` had on entry to the current procedure analysis",
//! and fresh symbols (allocated from [`crate::AnalysisCtx::fresh_sym`])
//! denote unknown values produced by assignments, joins, or calls.  Array
//! sections built from these symbols therefore never confuse two different
//! dynamic values of the same variable.
//!
//! Loop-variance falls out of symbol identity: every symbol allocated while
//! analyzing a loop body (iteration-entry values of modified scalars, the
//! induction symbol, join values) is *varying* with respect to that loop,
//! and the dependence tests rename such symbols per iteration copy.

use crate::context::AnalysisCtx;
use std::collections::HashMap;
use suif_ir::ast::{BinOp, UnaryOp};
use suif_ir::{Expr, VarId};
use suif_poly::{LinExpr, Var};

/// The affine environment.
#[derive(Clone, Debug, Default)]
pub struct SymEnv {
    vals: HashMap<VarId, LinExpr>,
}

impl SymEnv {
    /// Environment at procedure entry: every scalar maps to its own entry
    /// symbol.
    pub fn proc_entry() -> SymEnv {
        SymEnv::default()
    }

    /// Current affine value of a scalar.
    pub fn value_of(&self, v: VarId) -> LinExpr {
        self.vals
            .get(&v)
            .cloned()
            .unwrap_or_else(|| LinExpr::var(AnalysisCtx::sym_of(v)))
    }

    /// Record an assignment `v := val`.
    pub fn assign(&mut self, v: VarId, val: LinExpr) {
        self.vals.insert(v, val);
    }

    /// Forget `v`'s value (assigned something non-affine): bind a fresh
    /// symbol.
    pub fn kill(&mut self, ctx: &AnalysisCtx<'_>, v: VarId) -> Var {
        let s = ctx.fresh_sym();
        self.vals.insert(v, LinExpr::var(s));
        s
    }

    /// Merge two branch environments: variables with differing values get a
    /// fresh join symbol.  Keys are visited in sorted order so the fresh
    /// symbols a merge allocates are deterministic (summaries must be a pure
    /// function of the procedure for the scheduler and summary cache).
    pub fn merge(&mut self, ctx: &AnalysisCtx<'_>, other: &SymEnv) {
        let mut keys: Vec<VarId> = self.vals.keys().chain(other.vals.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        for v in keys {
            let a = self.value_of(v);
            let b = other.value_of(v);
            if a != b {
                self.kill(ctx, v);
            }
        }
    }

    /// Affine value of an expression, if it is affine over the current
    /// environment (constants, scalar reads, `+`, `-`, constant `*`).
    pub fn affine(&self, e: &Expr) -> Option<LinExpr> {
        match e {
            Expr::Int(c) => Some(LinExpr::constant(*c)),
            Expr::Real(_) => None,
            Expr::Scalar(v) => Some(self.value_of(*v)),
            Expr::Element(..) => None,
            Expr::Unary(UnaryOp::Neg, a) => Some(self.affine(a)?.scale(-1)),
            Expr::Unary(UnaryOp::Not, _) => None,
            Expr::Binary(op, a, b) => {
                let (la, lb) = (self.affine(a), self.affine(b));
                match op {
                    BinOp::Add => Some(la?.add(&lb?)),
                    BinOp::Sub => Some(la?.sub(&lb?)),
                    BinOp::Mul => {
                        let la = la?;
                        let lb = lb?;
                        if la.is_constant() {
                            Some(lb.scale(la.constant_part()))
                        } else if lb.is_constant() {
                            Some(la.scale(lb.constant_part()))
                        } else {
                            None
                        }
                    }
                    BinOp::Div => {
                        // Exact constant division only.
                        let la = la?;
                        let lb = lb?;
                        if lb.is_constant() && lb.constant_part() != 0 && la.is_constant() {
                            let (x, y) = (la.constant_part(), lb.constant_part());
                            if x % y == 0 {
                                return Some(LinExpr::constant(x / y));
                            }
                        }
                        None
                    }
                    _ => None,
                }
            }
            Expr::Intrinsic(..) => None,
        }
    }

    /// Substitute one symbol throughout every tracked value (parameter
    /// mapping at call sites).
    pub fn substitute_all(&mut self, sym: Var, repl: &LinExpr) {
        for val in self.vals.values_mut() {
            *val = val.substitute(sym, repl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    #[test]
    fn tracks_affine_chains() {
        // k1p1 = k1 + 1; k2p1 = k2 + 1 — the vsetuv/85 pattern (§4.2.3).
        let p = parse_program(
            "program t\nproc main() {\n int k1, k1p1\n k1p1 = k1 + 1\n k1p1 = k1p1 * 2\n}",
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let k1 = p.var_by_name("main", "k1").unwrap();
        let k1p1 = p.var_by_name("main", "k1p1").unwrap();
        let mut env = SymEnv::proc_entry();
        let main = p.proc_by_name("main").unwrap();
        for s in &main.body {
            if let suif_ir::Stmt::Assign { lhs, rhs, .. } = s {
                match env.affine(rhs) {
                    Some(val) => env.assign(lhs.var(), val),
                    None => {
                        env.kill(&ctx, lhs.var());
                    }
                }
            }
        }
        // k1p1 = 2*(k1 + 1) = 2*k1 + 2
        let expect = LinExpr::var(AnalysisCtx::sym_of(k1)).offset(1).scale(2);
        assert_eq!(env.value_of(k1p1), expect);
    }

    #[test]
    fn merge_kills_divergent_values() {
        let p = parse_program("program t\nproc main() {\n int a\n a = 1\n}").unwrap();
        let ctx = AnalysisCtx::new(&p);
        let a = p.var_by_name("main", "a").unwrap();
        let mut e1 = SymEnv::proc_entry();
        let mut e2 = SymEnv::proc_entry();
        e1.assign(a, LinExpr::constant(1));
        e2.assign(a, LinExpr::constant(2));
        e1.merge(&ctx, &e2);
        let v = e1.value_of(a);
        assert!(!v.is_constant(), "join must be a fresh symbol, got {v}");
        // Equal values survive merges.
        let mut e3 = SymEnv::proc_entry();
        let mut e4 = SymEnv::proc_entry();
        e3.assign(a, LinExpr::constant(7));
        e4.assign(a, LinExpr::constant(7));
        e3.merge(&ctx, &e4);
        assert_eq!(e3.value_of(a), LinExpr::constant(7));
    }

    #[test]
    fn nonaffine_expressions_are_rejected() {
        let p = parse_program(
            "program t\nproc main() {\n int a, b\n real x[3]\n a = 1\n b = 2\n x[1] = 0\n}",
        )
        .unwrap();
        let _ctx = AnalysisCtx::new(&p);
        let a = p.var_by_name("main", "a").unwrap();
        let b = p.var_by_name("main", "b").unwrap();
        let env = SymEnv::proc_entry();
        use suif_ir::Expr as E;
        // a * b is not affine
        let e = E::Binary(BinOp::Mul, Box::new(E::Scalar(a)), Box::new(E::Scalar(b)));
        assert!(env.affine(&e).is_none());
        // 3 * b is affine
        let e2 = E::Binary(BinOp::Mul, Box::new(E::Int(3)), Box::new(E::Scalar(b)));
        assert_eq!(
            env.affine(&e2).unwrap(),
            LinExpr::term(AnalysisCtx::sym_of(b), 3)
        );
    }
}
