//! Content-addressed per-procedure summary cache.
//!
//! The unit of caching is the [`ProcFlow`]: everything the bottom-up pass
//! derives from one procedure.  Because [`crate::summarize::summarize_proc`]
//! is a pure function of (procedure, callee flows) — fresh symbols come from
//! the procedure's own block and array ids are interned eagerly in program
//! order — a flow can be reused across analysis runs whenever its *content
//! key* matches.
//!
//! The key hashes the procedure body (including its statement and variable
//! ids, so edits that renumber ids downstream soundly miss), the layouts of
//! every variable the procedure declares together with the storage object
//! each one interns to, the full common-block layout, and the keys of all
//! callees.  A `reload` therefore re-summarizes exactly the dirty cone: the
//! edited procedures, everything whose ids shifted, and their transitive
//! callers.
//!
//! The map is sharded under [`parking_lot::Mutex`] so scheduler workers on
//! different procedures rarely contend.

use crate::context::AnalysisCtx;
use crate::summarize::ProcFlow;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use suif_ir::{LoopInfo, ProcId};

const SHARDS: usize = 16;

/// 128-bit FNV-1a (shared with the pipeline's fact hashes).
#[derive(Clone, Copy)]
pub(crate) struct Fnv128(pub(crate) u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Fnv128 {
        Fnv128(Self::OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold `bytes` eight at a time (one 128-bit multiply per word instead
    /// of per byte), mixing the length in last so `"ab" + "c"` and
    /// `"a" + "bc"` cannot collide via the padding-free tail.  NOT
    /// byte-compatible with [`Fnv128::write`]; used for bulk integrity
    /// checksums (snapshot payloads), never for persisted fact hashes.
    pub(crate) fn write_words(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            self.0 ^= u64::from_le_bytes(w.try_into().unwrap()) as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        for &b in chunks.remainder() {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self.0 ^= bytes.len() as u128;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    pub(crate) fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }
}

/// Content key of one procedure's flow under a given context.
///
/// `callee_keys` must already contain the key of every callee of `pid`
/// (guaranteed when keys are computed in bottom-up order).
pub fn proc_key(ctx: &AnalysisCtx<'_>, pid: ProcId, callee_keys: &HashMap<ProcId, u128>) -> u128 {
    let program = ctx.program;
    let proc = program.proc(pid);
    let mut h = Fnv128::new();
    h.write_u32(pid.0);
    // Body, parameter list, and ids — `Debug` covers every `StmtId`,
    // `VarId`, operator, and literal in the procedure.
    h.write(format!("{proc:?}").as_bytes());
    // Layout and storage identity of every variable the procedure sees.
    // `array_of` pins the interned id so a flow is never replayed into a
    // context that assigns the object a different id.
    for v in proc.all_vars() {
        h.write_u32(v.0);
        h.write(format!("{:?}", program.var(v)).as_bytes());
        h.write_u32(ctx.array_of(v).0);
    }
    // Whole common-block layout: member offsets and block sizes shift
    // sections even when the procedure text is unchanged.
    for c in &program.commons {
        h.write(format!("{c:?}").as_bytes());
    }
    // Callee flows, in call-site order.
    for &callee in ctx.cg.callees_of(pid) {
        h.write_u32(callee.0);
        h.write_u128(*callee_keys.get(&callee).expect("callee key computed first"));
    }
    h.0
}

/// Content keys of every procedure, computed in bottom-up order (so each
/// key sees its callees' keys).
pub fn all_proc_keys(ctx: &AnalysisCtx<'_>) -> HashMap<ProcId, u128> {
    let mut keys = HashMap::new();
    for &pid in ctx.cg.bottom_up() {
        let k = proc_key(ctx, pid, &keys);
        keys.insert(pid, k);
    }
    keys
}

/// Whole-program content key: the fold of every procedure key in bottom-up
/// order.  Changes exactly when some procedure's flow could change.
pub fn program_key(ctx: &AnalysisCtx<'_>, proc_keys: &HashMap<ProcId, u128>) -> u128 {
    let mut h = Fnv128::new();
    for &pid in ctx.cg.bottom_up() {
        h.write_u32(pid.0);
        h.write_u128(proc_keys[&pid]);
    }
    h.0
}

/// Region-granular content key of one loop: the owning procedure's key
/// (which already covers the loop body and every callee transitively) plus
/// the loop's identity within it.
pub fn loop_key(li: &LoopInfo, proc_keys: &HashMap<ProcId, u128>) -> u128 {
    let mut h = Fnv128::new();
    h.write_u128(proc_keys[&li.proc]);
    h.write_u32(li.stmt.0);
    h.write(li.name.as_bytes());
    h.0
}

/// A sharded, content-addressed `key -> Arc<ProcFlow>` map with hit/miss
/// counters.  Shared across analysis runs of one daemon session.
pub struct SummaryCache {
    shards: [Mutex<HashMap<u128, Arc<ProcFlow>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SummaryCache {
    fn default() -> Self {
        SummaryCache::new()
    }
}

impl SummaryCache {
    /// An empty cache.
    pub fn new() -> SummaryCache {
        SummaryCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, Arc<ProcFlow>>> {
        &self.shards[(key >> 64) as usize % SHARDS]
    }

    /// Look up a flow, counting the hit or miss.
    pub fn get(&self, key: u128) -> Option<Arc<ProcFlow>> {
        let found = self.shard(key).lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a freshly computed flow.
    pub fn insert(&self, key: u128, flow: Arc<ProcFlow>) {
        self.shard(key).lock().insert(key, flow);
    }

    /// `(hits, misses)` since creation (or the last [`SummaryCache::reset_counters`]).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Zero the hit/miss counters (entries are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Number of cached flows.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry and zero the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    fn keys_of(src: &str) -> (HashMap<String, u128>, suif_ir::Program) {
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let mut keys = HashMap::new();
        for &pid in ctx.cg.bottom_up() {
            let k = proc_key(&ctx, pid, &keys);
            keys.insert(pid, k);
        }
        let by_name = p
            .procedures
            .iter()
            .map(|pr| (pr.name.clone(), keys[&pr.id]))
            .collect();
        (by_name, p)
    }

    #[test]
    fn key_is_stable_across_builds() {
        let src =
            "program t\nproc f(real q[*]) { q[1] = 0 }\nproc main() {\n real b[4]\n call f(b)\n}";
        let (k1, _p1) = keys_of(src);
        let (k2, _p2) = keys_of(src);
        assert_eq!(k1, k2);
    }

    #[test]
    fn editing_a_leaf_invalidates_its_callers_only() {
        let base = "program t\nproc f(real q[*]) { q[1] = 0 }\nproc g(real q[*]) { q[2] = 0 }\nproc main() {\n real b[4]\n call f(b)\n call g(b)\n}";
        // Edit g's body; f precedes g in the source so its ids are unchanged.
        let edit = "program t\nproc f(real q[*]) { q[1] = 0 }\nproc g(real q[*]) { q[3] = 0 }\nproc main() {\n real b[4]\n call f(b)\n call g(b)\n}";
        let (k1, _) = keys_of(base);
        let (k2, _) = keys_of(edit);
        assert_eq!(k1["f"], k2["f"], "untouched leaf must keep its key");
        assert_ne!(k1["g"], k2["g"], "edited body must change the key");
        assert_ne!(k1["main"], k2["main"], "callers of the edit must miss");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let c = SummaryCache::new();
        assert!(c.get(42).is_none());
        c.insert(42, Arc::new(ProcFlow::default()));
        assert!(c.get(42).is_some());
        assert_eq!(c.counters(), (1, 1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.counters(), (0, 0));
    }
}
