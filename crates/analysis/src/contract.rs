//! Array contraction (§5.6).
//!
//! Contraction maps an array to a lower-dimensional array (or a scalar) when
//! the live ranges of the elements along one dimension never interfere:
//! legal in a loop when the array has **no upwards-exposed reads** in the
//! loop, **no loop-carried dependence at the contracted dimension** (every
//! access subscripts that dimension with the loop index), and is **not live
//! at the loop's exit** — exactly the three §5.6 conditions, the last two of
//! which come from the liveness analysis.
//!
//! The transformation rewrites the IR (dropping the dimension from the
//! declaration and from every access) and re-resolves the program through
//! the pretty-printer, which keeps all ids consistent.

use crate::context::ArrayKey;
use crate::parallelize::ProgramAnalysis;
use suif_ir::{pretty, Expr, Extent, Program, Ref, Stmt, StmtId, VarId, VarKind};

/// One legal contraction opportunity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContractionCandidate {
    /// The array to contract.
    pub var: VarId,
    /// The loop it is contracted against.
    pub loop_stmt: StmtId,
    /// The dimension (0-based) to remove.
    pub dim: usize,
}

/// Find all legal contractions in the program.
pub fn find_candidates(pa: &ProgramAnalysis<'_>) -> Vec<ContractionCandidate> {
    let ctx = &pa.ctx;
    let program = ctx.program;
    let mut out = Vec::new();
    let Some(live) = pa.liveness.as_ref() else {
        return out; // contraction needs liveness (§5.1.3)
    };
    for li in &ctx.tree.loops {
        let Some(closed) = pa.df.stmt_summary.get(&li.stmt) else {
            continue;
        };
        for v in program.proc(li.proc).all_vars() {
            let info = program.var(v);
            if !info.is_array() || !matches!(info.kind, VarKind::Local) {
                continue;
            }
            if ctx.const_extents(v).is_none() {
                continue;
            }
            let id = ctx.array_of(v);
            let Some(s) = closed.acc.get(id) else {
                continue;
            };
            if s.write.is_empty() {
                continue;
            }
            // (1) no upwards-exposed reads in the loop;
            if !s.exposed.set.prove_empty() {
                continue;
            }
            // (3) dead at loop exit;
            if !live.is_dead_after(li.stmt, id) {
                continue;
            }
            // (2) every access in the program is inside this loop and
            // subscripts some dimension with exactly the loop index —
            // then elements along that dimension never coexist.
            let Some(dim) = contractible_dim(program, li.stmt, li.var, v) else {
                continue;
            };
            out.push(ContractionCandidate {
                var: v,
                loop_stmt: li.stmt,
                dim,
            });
        }
    }
    out
}

/// The dimension all accesses index with the loop variable, if (a) every
/// access to `v` in the program sits inside the loop, (b) `v` is never
/// passed to a procedure, and (c) one dimension is always subscripted by
/// exactly the loop's induction variable.
fn contractible_dim(
    program: &Program,
    loop_stmt: StmtId,
    loop_var: VarId,
    v: VarId,
) -> Option<usize> {
    let rank = program.var(v).dims.len();
    let mut candidate_dims: Vec<bool> = vec![true; rank];
    let mut inside_ok = true;
    let mut seen_any = false;

    // Gather accesses; track whether each is inside the loop.
    let proc = program.var(v).proc;
    fn visit_expr(e: &Expr, v: VarId, hits: &mut Vec<Vec<Expr>>) {
        e.visit_element_reads(&mut |var, subs| {
            if var == v {
                hits.push(subs.to_vec());
            }
        });
    }
    fn walk(
        body: &[Stmt],
        v: VarId,
        inside: bool,
        loop_stmt: StmtId,
        acc: &mut Vec<(bool, Vec<Expr>)>,
        passed: &mut bool,
    ) {
        for s in body {
            let now_inside = inside || s.id() == loop_stmt;
            match s {
                Stmt::Assign { lhs, rhs, .. } => {
                    let mut hits = Vec::new();
                    visit_expr(rhs, v, &mut hits);
                    if let Ref::Element(var, subs) = lhs {
                        if *var == v {
                            hits.push(subs.clone());
                        }
                        for e in subs {
                            visit_expr(e, v, &mut hits);
                        }
                    } else if lhs.var() == v {
                        *passed = true; // scalar use of an array: impossible
                    }
                    for h in hits {
                        acc.push((inside, h));
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    let mut hits = Vec::new();
                    visit_expr(cond, v, &mut hits);
                    for h in hits {
                        acc.push((inside, h));
                    }
                    walk(then_body, v, inside, loop_stmt, acc, passed);
                    walk(else_body, v, inside, loop_stmt, acc, passed);
                }
                Stmt::Do { body, .. } => {
                    walk(body, v, now_inside, loop_stmt, acc, passed);
                }
                Stmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            suif_ir::Arg::ArrayWhole(av)
                            | suif_ir::Arg::ArrayPart { var: av, .. } => {
                                if *av == v {
                                    *passed = true;
                                }
                            }
                            suif_ir::Arg::Value(e) => {
                                let mut hits = Vec::new();
                                visit_expr(e, v, &mut hits);
                                for h in hits {
                                    acc.push((inside, h));
                                }
                            }
                            suif_ir::Arg::ScalarVar(_) => {}
                        }
                    }
                }
                Stmt::Read { lhs, .. } => {
                    if lhs.var() == v {
                        acc.push((inside, Vec::new()));
                    }
                }
                Stmt::Print { args, .. } => {
                    for e in args {
                        let mut hits = Vec::new();
                        visit_expr(e, v, &mut hits);
                        for h in hits {
                            acc.push((inside, h));
                        }
                    }
                }
            }
        }
    }

    let mut accesses: Vec<(bool, Vec<Expr>)> = Vec::new();
    let mut passed = false;
    walk(
        &program.proc(proc).body,
        v,
        false,
        loop_stmt,
        &mut accesses,
        &mut passed,
    );
    if passed {
        return None;
    }
    for (inside, subs) in &accesses {
        seen_any = true;
        if !inside {
            inside_ok = false;
            break;
        }
        for (k, dim_ok) in candidate_dims.iter_mut().enumerate() {
            let is_loop_var = matches!(subs.get(k), Some(Expr::Scalar(sv)) if *sv == loop_var);
            if !is_loop_var {
                *dim_ok = false;
            }
        }
    }
    if !seen_any || !inside_ok {
        return None;
    }
    candidate_dims.iter().position(|&ok| ok)
}

struct ContractPass<'a, 'p> {
    pa: &'a ProgramAnalysis<'p>,
}

impl crate::pipeline::Pass for ContractPass<'_, '_> {
    type Output = Vec<ContractionCandidate>;
    fn key(&self) -> crate::pipeline::FactKey {
        crate::pipeline::FactKey::new(
            crate::pipeline::PassId::Contract,
            crate::pipeline::Scope::Program,
        )
    }
    fn input_hash(&self) -> u128 {
        self.pa.epoch_hash
    }
    fn deps(&self) -> Vec<crate::pipeline::FactKey> {
        vec![
            crate::pipeline::FactKey::new(
                crate::pipeline::PassId::Summarize,
                crate::pipeline::Scope::Program,
            ),
            crate::pipeline::FactKey::new(
                crate::pipeline::PassId::Liveness,
                crate::pipeline::Scope::Program,
            ),
        ]
    }
    fn run(&self) -> Vec<ContractionCandidate> {
        find_candidates(self.pa)
    }
}

/// Demand-driven [`find_candidates`]: computed the first time a query asks,
/// reused from the fact store afterwards.
pub fn find_candidates_cached(
    pa: &ProgramAnalysis<'_>,
    store: &crate::pipeline::FactStore,
) -> std::sync::Arc<Vec<ContractionCandidate>> {
    store.demand(&ContractPass { pa })
}

/// Apply one contraction: returns the rewritten (re-resolved) program.
pub fn apply(program: &Program, cand: &ContractionCandidate) -> Result<Program, String> {
    let mut p = program.clone();
    let vi = cand.var.0 as usize;
    if cand.dim >= p.vars[vi].dims.len() {
        return Err("dimension out of range".into());
    }
    p.vars[vi].dims.remove(cand.dim);

    fn fix_expr(e: &mut Expr, v: VarId, dim: usize) {
        match e {
            Expr::Element(var, subs) => {
                for s in subs.iter_mut() {
                    fix_expr(s, v, dim);
                }
                if *var == v {
                    subs.remove(dim);
                    if subs.is_empty() {
                        *e = Expr::Scalar(v);
                    }
                }
            }
            Expr::Unary(_, a) => fix_expr(a, v, dim),
            Expr::Binary(_, a, b) => {
                fix_expr(a, v, dim);
                fix_expr(b, v, dim);
            }
            Expr::Intrinsic(_, args) => {
                for a in args {
                    fix_expr(a, v, dim);
                }
            }
            _ => {}
        }
    }
    fn fix_ref(r: &mut Ref, v: VarId, dim: usize) {
        if let Ref::Element(var, subs) = r {
            for s in subs.iter_mut() {
                fix_expr(s, v, dim);
            }
            if *var == v {
                subs.remove(dim);
                if subs.is_empty() {
                    *r = Ref::Scalar(v);
                }
            }
        }
    }
    fn fix_body(body: &mut [Stmt], v: VarId, dim: usize) {
        for s in body {
            match s {
                Stmt::Assign { lhs, rhs, .. } => {
                    fix_ref(lhs, v, dim);
                    fix_expr(rhs, v, dim);
                }
                Stmt::Read { lhs, .. } => fix_ref(lhs, v, dim),
                Stmt::Print { args, .. } => {
                    for a in args {
                        fix_expr(a, v, dim);
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } => {
                    fix_expr(cond, v, dim);
                    fix_body(then_body, v, dim);
                    fix_body(else_body, v, dim);
                }
                Stmt::Do {
                    lo, hi, step, body, ..
                } => {
                    fix_expr(lo, v, dim);
                    fix_expr(hi, v, dim);
                    if let Some(st) = step {
                        fix_expr(st, v, dim);
                    }
                    fix_body(body, v, dim);
                }
                Stmt::Call { args, .. } => {
                    for a in args {
                        match a {
                            suif_ir::Arg::Value(e) => fix_expr(e, v, dim),
                            suif_ir::Arg::ArrayPart { base, .. } => {
                                for b in base {
                                    fix_expr(b, v, dim);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
    }
    let proc_idx = p.vars[vi].proc.0 as usize;
    fix_body(&mut p.procedures[proc_idx].body, cand.var, cand.dim);

    // Re-resolve through the printer for consistent ids and line numbers.
    let src = pretty::program_to_string(&p);
    suif_ir::parse_program(&src).map_err(|e| format!("contracted program failed to reparse: {e}"))
}

/// Total elements saved by applying a set of candidates (reporting metric).
pub fn elements_saved(program: &Program, cands: &[ContractionCandidate]) -> i64 {
    let mut saved = 0;
    for c in cands {
        let info = program.var(c.var);
        let before = info.const_size().unwrap_or(0);
        let after: i64 = info
            .dims
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != c.dim)
            .map(|(_, d)| match d {
                Extent::Const(c) => *c,
                _ => 1,
            })
            .product();
        saved += before - after;
    }
    saved
}

/// Helper for reporting: the key of a candidate's object.
pub fn candidate_key(pa: &ProgramAnalysis<'_>, c: &ContractionCandidate) -> ArrayKey {
    pa.ctx.key_of(c.var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallelize::{ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    /// The flo88 psmoo pattern after affine partitioning (Fig. 5-11(b)):
    /// `d(i, j)` and `t(i, j)` only live within one `j` iteration.
    const PSMOO: &str = r#"program t
const il = 8
const jl = 6
proc main() {
  real d[il, jl], t[il, jl]
  real acc[jl]
  int i, j, k
  do 50 j = 2, jl {
    d[1, j] = 0
    do 30 i = 2, il {
      t[i, j] = d[i - 1, j] * 0.5
      d[i, j] = t[i, j] + 1.0
    }
    do 40 i = 2, il {
      acc[j] = acc[j] + d[i, j]
    }
  }
  print acc[2]
}
"#;

    #[test]
    fn finds_psmoo_contractions() {
        let p = parse_program(PSMOO).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let cands = find_candidates(&pa);
        let names: Vec<(String, usize)> = cands
            .iter()
            .map(|c| (p.var(c.var).name.clone(), c.dim))
            .collect();
        assert!(
            names.contains(&("d".to_string(), 1)),
            "d contracted on j-dim: {names:?}"
        );
        assert!(
            names.contains(&("t".to_string(), 1)),
            "t contracted on j-dim: {names:?}"
        );
    }

    #[test]
    fn contraction_preserves_semantics() {
        use suif_dynamic_check::run_and_output;
        // Local shim not available — run both versions via the interpreter
        // in the integration tests instead; here check the shape only.
        let p = parse_program(PSMOO).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let cands = find_candidates(&pa);
        let c = cands.iter().find(|c| p.var(c.var).name == "d").unwrap();
        let p2 = apply(&p, c).unwrap();
        let d2 = p2.var_by_name("main", "d").unwrap();
        assert_eq!(p2.var(d2).dims.len(), 1, "d contracted to rank 1");
        let _ = run_and_output;
    }

    #[test]
    fn live_arrays_are_not_contracted() {
        // d read after the loop → live at exit → not contractible.
        let src = r#"program t
const il = 8
proc main() {
  real d[il, 4]
  int i, j
  do 50 j = 1, 4 {
    do 30 i = 1, il {
      d[i, j] = i + j
    }
  }
  print d[1, 1]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let cands = find_candidates(&pa);
        assert!(cands.is_empty(), "{cands:?}");
    }
}

#[cfg(test)]
mod suif_dynamic_check {
    /// Placeholder used by the shape-only unit test; the end-to-end
    /// semantics check lives in the workspace integration tests where the
    /// interpreter crate is available.
    pub fn run_and_output() {}
}
