//! Common-block live-range splitting (§5.5, Fig. 5-9/5-10).
//!
//! Fortran programs reuse one common block for unrelated data in different
//! program phases, often under *different shapes per procedure*.  Liveness
//! lets the compiler prove the live ranges disjoint and split the block into
//! independent blocks, freeing the layout/decomposition of each phase.
//!
//! Splittability is decided with a phase-flow check driven by the data-flow
//! summaries: procedures are grouped by their view layout of the block; a
//! split into groups is legal when no value written under one group's view
//! is ever exposed-read under another group's view.  We verify this with a
//! forward walk over every procedure body tracking which group last wrote
//! the block: a call into a group with upwards-exposed reads of the block is
//! only legal if that same group was the last writer (or the block is
//! dead-so-far); a callee that must-writes the full used range of the block
//! resets the last-writer set (the §5.5 "kill" that separates phases).

use crate::context::{AnalysisCtx, ArrayKey};
use crate::parallelize::ProgramAnalysis;
use std::collections::{HashMap, HashSet};
use suif_ir::{pretty, CommonId, Extent, ProcId, Program, Stmt};
use suif_poly::Section;

/// A discovered split: the block can be separated into `groups` independent
/// blocks, one per layout group.
#[derive(Clone, Debug)]
pub struct BlockSplit {
    /// The block.
    pub block: CommonId,
    /// Block name.
    pub name: String,
    /// Procedure groups (by identical layout); one new block per group.
    pub groups: Vec<Vec<ProcId>>,
}

/// Layout signature of one view: the (type, extents) sequence.
fn layout_signature(program: &Program, members: &[suif_ir::VarId]) -> String {
    members
        .iter()
        .map(|&v| {
            let info = program.var(v);
            let dims: Vec<String> = info
                .dims
                .iter()
                .map(|d| match d {
                    Extent::Const(c) => c.to_string(),
                    Extent::Var(_) => "?".into(),
                    Extent::Star => "*".into(),
                })
                .collect();
            format!("{:?}[{}]", info.ty, dims.join(","))
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Find the splittable common blocks of a program.
pub fn find_splits(pa: &ProgramAnalysis<'_>) -> Vec<BlockSplit> {
    let ctx = &pa.ctx;
    let program = ctx.program;
    let mut out = Vec::new();

    for (bi, blk) in program.commons.iter().enumerate() {
        let block = CommonId(bi as u32);
        // Group views by layout signature.
        let mut groups: HashMap<String, Vec<ProcId>> = HashMap::new();
        for view in &blk.views {
            let sig = layout_signature(program, &view.members);
            groups.entry(sig).or_default().push(view.proc);
        }
        if groups.len() < 2 {
            continue; // single layout — nothing to split (§5.5 targets
                      // "aliased variables of different types/shapes")
        }
        let group_list: Vec<Vec<ProcId>> = {
            let mut v: Vec<(String, Vec<ProcId>)> = groups.into_iter().collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v.into_iter().map(|(_, g)| g).collect()
        };
        // Group of each proc (transitively: a proc belongs to the groups of
        // every view reachable through its calls).
        let mut proc_groups: HashMap<ProcId, HashSet<usize>> = HashMap::new();
        for (gi, g) in group_list.iter().enumerate() {
            for &p in g {
                proc_groups.entry(p).or_default().insert(gi);
            }
        }
        // Propagate bottom-up through the call graph.
        for &p in ctx.cg.bottom_up() {
            let mut set: HashSet<usize> = proc_groups.get(&p).cloned().unwrap_or_default();
            for &c in ctx.cg.callees_of(p) {
                if let Some(cg) = proc_groups.get(&c) {
                    set.extend(cg.iter().copied());
                }
            }
            proc_groups.insert(p, set);
        }

        if split_is_legal(pa, block, &group_list, &proc_groups) {
            out.push(BlockSplit {
                block,
                name: blk.name.clone(),
                groups: group_list,
            });
        }
    }
    out
}

struct SplitPass<'a, 'p> {
    pa: &'a ProgramAnalysis<'p>,
}

impl crate::pipeline::Pass for SplitPass<'_, '_> {
    type Output = Vec<BlockSplit>;
    fn key(&self) -> crate::pipeline::FactKey {
        crate::pipeline::FactKey::new(
            crate::pipeline::PassId::Split,
            crate::pipeline::Scope::Program,
        )
    }
    fn input_hash(&self) -> u128 {
        self.pa.epoch_hash
    }
    fn deps(&self) -> Vec<crate::pipeline::FactKey> {
        vec![
            crate::pipeline::FactKey::new(
                crate::pipeline::PassId::Summarize,
                crate::pipeline::Scope::Program,
            ),
            crate::pipeline::FactKey::new(
                crate::pipeline::PassId::Liveness,
                crate::pipeline::Scope::Program,
            ),
        ]
    }
    fn run(&self) -> Vec<BlockSplit> {
        find_splits(self.pa)
    }
}

/// Demand-driven [`find_splits`]: computed the first time a query asks,
/// reused from the fact store afterwards.
pub fn find_splits_cached(
    pa: &ProgramAnalysis<'_>,
    store: &crate::pipeline::FactStore,
) -> std::sync::Arc<Vec<BlockSplit>> {
    store.demand(&SplitPass { pa })
}

/// The used range of the block: union of every view's extent.
fn used_range(ctx: &AnalysisCtx<'_>, block: CommonId) -> Section {
    let program = ctx.program;
    let mut out: Option<Section> = None;
    for view in &program.commons[block.0 as usize].views {
        for &m in &view.members {
            let s = ctx.whole_section(m);
            out = Some(match out {
                Some(acc) => acc.union(&s),
                None => s,
            });
        }
    }
    out.expect("block has at least one view")
}

fn split_is_legal(
    pa: &ProgramAnalysis<'_>,
    block: CommonId,
    groups: &[Vec<ProcId>],
    proc_groups: &HashMap<ProcId, HashSet<usize>>,
) -> bool {
    let ctx = &pa.ctx;
    let program = ctx.program;
    let block_id = ctx.array_of(program.commons[block.0 as usize].views[0].members[0]);
    let range = used_range(ctx, block);

    // Per-proc facts from the interprocedural summaries.
    let exposed_of = |p: ProcId| -> bool {
        pa.df
            .proc_summary
            .get(&p)
            .and_then(|n| n.acc.get(block_id))
            .map(|s| !s.exposed.is_empty())
            .unwrap_or(false)
    };
    let writes = |p: ProcId| -> bool {
        pa.df
            .proc_summary
            .get(&p)
            .and_then(|n| n.acc.get(block_id))
            .map(|s| !s.write.is_empty())
            .unwrap_or(false)
    };
    let must_covers_range = |p: ProcId| -> bool {
        pa.df
            .proc_summary
            .get(&p)
            .and_then(|n| n.acc.get(block_id))
            .map(|s| range.provably_subset_of(&s.must_write))
            .unwrap_or(false)
    };

    // A procedure touching multiple groups itself mixes phases: not
    // splittable along these groups if it also flows values (conservative:
    // reject when it has exposed reads of the block).
    for (&p, gs) in proc_groups {
        if gs.len() > 1 && exposed_of(p) {
            return false;
        }
        let _ = groups;
    }

    // Phase-flow check: walk each procedure body; `last` = groups that may
    // have written the block since the last full kill.  `None` group info on
    // a call means the callee does not touch the block.
    fn check_body(
        body: &[Stmt],
        last: &mut HashSet<usize>,
        exposed_of: &dyn Fn(ProcId) -> bool,
        writes: &dyn Fn(ProcId) -> bool,
        must_covers: &dyn Fn(ProcId) -> bool,
        proc_groups: &HashMap<ProcId, HashSet<usize>>,
    ) -> bool {
        for s in body {
            match s {
                Stmt::Call { callee, .. } => {
                    let gs = proc_groups.get(callee).cloned().unwrap_or_default();
                    if gs.is_empty() {
                        continue;
                    }
                    if exposed_of(*callee) && !last.is_empty() && !last.is_subset(&gs) {
                        return false; // cross-group value flow
                    }
                    if must_covers(*callee) {
                        *last = gs;
                    } else if writes(*callee) {
                        last.extend(gs);
                    }
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let mut l2 = last.clone();
                    if !check_body(
                        then_body,
                        last,
                        exposed_of,
                        writes,
                        must_covers,
                        proc_groups,
                    ) {
                        return false;
                    }
                    if !check_body(
                        else_body,
                        &mut l2,
                        exposed_of,
                        writes,
                        must_covers,
                        proc_groups,
                    ) {
                        return false;
                    }
                    last.extend(l2);
                }
                Stmt::Do { body, .. } => {
                    // Two passes ≈ fixed point for the cyclic flow.
                    for _ in 0..2 {
                        if !check_body(body, last, exposed_of, writes, must_covers, proc_groups) {
                            return false;
                        }
                    }
                }
                _ => {}
            }
        }
        true
    }

    for proc in &program.procedures {
        let mut last = HashSet::new();
        if !check_body(
            &proc.body,
            &mut last,
            &exposed_of,
            &writes,
            &must_covers_range,
            proc_groups,
        ) {
            return false;
        }
    }
    true
}

/// Apply splits: every group after the first gets a renamed copy of the
/// block.  Legal because the analysis proved no value flows between groups.
pub fn apply_splits(program: &Program, splits: &[BlockSplit]) -> Result<Program, String> {
    let mut src = pretty::program_to_string(program);
    for sp in splits {
        for (gi, group) in sp.groups.iter().enumerate().skip(1) {
            let new_name = format!("{}_{}", sp.name, gi);
            // Rewrite the declaration lines of the group's procedures.
            for &p in group {
                let pname = &program.proc(p).name;
                src = rename_block_in_proc(&src, pname, &sp.name, &new_name);
            }
        }
    }
    suif_ir::parse_program(&src).map_err(|e| format!("split program failed to reparse: {e}"))
}

fn rename_block_in_proc(src: &str, proc: &str, block: &str, new_block: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut in_proc = false;
    for line in src.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("proc ") {
            in_proc = trimmed
                .strip_prefix("proc ")
                .map(|r| r.split('(').next() == Some(proc))
                .unwrap_or(false);
        }
        if in_proc && trimmed.starts_with(&format!("common /{block}/")) {
            out.push_str(&line.replace(
                &format!("common /{block}/"),
                &format!("common /{new_block}/"),
            ));
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// Return the key of the (pre-split) block object, for reporting.
pub fn block_key(block: CommonId) -> ArrayKey {
    ArrayKey::Common(block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallelize::{ParallelizeConfig, Parallelizer};
    use suif_ir::parse_program;

    /// hydro2d's varh pattern (Fig. 5-9): tistep reads vz which vps wrote;
    /// trans2 fully rewrites vz1 before fct reads it.  The two live ranges
    /// never cross.
    const HYDRO2D: &str = r#"program t
const mp = 6
const np = 4
proc tistep() {
  common /varh/ real vz[mp, np]
  real acc
  int i, j
  acc = 0
  do 1 j = 1, np {
    do 2 i = 1, mp {
      acc = acc + vz[i, j]
    }
  }
  print acc
}
proc trans2() {
  common /varh/ real vz1[mp, np]
  int i, j
  do 1 j = 1, np {
    do 2 i = 1, mp {
      vz1[i, j] = i * j * 2
    }
  }
}
proc fct() {
  common /varh/ real vz1[mp, np]
  real acc
  int i, j
  acc = 0
  do 1 j = 1, np {
    do 2 i = 1, mp {
      acc = acc + vz1[i, j]
    }
  }
  print acc
}
proc vps() {
  common /varh/ real vz[mp, np]
  int i, j
  do 1 j = 1, np {
    do 2 i = 1, mp {
      vz[i, j] = i + j
    }
  }
}
proc advnce() {
  call trans2()
  call fct()
}
proc check() {
  call vps()
}
proc main() {
  int icnt
  call vps()
  do 100 icnt = 1, 5 {
    call tistep()
    call advnce()
    call check()
  }
}
"#;

    #[test]
    fn splits_hydro2d_varh() {
        // The two views have identical shapes here, so give them different
        // member names but same layout → same signature… the paper's case
        // has *different* shapes; adjust vz1's shape.
        let src = HYDRO2D.replace("real vz1[mp, np]", "real vz1[mp, 4]");
        // Same extents numerically (np = 4), different declaration form —
        // the signature is computed from resolved constants, so make it
        // genuinely different: use a flattened 1-D view.
        let src = src.replace("real vz1[mp, 4]", "real vz1[24]");
        let src = src.replace("vz1[i, j]", "vz1[i + (j - 1) * mp]");
        let p = parse_program(&src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let splits = find_splits(&pa);
        assert_eq!(splits.len(), 1, "varh must split: {splits:?}");
        assert_eq!(splits[0].groups.len(), 2);
        // And the split program still parses & resolves.
        let p2 = apply_splits(&p, &splits).unwrap();
        assert_eq!(p2.commons.len(), 2);
    }

    #[test]
    fn cross_phase_flow_blocks_split() {
        // fct reads vz1 but vps (other group) wrote it last → not splittable.
        let src = r#"program t
const mp = 6
proc writer() {
  common /c/ real a[mp]
  int i
  do 1 i = 1, mp {
    a[i] = i
  }
}
proc reader() {
  common /c/ real b[12]
  real acc
  int i
  acc = 0
  do 1 i = 1, mp {
    acc = acc + b[i]
  }
  print acc
}
proc main() {
  call writer()
  call reader()
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let splits = find_splits(&pa);
        assert!(splits.is_empty(), "value flows across views: {splits:?}");
    }
    #[test]
    fn three_disjoint_phases_split_into_three_groups() {
        // Three procedures use the same common block through three
        // shape-distinct views with no cross-phase value flow: the block
        // splits into one group per view signature.
        let src = r#"program t
proc pa() {
  common /c/ real a[6]
  int i
  do 1 i = 1, 6 {
    a[i] = i
  }
  print a[1]
}
proc pb() {
  common /c/ real b[2, 3]
  int i, j
  do 1 j = 1, 3 {
    do 2 i = 1, 2 {
      b[i, j] = i * j
    }
  }
  print b[1, 1]
}
proc pc() {
  common /c/ real c1[3], real c2[3]
  int i
  do 1 i = 1, 3 {
    c1[i] = i
    c2[i] = 2 * i
  }
  print c1[1], c2[3]
}
proc main() {
  call pa()
  call pb()
  call pc()
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let splits = find_splits(&pa);
        assert_eq!(splits.len(), 1, "{splits:?}");
        assert_eq!(splits[0].groups.len(), 3, "{splits:?}");
        let p2 = apply_splits(&p, &splits).unwrap();
        assert_eq!(p2.commons.len(), 3);
        // The rewritten program still analyzes cleanly.
        let _ = Parallelizer::analyze(&p2, ParallelizeConfig::default());
    }
}
