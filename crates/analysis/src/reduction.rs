//! Reduction recognition (Ch. 6).
//!
//! A reduction is a series of *commutative updates* `A = A op …` with
//! `op ∈ {+, *, MIN, MAX}` (§6.2.2.1), including the conditional form
//! `if (e < t) t = e` for MIN/MAX, and updates through arbitrary (even
//! non-affine / indirect) subscripts — the section then widens to the whole
//! array, which is still a valid reduction region (§6.1.3's `HISTOGRAM`).
//!
//! Per storage object we accumulate the union of *reduction regions* and the
//! union of *plain-access regions*; a loop may execute the object's updates
//! in parallel when the two unions provably do not overlap and all updates
//! share one operator (§6.2.2.4).

use std::collections::BTreeMap;
use std::fmt;
use suif_ir::ast::{BinOp, Intrinsic};
use suif_ir::{Expr, Ref, Stmt, VarId};
use suif_poly::{ArrayId, Section, Var};

/// Commutative/associative reduction operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RedOp {
    /// Summation (`+`, and `-` of the running value).
    Add,
    /// Product.
    Mul,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl RedOp {
    /// Identity element for private-copy initialization (§6.3.1).
    pub fn identity(&self) -> f64 {
        match self {
            RedOp::Add => 0.0,
            RedOp::Mul => 1.0,
            RedOp::Min => f64::INFINITY,
            RedOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Apply the operator.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            RedOp::Add => a + b,
            RedOp::Mul => a * b,
            RedOp::Min => a.min(b),
            RedOp::Max => a.max(b),
        }
    }
}

impl fmt::Display for RedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedOp::Add => write!(f, "sum"),
            RedOp::Mul => write!(f, "product"),
            RedOp::Min => write!(f, "min"),
            RedOp::Max => write!(f, "max"),
        }
    }
}

/// One recognized commutative update site.
#[derive(Clone, Debug)]
pub struct UpdateSite<'a> {
    /// Updated variable.
    pub var: VarId,
    /// Subscripts of the updated reference (empty = scalar).
    pub subs: &'a [Expr],
    /// Operator.
    pub op: RedOp,
    /// The non-self operands (data being combined in).
    pub data: Vec<&'a Expr>,
}

/// Structural expression equality (no renaming).
pub fn expr_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => x == y,
        (Expr::Real(x), Expr::Real(y)) => x == y,
        (Expr::Scalar(x), Expr::Scalar(y)) => x == y,
        (Expr::Element(x, xs), Expr::Element(y, ys)) => {
            x == y && xs.len() == ys.len() && xs.iter().zip(ys).all(|(p, q)| expr_eq(p, q))
        }
        (Expr::Unary(xo, xa), Expr::Unary(yo, ya)) => xo == yo && expr_eq(xa, ya),
        (Expr::Binary(xo, xa, xb), Expr::Binary(yo, ya, yb)) => {
            xo == yo && expr_eq(xa, ya) && expr_eq(xb, yb)
        }
        (Expr::Intrinsic(xi, xs), Expr::Intrinsic(yi, ys)) => {
            xi == yi && xs.len() == ys.len() && xs.iter().zip(ys).all(|(p, q)| expr_eq(p, q))
        }
        _ => false,
    }
}

fn ref_as_expr_eq(r: &Ref, e: &Expr) -> bool {
    match (r, e) {
        (Ref::Scalar(v), Expr::Scalar(w)) => v == w,
        (Ref::Element(v, subs), Expr::Element(w, wsubs)) => {
            v == w
                && subs.len() == wsubs.len()
                && subs.iter().zip(wsubs).all(|(p, q)| expr_eq(p, q))
        }
        _ => false,
    }
}

/// Recognize `lhs = lhs op …` / `lhs = lhs - …` / `lhs = min(lhs, …)` forms.
pub fn recognize_assign<'a>(lhs: &'a Ref, rhs: &'a Expr) -> Option<UpdateSite<'a>> {
    let (var, subs): (VarId, &[Expr]) = match lhs {
        Ref::Scalar(v) => (*v, &[]),
        Ref::Element(v, s) => (*v, s.as_slice()),
    };
    match rhs {
        Expr::Binary(BinOp::Add, a, b) => {
            if ref_as_expr_eq(lhs, a) {
                Some(UpdateSite {
                    var,
                    subs,
                    op: RedOp::Add,
                    data: vec![b],
                })
            } else if ref_as_expr_eq(lhs, b) {
                Some(UpdateSite {
                    var,
                    subs,
                    op: RedOp::Add,
                    data: vec![a],
                })
            } else {
                None
            }
        }
        // s = s - e  is a sum of negated values.
        Expr::Binary(BinOp::Sub, a, b) if ref_as_expr_eq(lhs, a) => Some(UpdateSite {
            var,
            subs,
            op: RedOp::Add,
            data: vec![b],
        }),
        Expr::Binary(BinOp::Mul, a, b) => {
            if ref_as_expr_eq(lhs, a) {
                Some(UpdateSite {
                    var,
                    subs,
                    op: RedOp::Mul,
                    data: vec![b],
                })
            } else if ref_as_expr_eq(lhs, b) {
                Some(UpdateSite {
                    var,
                    subs,
                    op: RedOp::Mul,
                    data: vec![a],
                })
            } else {
                None
            }
        }
        Expr::Intrinsic(which @ (Intrinsic::Min | Intrinsic::Max), args) => {
            let op = if *which == Intrinsic::Min {
                RedOp::Min
            } else {
                RedOp::Max
            };
            if ref_as_expr_eq(lhs, &args[0]) {
                Some(UpdateSite {
                    var,
                    subs,
                    op,
                    data: vec![&args[1]],
                })
            } else if ref_as_expr_eq(lhs, &args[1]) {
                Some(UpdateSite {
                    var,
                    subs,
                    op,
                    data: vec![&args[0]],
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Recognize the conditional MIN/MAX form `if (e < t) t = e` (§6.2.2.1:
/// "reductions of the form `if (a(i) < tmin) tmin = a(i)` are also
/// supported").  The then-branch must be exactly the assignment and the
/// else-branch empty.
pub fn recognize_if_minmax<'a>(
    cond: &'a Expr,
    then_body: &'a [Stmt],
    else_body: &'a [Stmt],
) -> Option<UpdateSite<'a>> {
    if !else_body.is_empty() || then_body.len() != 1 {
        return None;
    }
    let Stmt::Assign { lhs, rhs, .. } = &then_body[0] else {
        return None;
    };
    let Expr::Binary(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), a, b) = cond else {
        return None;
    };
    // `if (e < t) t = e` → MIN;  `if (e > t) t = e` → MAX;
    // mirrored comparisons likewise.
    let (value, target, less) = if ref_as_expr_eq(lhs, b) && expr_eq(a, rhs) {
        // cond: e OP t, assign t = e
        (a, b, matches!(op, BinOp::Lt | BinOp::Le))
    } else if ref_as_expr_eq(lhs, a) && expr_eq(b, rhs) {
        // cond: t OP e, assign t = e
        (b, a, matches!(op, BinOp::Gt | BinOp::Ge))
    } else {
        return None;
    };
    let _ = target;
    let (var, subs): (VarId, &[Expr]) = match lhs {
        Ref::Scalar(v) => (*v, &[]),
        Ref::Element(v, s) => (*v, s.as_slice()),
    };
    Some(UpdateSite {
        var,
        subs,
        op: if less { RedOp::Min } else { RedOp::Max },
        data: vec![value],
    })
}

/// Per-object reduction bookkeeping for a region.
#[derive(Clone, Debug)]
pub struct RedEntry {
    /// The single operator (None until the first update is seen).
    pub op: Option<RedOp>,
    /// Union of reduction regions.
    pub red: Section,
    /// Union of regions touched by non-update accesses (or by updates with a
    /// conflicting operator).
    pub nonred: Section,
}

/// Region-level reduction summary: one entry per storage object touched.
#[derive(Clone, Debug, Default)]
pub struct RedSummary {
    entries: BTreeMap<ArrayId, RedEntry>,
}

impl RedSummary {
    /// Empty summary.
    pub fn empty() -> RedSummary {
        RedSummary::default()
    }

    /// Install a fully formed entry verbatim (snapshot decode).  Unlike
    /// [`RedSummary::add_update`]/[`RedSummary::add_plain`] no section union
    /// or operator reconciliation runs — the entry must come from an earlier
    /// summary, where those reductions already happened.
    pub fn insert_entry(&mut self, id: ArrayId, e: RedEntry) {
        self.entries.insert(id, e);
    }

    fn entry(&mut self, id: ArrayId) -> &mut RedEntry {
        self.entries.entry(id).or_insert_with(|| RedEntry {
            op: None,
            red: Section::empty(id, 1),
            nonred: Section::empty(id, 1),
        })
    }

    /// Record a commutative update over `sec` with operator `op`.
    pub fn add_update(&mut self, sec: Section, op: RedOp) {
        let e = self.entry(sec.array);
        match e.op {
            None => {
                e.op = Some(op);
                e.red = e.red.union(&sec);
            }
            Some(cur) if cur == op => e.red = e.red.union(&sec),
            Some(_) => e.nonred = e.nonred.union(&sec),
        }
    }

    /// Record a plain (non-update) access over `sec`.
    pub fn add_plain(&mut self, sec: Section) {
        let e = self.entry(sec.array);
        e.nonred = e.nonred.union(&sec);
    }

    /// Combine two summaries executed in either order (union semantics —
    /// reduction regions are flow-insensitive, §6.2.2.3).
    pub fn union(&self, other: &RedSummary) -> RedSummary {
        let mut out = self.clone();
        for (id, e) in &other.entries {
            let t = out.entry(*id);
            match (t.op, e.op) {
                (None, op) => {
                    t.op = op;
                    t.red = t.red.union(&e.red);
                }
                (Some(a), Some(b)) if a == b => t.red = t.red.union(&e.red),
                (Some(_), Some(_)) => t.nonred = t.nonred.union(&e.red),
                (Some(_), None) => {}
            }
            let nr = e.nonred.clone();
            let t = out.entry(*id);
            t.nonred = t.nonred.union(&nr);
        }
        out
    }

    /// Map every section through `f` (closure, substitution, retargeting).
    pub fn map_sections(&self, mut f: impl FnMut(&Section) -> Option<Section>) -> RedSummary {
        let mut out = RedSummary::empty();
        for e in self.entries.values() {
            let Some(red) = f(&e.red) else { continue };
            let Some(nonred) = f(&e.nonred) else { continue };
            let t = out.entry(red.array);
            t.op = e.op;
            t.red = t.red.union(&red);
            t.nonred = t.nonred.union(&nonred);
        }
        out
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = (ArrayId, &RedEntry)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }

    /// Look up an entry.
    pub fn get(&self, id: ArrayId) -> Option<&RedEntry> {
        self.entries.get(&id)
    }

    /// Is `id` a *valid* reduction object in this region: it has updates
    /// with one operator, and the reduction region provably does not overlap
    /// any plain access (§6.2.2.4)?
    pub fn valid_reduction(&self, id: ArrayId) -> Option<RedOp> {
        let e = self.entries.get(&id)?;
        let op = e.op?;
        if e.red.is_empty() {
            return None;
        }
        if e.red.provably_disjoint(&e.nonred) {
            Some(op)
        } else {
            None
        }
    }
}

/// Convenience: classify whether a symbol belongs to the analysis-fresh
/// range (used by mapping code).
pub fn is_fresh_sym(v: Var) -> bool {
    matches!(v, Var::Sym(n) if n >= 0x4000_0000)
}

/// Convenience used by the summarizer for update-site recognition over a
/// whole statement (assignment form only; the `if` MIN/MAX form is handled
/// at the `If` node).
pub fn recognize_stmt(s: &Stmt) -> Option<UpdateSite<'_>> {
    match s {
        Stmt::Assign { lhs, rhs, .. } => recognize_assign(lhs, rhs),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    fn first_assign(src: &str) -> (suif_ir::Program, usize) {
        let p = parse_program(src).unwrap();
        (p, 0)
    }

    #[test]
    fn recognizes_sum_and_product() {
        let (p, _) = first_assign(
            "program t\nproc main() {\n real s, a[5]\n int i\n i = 1\n s = s + a[i]\n s = a[i] + s\n s = s - a[i]\n s = s * 2.0\n s = a[i]\n}",
        );
        let main = p.proc_by_name("main").unwrap();
        let sites: Vec<Option<UpdateSite>> = main.body[1..].iter().map(recognize_stmt).collect();
        assert_eq!(sites[0].as_ref().unwrap().op, RedOp::Add);
        assert_eq!(sites[1].as_ref().unwrap().op, RedOp::Add);
        assert_eq!(sites[2].as_ref().unwrap().op, RedOp::Add); // s - e
        assert_eq!(sites[3].as_ref().unwrap().op, RedOp::Mul);
        assert!(sites[4].is_none());
    }

    #[test]
    fn recognizes_array_and_indirect_updates() {
        let (p, _) = first_assign(
            "program t\nproc main() {\n real h[10], b[10]\n int idx[10], i\n i = 1\n h[idx[i]] = h[idx[i]] + 1\n b[i] = b[i + 1] + 1\n}",
        );
        let main = p.proc_by_name("main").unwrap();
        let s1 = recognize_stmt(&main.body[1]);
        assert!(s1.is_some(), "indirect histogram update must match");
        // b[i] = b[i+1] + 1 — different subscripts, NOT a commutative update.
        let s2 = recognize_stmt(&main.body[2]);
        assert!(s2.is_none());
    }

    #[test]
    fn recognizes_min_forms() {
        let p = parse_program(
            "program t\nproc main() {\n real tmin, a[10]\n int i\n i = 1\n tmin = min(tmin, a[i])\n if a[i] < tmin {\n tmin = a[i]\n }\n if tmin > a[i] {\n tmin = a[i]\n }\n}",
        )
        .unwrap();
        let main = p.proc_by_name("main").unwrap();
        assert_eq!(recognize_stmt(&main.body[1]).unwrap().op, RedOp::Min);
        let suif_ir::Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } = &main.body[2]
        else {
            panic!()
        };
        assert_eq!(
            recognize_if_minmax(cond, then_body, else_body).unwrap().op,
            RedOp::Min
        );
        let suif_ir::Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } = &main.body[3]
        else {
            panic!()
        };
        // `if (t > e) t = e` is also a MIN.
        assert_eq!(
            recognize_if_minmax(cond, then_body, else_body).unwrap().op,
            RedOp::Min
        );
    }

    #[test]
    fn red_summary_validity() {
        use crate::context::AnalysisCtx;
        use suif_poly::LinExpr;
        let p = parse_program("program t\nproc main() {\n real b[10]\n b[1] = 0\n}").unwrap();
        let ctx = AnalysisCtx::new(&p);
        let b = p.var_by_name("main", "b").unwrap();
        let id = ctx.array_of(b);
        let sec1 = ctx.access_section(b, Some(&[LinExpr::constant(3)]));
        let sec2 = ctx.access_section(b, Some(&[LinExpr::constant(7)]));
        let mut rs = RedSummary::empty();
        rs.add_update(sec1.clone(), RedOp::Add);
        rs.add_plain(sec2);
        assert_eq!(rs.valid_reduction(id), Some(RedOp::Add));
        // Overlapping plain access poisons.
        rs.add_plain(sec1);
        assert_eq!(rs.valid_reduction(id), None);
    }

    #[test]
    fn mixed_operators_poison_overlap() {
        use crate::context::AnalysisCtx;
        use suif_poly::LinExpr;
        let p = parse_program("program t\nproc main() {\n real b[10]\n b[1] = 0\n}").unwrap();
        let ctx = AnalysisCtx::new(&p);
        let b = p.var_by_name("main", "b").unwrap();
        let id = ctx.array_of(b);
        let sec = ctx.access_section(b, Some(&[LinExpr::constant(3)]));
        let mut rs = RedSummary::empty();
        rs.add_update(sec.clone(), RedOp::Add);
        rs.add_update(sec, RedOp::Mul);
        assert_eq!(rs.valid_reduction(id), None);
    }
}
