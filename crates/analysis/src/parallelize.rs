//! The parallelization driver: combines dependence, privatization,
//! reduction, and liveness analysis into a per-loop verdict (§2.4), with the
//! configuration toggles the evaluation ablates and support for checked
//! user assertions (§2.8).

use crate::cache::{self, Fnv128, SummaryCache};
use crate::context::{AnalysisCtx, ArrayKey};
use crate::deps::DepTest;
use crate::liveness::{self, LivenessMode, LivenessResult};
use crate::pipeline::{ExecStats, FactKey, FactStore, Pass, PassId, PassMetrics, Scope};
use crate::reduction::RedOp;
use crate::schedule::{self, ScheduleOptions, ScheduleStats};
use crate::summarize::ArrayDataFlow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;
use suif_ir::{LoopInfo, Program, Ref, Stmt, StmtId, VarId};
use suif_poly::ArrayId;

/// Classification of one storage object within one loop (the Fig. 4-9
/// accounting categories).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarClass {
    /// Accesses carry no loop-carried dependence.
    Parallel,
    /// Privatizable; `needs_finalization` says whether the last iteration's
    /// values must be written back (live at exit).
    Privatizable {
        /// Whether finalization is required.
        needs_finalization: bool,
    },
    /// A valid parallel reduction.
    Reduction(RedOp),
    /// An unresolved loop-carried dependence.
    Dep,
}

/// One unresolved static dependence the user is asked about (§2.6).
#[derive(Clone, Debug)]
pub struct StaticDep {
    /// The storage object.
    pub object: ArrayId,
    /// Display name.
    pub name: String,
    /// Variables (in the loop's procedure) denoting this object.
    pub vars: Vec<VarId>,
    /// Access sites inside the loop: `(stmt, line, is_write, via_call)`.
    pub sites: Vec<(StmtId, u32, bool, bool)>,
}

/// Execution plan data for a parallel loop (consumed by `suif-parallel`).
#[derive(Clone, Debug, Default)]
pub struct LoopPlan {
    /// Storage objects to privatize per thread (no finalization needed).
    pub private: Vec<ArrayKey>,
    /// Privatized objects whose last iteration must be written back.
    pub finalize_last: Vec<ArrayKey>,
    /// Parallel reductions: object, operator.
    pub reductions: Vec<(ArrayKey, RedOp)>,
}

/// Analysis verdict for one loop.
#[derive(Clone, Debug)]
pub enum LoopVerdict {
    /// The loop can run in parallel with the given plan.
    Parallel {
        /// Transformation plan.
        plan: LoopPlan,
        /// Per-object classification (for the Fig. 4-9 accounting).
        classes: BTreeMap<ArrayId, VarClass>,
    },
    /// The loop stays sequential.
    Sequential {
        /// Unresolved dependences requiring user examination.
        deps: Vec<StaticDep>,
        /// The loop performs I/O (never parallelized, §2.6).
        has_io: bool,
        /// Per-object classification of what *was* resolved.
        classes: BTreeMap<ArrayId, VarClass>,
    },
}

impl LoopVerdict {
    /// Is this a parallel verdict?
    pub fn is_parallel(&self) -> bool {
        matches!(self, LoopVerdict::Parallel { .. })
    }

    /// The classification table.
    pub fn classes(&self) -> &BTreeMap<ArrayId, VarClass> {
        match self {
            LoopVerdict::Parallel { classes, .. } => classes,
            LoopVerdict::Sequential { classes, .. } => classes,
        }
    }
}

/// A user assertion (validated by the Explorer's assertion checker, §2.8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Assertion {
    /// "Variable `var` is privatizable in loop `loop_name`" (no
    /// finalization needed).
    Privatizable {
        /// Loop name (`proc/label`).
        loop_name: String,
        /// Variable name in the loop's procedure.
        var: String,
    },
    /// "References to `var` in `loop_name` are independent" — dependences on
    /// it are ignored.
    Independent {
        /// Loop name.
        loop_name: String,
        /// Variable name.
        var: String,
    },
}

/// Analysis configuration (the evaluation's ablation axes).
#[derive(Clone, Debug)]
pub struct ParallelizeConfig {
    /// Recognize and parallelize reductions (off for the Fig. 6-4 baseline).
    pub enable_reduction: bool,
    /// Liveness algorithm for finalization elimination (`None` = the old
    /// SUIF rule only, the Fig. 5-8 baseline).
    pub liveness: Option<LivenessMode>,
    /// User assertions to apply.
    pub assertions: Vec<Assertion>,
}

impl Default for ParallelizeConfig {
    fn default() -> Self {
        ParallelizeConfig {
            enable_reduction: true,
            liveness: Some(LivenessMode::Full),
            assertions: Vec::new(),
        }
    }
}

/// The complete analysis of one program.
pub struct ProgramAnalysis<'p> {
    /// Shared context (region tree, call graph, array interner).
    pub ctx: AnalysisCtx<'p>,
    /// Bottom-up data flow (a shared fact — reused across incremental runs).
    pub df: Arc<ArrayDataFlow>,
    /// Liveness result (if enabled; shared like `df`).
    pub liveness: Option<Arc<LivenessResult>>,
    /// Per-loop verdicts.
    pub verdicts: HashMap<StmtId, LoopVerdict>,
    /// The configuration used.
    pub config: ParallelizeConfig,
    /// Assertions that named a loop or variable that does not exist (they
    /// are ignored by the analysis, but never silently).
    pub warnings: Vec<String>,
    /// Content hash of (program, config, resolved assertions) — the input
    /// hash of every demand-driven advisory fact over this analysis.
    pub epoch_hash: u128,
}

impl<'p> ProgramAnalysis<'p> {
    /// Statement ids of all loops judged parallel.
    pub fn parallel_loops(&self) -> HashSet<StmtId> {
        self.verdicts
            .iter()
            .filter(|(_, v)| v.is_parallel())
            .map(|(&s, _)| s)
            .collect()
    }

    /// The verdict for a loop.
    pub fn verdict(&self, l: StmtId) -> Option<&LoopVerdict> {
        self.verdicts.get(&l)
    }

    /// Per-loop certification inputs: one summary row per analyzed loop, in
    /// region-tree order, in the form the dynamic certification harness
    /// consumes (see `docs/dynamic.md`).
    pub fn certify_inputs(&self) -> Vec<LoopCertInfo> {
        self.ctx
            .tree
            .loops
            .iter()
            .filter_map(|li| {
                let v = self.verdicts.get(&li.stmt)?;
                let classes = v.classes();
                let transformed = classes
                    .values()
                    .any(|c| matches!(c, VarClass::Privatizable { .. } | VarClass::Reduction(_)));
                let (dep_vars, has_io) = match v {
                    LoopVerdict::Parallel { .. } => (Vec::new(), false),
                    LoopVerdict::Sequential { deps, has_io, .. } => {
                        (deps.iter().map(|d| d.name.clone()).collect(), *has_io)
                    }
                };
                Some(LoopCertInfo {
                    stmt: li.stmt,
                    name: li.name.clone(),
                    line: li.line,
                    parallel: v.is_parallel(),
                    plain_doall: v.is_parallel() && !transformed,
                    transformed,
                    has_io,
                    has_calls: li.has_calls,
                    dep_vars,
                })
            })
            .collect()
    }
}

/// One loop's static verdict, summarized for the race-certification
/// harness: whether the loop is claimed parallel, whether that claim rests
/// on transforms (privatization / reduction), and — for sequential loops —
/// which storage objects carry the unresolved dependences.
#[derive(Clone, Debug)]
pub struct LoopCertInfo {
    /// The loop statement.
    pub stmt: StmtId,
    /// Human-readable name (`proc/label`).
    pub name: String,
    /// `do` source line.
    pub line: u32,
    /// Claimed parallel by the static analysis.
    pub parallel: bool,
    /// Parallel with **no** transforms: every object classified
    /// [`VarClass::Parallel`].  Such loops must also be bitwise
    /// memory-deterministic under certification.
    pub plain_doall: bool,
    /// Privatization or reduction transforms are part of the claim.
    pub transformed: bool,
    /// The loop performs I/O (sequential verdicts only).
    pub has_io: bool,
    /// The loop body calls procedures.
    pub has_calls: bool,
    /// Names of objects with unresolved carried dependences (sequential
    /// verdicts only).
    pub dep_vars: Vec<String>,
}

/// One pass's share of an analysis run, from the [`FactStore`] counters.
#[derive(Clone, Copy, Debug)]
pub struct PassStat {
    /// Which pass.
    pub pass: PassId,
    /// Seconds spent running it this analysis.
    pub secs: f64,
    /// Facts computed (pass invocations) this analysis.
    pub invocations: u64,
    /// Demands served from the store this analysis.
    pub reused: u64,
    /// Demands served from the process-wide shared tier this analysis
    /// (another session computed the fact under the same content hash).
    pub shared: u64,
}

/// Accounting of one analysis run (the daemon's `stats` data), measured by
/// the fact store's per-pass counters rather than hand-rolled timers.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeStats {
    /// Bottom-up pass: sizes, cache traffic, worker utilization.  When the
    /// whole-program summary fact was reused, `summarized`/`cache_hits` are
    /// zero and the timing fields are zero — the scheduler never ran.
    pub schedule: ScheduleStats,
    /// Per-pass deltas for this run, in [`PassId`] order.
    pub passes: Vec<PassStat>,
    /// Facts computed across all passes this run.
    pub facts_computed: u64,
    /// Facts served from the store this run.
    pub facts_reused: u64,
    /// Facts that deduped against an in-flight computation this run.
    pub facts_deduped: u64,
    /// Facts served from the process-wide shared tier this run
    /// ([`PassMetrics::shared`] deltas).
    pub facts_shared: u64,
    /// Whole-analysis seconds (context build included).
    pub total_secs: f64,
    /// How the per-loop classify fan-out ran ([`FactStore::demand_all`]):
    /// worker count, per-worker busy seconds, and the fan-out wall-clock.
    pub demand_exec: ExecStats,
    /// Polyhedral-kernel counter deltas for this run: how the emptiness
    /// ladder resolved queries (GCD / interval / quick-sat / full FM),
    /// subscript-level dependence rejects, and budget approximations.
    pub poly: suif_poly::PolyStats,
}

impl AnalyzeStats {
    /// The stat row of one pass, if it saw any traffic this run.
    pub fn pass(&self, id: PassId) -> Option<&PassStat> {
        self.passes.iter().find(|p| p.pass == id)
    }

    /// Seconds one pass ran this analysis (0 when idle or fully reused).
    pub fn pass_secs(&self, id: PassId) -> f64 {
        self.pass(id).map(|p| p.secs).unwrap_or(0.0)
    }

    /// Liveness seconds (compatibility accessor).
    pub fn liveness_secs(&self) -> f64 {
        self.pass_secs(PassId::Liveness)
    }

    /// Classification seconds (compatibility accessor).
    pub fn classify_secs(&self) -> f64 {
        self.pass_secs(PassId::Classify)
    }

    /// Fraction of demanded facts served from the store, in `[0, 1]`.
    pub fn reuse_ratio(&self) -> f64 {
        let total = self.facts_computed + self.facts_reused;
        if total == 0 {
            0.0
        } else {
            self.facts_reused as f64 / total as f64
        }
    }
}

/// The driver.
pub struct Parallelizer;

impl Parallelizer {
    /// Analyze a program under a configuration (sequential, uncached).
    pub fn analyze(program: &Program, config: ParallelizeConfig) -> ProgramAnalysis<'_> {
        Parallelizer::analyze_with(program, config, &ScheduleOptions::sequential(), None).0
    }

    /// Analyze with an explicit schedule (parallel bottom-up pass) and an
    /// optional cross-run summary cache.  The analysis result is identical
    /// for every schedule and cache state; only [`AnalyzeStats`] differs.
    /// Runs through a private, single-use [`FactStore`].
    pub fn analyze_with<'p>(
        program: &'p Program,
        config: ParallelizeConfig,
        opts: &ScheduleOptions,
        cache: Option<&SummaryCache>,
    ) -> (ProgramAnalysis<'p>, AnalyzeStats) {
        Parallelizer::analyze_in(program, config, opts, cache, &FactStore::new())
    }

    /// Analyze through a shared [`FactStore`]: every pass becomes a fact
    /// demand, so a re-analysis after a config or assertion change replays
    /// only the facts whose input hashes moved.  The store may live across
    /// runs (and across `reload`s of edited programs — stale facts miss on
    /// their content hash).
    pub fn analyze_in<'p>(
        program: &'p Program,
        config: ParallelizeConfig,
        opts: &ScheduleOptions,
        cache: Option<&SummaryCache>,
        store: &FactStore,
    ) -> (ProgramAnalysis<'p>, AnalyzeStats) {
        let t0 = Instant::now();
        let metrics_before = store.metrics();
        // Process-wide kernel counters; the delta is attributed to this run
        // (concurrent analyses on other threads bleed in — acceptable for
        // stats reporting, never used for decisions).
        let poly_before = suif_poly::poly_stats();
        let ctx = AnalysisCtx::new(program);
        let proc_keys = cache::all_proc_keys(&ctx);
        let pkey = cache::program_key(&ctx, &proc_keys);

        // Whole-program summaries (§5.2) as one program-scope fact.
        let summarized_before = store.metrics_for(PassId::Summarize).invocations;
        let summary = store.demand(&SummarizePass {
            ctx: &ctx,
            opts,
            cache,
            hash: pkey,
        });
        let df = summary.df.clone();
        let schedule = if store.metrics_for(PassId::Summarize).invocations > summarized_before {
            summary.stats.clone()
        } else {
            // The fact was reused: the scheduler never ran, so report its
            // shape but no traffic or timing.
            ScheduleStats {
                summarized: 0,
                cache_hits: 0,
                wall_secs: 0.0,
                busy_secs: 0.0,
                proc_secs: Vec::new(),
                ..summary.stats.clone()
            }
        };

        // Liveness (§5.2) as a program-scope fact over the summaries.
        let liveness: Option<Arc<LivenessResult>> = config.liveness.map(|mode| {
            let mut h = Fnv128::new();
            h.write_u128(pkey);
            h.write(format!("{mode:?}").as_bytes());
            store.demand(&LivenessPass {
                ctx: &ctx,
                df: &df,
                mode,
                hash: h.0,
            })
        });

        // Resolve assertions to (loop, object) pairs, collecting a warning
        // for every assertion that names a missing loop or variable.
        let (assert_private, assert_independent, warnings) = resolve_assertions(&ctx, &config);
        let epoch_hash = epoch_hash(pkey, &config, &assert_private, &assert_independent);

        // Per-loop classification: one loop-scope fact each, keyed by the
        // region's content hash plus exactly the assertions that resolved
        // onto it — asserting one loop re-classifies only that loop.  The
        // demands fan out across the shared executor; results come back in
        // loop order and verdicts contain no fresh symbols, so the parallel
        // run is observationally identical to the sequential one.
        let exec = opts.executor();
        let passes: Vec<ClassifyPass<'_, '_>> = ctx
            .tree
            .loops
            .iter()
            .map(|li| {
                let lkey = cache::loop_key(li, &proc_keys);
                let hash = classify_hash(
                    pkey,
                    lkey,
                    &config,
                    li.stmt,
                    &assert_private,
                    &assert_independent,
                );
                ClassifyPass {
                    ctx: &ctx,
                    df: &df,
                    liveness: liveness.as_deref(),
                    config: &config,
                    li,
                    hash,
                    assert_private: &assert_private,
                    assert_independent: &assert_independent,
                }
            })
            .collect();
        let (facts, demand_exec) = store.demand_all(&passes, &exec);
        drop(passes);
        let mut verdicts = HashMap::new();
        for (li, verdict) in ctx.tree.loops.iter().zip(facts) {
            verdicts.insert(li.stmt, (*verdict).clone());
        }

        let mut stats = run_stats(store, &metrics_before, schedule, t0.elapsed().as_secs_f64());
        stats.demand_exec = demand_exec;
        stats.poly = suif_poly::poly_stats().since(&poly_before);
        (
            ProgramAnalysis {
                ctx,
                df,
                liveness,
                verdicts,
                config,
                warnings,
                epoch_hash,
            },
            stats,
        )
    }

    /// Speculatively compute the classify and carried-dependence facts of
    /// selected loops through a shared [`FactStore`], without building a
    /// full [`ProgramAnalysis`] for the caller.
    ///
    /// The server spawns this on a background thread after `guru`, naming
    /// the top-ranked loops: the next interactive query on one of them
    /// answers from the store.  `cancel` is polled between facts so an
    /// invalidation event (`assert`, `reload`) stops the speculation; a
    /// fact already `Running` when the event lands is stored dirty by the
    /// fact store itself, so cancellation never races a stale answer in.
    ///
    /// Returns the keys of every fact demanded (for hit/waste accounting)
    /// and whether the run was cancelled early.
    pub fn prefetch_loops(
        program: &Program,
        config: ParallelizeConfig,
        opts: &ScheduleOptions,
        cache: Option<&SummaryCache>,
        store: &FactStore,
        loop_names: &[String],
        cancel: &(dyn Fn() -> bool + Sync),
    ) -> PrefetchOutcome {
        let mut out = PrefetchOutcome::default();
        if cancel() {
            out.cancelled = true;
            return out;
        }
        let ctx = AnalysisCtx::new(program);
        let proc_keys = cache::all_proc_keys(&ctx);
        let pkey = cache::program_key(&ctx, &proc_keys);
        let summary = store.demand(&SummarizePass {
            ctx: &ctx,
            opts,
            cache,
            hash: pkey,
        });
        let df = summary.df.clone();
        let liveness: Option<Arc<LivenessResult>> = config.liveness.map(|mode| {
            let mut h = Fnv128::new();
            h.write_u128(pkey);
            h.write(format!("{mode:?}").as_bytes());
            store.demand(&LivenessPass {
                ctx: &ctx,
                df: &df,
                mode,
                hash: h.0,
            })
        });
        let (assert_private, assert_independent, warnings) = resolve_assertions(&ctx, &config);
        let epoch_hash = epoch_hash(pkey, &config, &assert_private, &assert_independent);

        let mut verdicts = HashMap::new();
        let mut stmts: Vec<StmtId> = Vec::new();
        for name in loop_names {
            if cancel() {
                out.cancelled = true;
                break;
            }
            let Some(li) = ctx.tree.loops.iter().find(|l| &l.name == name) else {
                continue;
            };
            let lkey = cache::loop_key(li, &proc_keys);
            let hash = classify_hash(
                pkey,
                lkey,
                &config,
                li.stmt,
                &assert_private,
                &assert_independent,
            );
            let verdict = store.demand(&ClassifyPass {
                ctx: &ctx,
                df: &df,
                liveness: liveness.as_deref(),
                config: &config,
                li,
                hash,
                assert_private: &assert_private,
                assert_independent: &assert_independent,
            });
            verdicts.insert(li.stmt, (*verdict).clone());
            out.keys
                .push(FactKey::new(PassId::Classify, Scope::Loop(li.stmt)));
            stmts.push(li.stmt);
        }

        // The carried-dependence advisory needs a full analysis view; reuse
        // the facts just demanded.
        let pa = ProgramAnalysis {
            ctx,
            df,
            liveness,
            verdicts,
            config,
            warnings,
            epoch_hash,
        };
        for stmt in stmts {
            if cancel() {
                out.cancelled = true;
                break;
            }
            crate::deps::carried_deps_cached(&pa, store, stmt);
            out.keys.push(FactKey::new(PassId::Deps, Scope::Loop(stmt)));
        }
        out
    }

    /// The input hash every fact key *would* carry if analyzed right now —
    /// computed from the program content and configuration alone, without
    /// running any pass.  This is the warm-start validator: a persisted
    /// fact whose stored hash matches the expected one is provably current
    /// (the hashes fold the region content keys, the configuration, and
    /// the resolved assertion marks); anything else is stale and must be
    /// evicted rather than imported.
    pub fn expected_fact_hashes(
        program: &Program,
        config: &ParallelizeConfig,
    ) -> HashMap<FactKey, u128> {
        let ctx = AnalysisCtx::new(program);
        let proc_keys = cache::all_proc_keys(&ctx);
        let pkey = cache::program_key(&ctx, &proc_keys);
        let mut out = HashMap::new();
        out.insert(FactKey::new(PassId::Summarize, Scope::Program), pkey);
        if let Some(mode) = config.liveness {
            let mut h = Fnv128::new();
            h.write_u128(pkey);
            h.write(format!("{mode:?}").as_bytes());
            out.insert(FactKey::new(PassId::Liveness, Scope::Program), h.0);
        }
        let (assert_private, assert_independent, _warnings) = resolve_assertions(&ctx, config);
        let eh = epoch_hash(pkey, config, &assert_private, &assert_independent);
        for li in &ctx.tree.loops {
            let lkey = cache::loop_key(li, &proc_keys);
            out.insert(
                FactKey::new(PassId::Classify, Scope::Loop(li.stmt)),
                classify_hash(
                    pkey,
                    lkey,
                    config,
                    li.stmt,
                    &assert_private,
                    &assert_independent,
                ),
            );
            let mut h = Fnv128::new();
            h.write_u128(eh);
            h.write_u32(li.stmt.0);
            out.insert(FactKey::new(PassId::Deps, Scope::Loop(li.stmt)), h.0);
        }
        for pass in [PassId::Contract, PassId::Decomp, PassId::Split] {
            out.insert(FactKey::new(pass, Scope::Program), eh);
        }
        out
    }
}

/// What [`Parallelizer::prefetch_loops`] did: the fact keys it demanded
/// (classify then deps, in ranked-loop order) and whether it was cancelled.
#[derive(Clone, Debug, Default)]
pub struct PrefetchOutcome {
    /// Every fact key demanded before cancellation.
    pub keys: Vec<FactKey>,
    /// Whether `cancel()` stopped the run early.
    pub cancelled: bool,
}

/// Resolved assertion marks `(stmt, object)`, one set per assertion kind,
/// plus the warnings for assertions that resolved to nothing.
type ResolvedAssertions = (
    HashSet<(StmtId, ArrayId)>,
    HashSet<(StmtId, ArrayId)>,
    Vec<String>,
);

/// Resolve the configured assertions against the region tree; unresolved
/// ones produce warnings instead of being silently dropped.
///
/// Warnings are sorted by source position (the named loop's `do` line, with
/// loop-less warnings last) and then text, so the order is deterministic
/// regardless of assertion order or demand schedule.
fn resolve_assertions(ctx: &AnalysisCtx<'_>, config: &ParallelizeConfig) -> ResolvedAssertions {
    let program = ctx.program;
    let mut assert_private: HashSet<(StmtId, ArrayId)> = HashSet::new();
    let mut assert_independent: HashSet<(StmtId, ArrayId)> = HashSet::new();
    let mut warnings: Vec<(u32, String)> = Vec::new();
    for a in &config.assertions {
        let (kind, loop_name, var, set) = match a {
            Assertion::Privatizable { loop_name, var } => {
                ("privatizable", loop_name, var, &mut assert_private)
            }
            Assertion::Independent { loop_name, var } => {
                ("independent", loop_name, var, &mut assert_independent)
            }
        };
        let Some(li) = ctx.tree.loops.iter().find(|l| &l.name == loop_name) else {
            warnings.push((
                u32::MAX,
                format!("unresolved assertion: no loop `{loop_name}` (asserted {kind} `{var}`)"),
            ));
            continue;
        };
        let proc_name = &program.proc(li.proc).name;
        match program.var_by_name(proc_name, var) {
            Some(v) => {
                set.insert((li.stmt, ctx.array_of(v)));
            }
            None => {
                warnings.push((
                    li.line,
                    format!(
                        "unresolved assertion: no variable `{var}` in `{proc_name}` (asserted {kind} on `{loop_name}`)"
                    ),
                ));
            }
        }
    }
    warnings.sort();
    warnings.dedup();
    let warnings = warnings.into_iter().map(|(_, w)| w).collect();
    (assert_private, assert_independent, warnings)
}

/// Fingerprint of the resolved assertions restricted to one loop (or to all
/// loops, for [`epoch_hash`]): sorted, so set iteration order is immaterial.
fn write_assertion_marks(
    h: &mut Fnv128,
    only_loop: Option<StmtId>,
    assert_private: &HashSet<(StmtId, ArrayId)>,
    assert_independent: &HashSet<(StmtId, ArrayId)>,
) {
    let mut marks: Vec<(u32, u32, u8)> = Vec::new();
    for &(s, id) in assert_private {
        if only_loop.map(|l| l == s).unwrap_or(true) {
            marks.push((s.0, id.0, 1));
        }
    }
    for &(s, id) in assert_independent {
        if only_loop.map(|l| l == s).unwrap_or(true) {
            marks.push((s.0, id.0, 2));
        }
    }
    marks.sort_unstable();
    for (s, id, kind) in marks {
        h.write_u32(s);
        h.write_u32(id);
        h.write(&[kind]);
    }
}

/// Input hash of one loop's classification fact.
fn classify_hash(
    pkey: u128,
    lkey: u128,
    config: &ParallelizeConfig,
    loop_stmt: StmtId,
    assert_private: &HashSet<(StmtId, ArrayId)>,
    assert_independent: &HashSet<(StmtId, ArrayId)>,
) -> u128 {
    let mut h = Fnv128::new();
    // The program key is part of the hash because classification reads
    // whole-program facts (summaries and top-down liveness).
    h.write_u128(pkey);
    h.write_u128(lkey);
    h.write(format!("{:?}", config.liveness).as_bytes());
    h.write(&[config.enable_reduction as u8]);
    write_assertion_marks(&mut h, Some(loop_stmt), assert_private, assert_independent);
    h.0
}

/// Input hash shared by every demand-driven advisory over one analysis.
fn epoch_hash(
    pkey: u128,
    config: &ParallelizeConfig,
    assert_private: &HashSet<(StmtId, ArrayId)>,
    assert_independent: &HashSet<(StmtId, ArrayId)>,
) -> u128 {
    let mut h = Fnv128::new();
    h.write_u128(pkey);
    h.write(format!("{:?}", config.liveness).as_bytes());
    h.write(&[config.enable_reduction as u8]);
    write_assertion_marks(&mut h, None, assert_private, assert_independent);
    h.0
}

/// Build the run's [`AnalyzeStats`] from the store-counter delta.
fn run_stats(
    store: &FactStore,
    before: &BTreeMap<PassId, PassMetrics>,
    schedule: ScheduleStats,
    total_secs: f64,
) -> AnalyzeStats {
    let after = store.metrics();
    let mut passes = Vec::new();
    let mut facts_computed = 0;
    let mut facts_reused = 0;
    let mut facts_deduped = 0;
    let mut facts_shared = 0;
    for (pass, m) in &after {
        let b = before.get(pass).copied().unwrap_or_default();
        let (invocations, reused) = (m.invocations - b.invocations, m.reused - b.reused);
        let deduped = m.deduped - b.deduped;
        let shared = m.shared - b.shared;
        if invocations == 0 && reused == 0 && deduped == 0 && shared == 0 {
            continue;
        }
        facts_computed += invocations;
        facts_reused += reused;
        facts_deduped += deduped;
        facts_shared += shared;
        passes.push(PassStat {
            pass: *pass,
            secs: m.secs - b.secs,
            invocations,
            reused,
            shared,
        });
    }
    AnalyzeStats {
        schedule,
        passes,
        facts_computed,
        facts_reused,
        facts_deduped,
        facts_shared,
        total_secs,
        demand_exec: ExecStats::default(),
        poly: suif_poly::PolyStats::default(),
    }
}

/// The whole-program summary fact: the merged data flow plus the schedule
/// stats of the run that computed it.
pub struct SummaryFact {
    /// Merged bottom-up data flow.
    pub df: Arc<ArrayDataFlow>,
    /// How the computing run was scheduled (reused runs report zero traffic).
    pub stats: ScheduleStats,
}

struct SummarizePass<'a, 'p> {
    ctx: &'a AnalysisCtx<'p>,
    opts: &'a ScheduleOptions,
    cache: Option<&'a SummaryCache>,
    hash: u128,
}

impl Pass for SummarizePass<'_, '_> {
    type Output = SummaryFact;
    fn key(&self) -> FactKey {
        FactKey::new(PassId::Summarize, Scope::Program)
    }
    fn input_hash(&self) -> u128 {
        self.hash
    }
    fn run(&self) -> SummaryFact {
        let (df, stats) = schedule::run(self.ctx, self.opts, self.cache);
        SummaryFact {
            df: Arc::new(df),
            stats,
        }
    }
}

struct LivenessPass<'a, 'p> {
    ctx: &'a AnalysisCtx<'p>,
    df: &'a ArrayDataFlow,
    mode: LivenessMode,
    hash: u128,
}

impl Pass for LivenessPass<'_, '_> {
    type Output = LivenessResult;
    fn key(&self) -> FactKey {
        FactKey::new(PassId::Liveness, Scope::Program)
    }
    fn input_hash(&self) -> u128 {
        self.hash
    }
    fn deps(&self) -> Vec<FactKey> {
        vec![FactKey::new(PassId::Summarize, Scope::Program)]
    }
    fn run(&self) -> LivenessResult {
        liveness::run(self.ctx, self.df, self.mode)
    }
}

struct ClassifyPass<'a, 'p> {
    ctx: &'a AnalysisCtx<'p>,
    df: &'a ArrayDataFlow,
    liveness: Option<&'a LivenessResult>,
    config: &'a ParallelizeConfig,
    li: &'a LoopInfo,
    hash: u128,
    assert_private: &'a HashSet<(StmtId, ArrayId)>,
    assert_independent: &'a HashSet<(StmtId, ArrayId)>,
}

impl Pass for ClassifyPass<'_, '_> {
    type Output = LoopVerdict;
    fn key(&self) -> FactKey {
        FactKey::new(PassId::Classify, Scope::Loop(self.li.stmt))
    }
    fn input_hash(&self) -> u128 {
        self.hash
    }
    fn deps(&self) -> Vec<FactKey> {
        let mut d = vec![FactKey::new(PassId::Summarize, Scope::Program)];
        if self.liveness.is_some() {
            d.push(FactKey::new(PassId::Liveness, Scope::Program));
        }
        d
    }
    fn run(&self) -> LoopVerdict {
        let dt = DepTest {
            ctx: self.ctx,
            df: self.df,
        };
        classify_loop(
            self.ctx,
            self.df,
            &dt,
            self.liveness,
            self.config,
            self.li.stmt,
            self.li.has_io,
            self.assert_private,
            self.assert_independent,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn classify_loop(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    dt: &DepTest<'_, '_>,
    liveness: Option<&LivenessResult>,
    config: &ParallelizeConfig,
    loop_stmt: StmtId,
    has_io: bool,
    assert_private: &HashSet<(StmtId, ArrayId)>,
    assert_independent: &HashSet<(StmtId, ArrayId)>,
) -> LoopVerdict {
    let mut classes: BTreeMap<ArrayId, VarClass> = BTreeMap::new();
    let mut plan = LoopPlan::default();
    let mut deps: Vec<StaticDep> = Vec::new();

    let Some(iter) = df.loop_iter.get(&loop_stmt) else {
        return LoopVerdict::Sequential {
            deps,
            has_io,
            classes,
        };
    };
    let li = ctx.tree.loop_of(loop_stmt).expect("loop");
    let index_object = ctx.array_of(li.var);

    let objects: BTreeSet<ArrayId> = iter.sum.acc.arrays().collect();
    for id in objects {
        if id == index_object {
            continue; // the induction variable is handled by the runtime
        }
        if assert_independent.contains(&(loop_stmt, id)) {
            classes.insert(id, VarClass::Parallel);
            continue;
        }
        if assert_private.contains(&(loop_stmt, id)) {
            classes.insert(
                id,
                VarClass::Privatizable {
                    needs_finalization: false,
                },
            );
            plan.private.push(ctx.key_of_id(id));
            continue;
        }
        if dt.has_carried_dep(loop_stmt, id).is_none() {
            classes.insert(id, VarClass::Parallel);
            continue;
        }
        if config.enable_reduction {
            if let Some(op) = dt.reduction_of(loop_stmt, id) {
                classes.insert(id, VarClass::Reduction(op));
                plan.reductions.push((ctx.key_of_id(id), op));
                continue;
            }
        }
        if dt.is_privatizable(loop_stmt, id) {
            let dead_after = liveness
                .map(|lv| lv.is_dead_after(loop_stmt, id))
                .unwrap_or(false);
            if dead_after {
                classes.insert(
                    id,
                    VarClass::Privatizable {
                        needs_finalization: false,
                    },
                );
                plan.private.push(ctx.key_of_id(id));
                continue;
            }
            if dt.writes_iteration_invariant(loop_stmt, id) {
                classes.insert(
                    id,
                    VarClass::Privatizable {
                        needs_finalization: true,
                    },
                );
                plan.finalize_last.push(ctx.key_of_id(id));
                continue;
            }
        }
        // Unresolved.
        classes.insert(id, VarClass::Dep);
        deps.push(static_dep_info(ctx, df, loop_stmt, id));
    }

    if has_io || !deps.is_empty() {
        LoopVerdict::Sequential {
            deps,
            has_io,
            classes,
        }
    } else {
        LoopVerdict::Parallel { plan, classes }
    }
}

/// Collect the access sites of one object inside a loop, for display and for
/// seeding the slicing queries.
fn static_dep_info(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    loop_stmt: StmtId,
    id: ArrayId,
) -> StaticDep {
    let program = ctx.program;
    let li = ctx.tree.loop_of(loop_stmt).expect("loop");
    let mut vars: Vec<VarId> = Vec::new();
    for v in program.proc(li.proc).all_vars() {
        if ctx.array_of(v) == id {
            vars.push(v);
        }
    }
    let mut sites = Vec::new();
    let Some((Stmt::Do { body, .. }, _)) = program.find_stmt(loop_stmt) else {
        return StaticDep {
            object: id,
            name: ctx.array_name(id),
            vars,
            sites,
        };
    };
    collect_sites(ctx, df, body, id, &mut sites);
    StaticDep {
        object: id,
        name: ctx.array_name(id),
        vars,
        sites,
    }
}

fn collect_sites(
    ctx: &AnalysisCtx<'_>,
    df: &ArrayDataFlow,
    body: &[Stmt],
    id: ArrayId,
    out: &mut Vec<(StmtId, u32, bool, bool)>,
) {
    for s in body {
        match s {
            Stmt::Assign { lhs, rhs, line, .. } => {
                if ctx.array_of(lhs.var()) == id {
                    out.push((s.id(), *line, true, false));
                }
                let mut found = false;
                rhs.visit_scalar_reads(&mut |v| {
                    if ctx.array_of(v) == id {
                        found = true;
                    }
                });
                rhs.visit_element_reads(&mut |v, _| {
                    if ctx.array_of(v) == id {
                        found = true;
                    }
                });
                if let Ref::Element(_, subs) = lhs {
                    for e in subs {
                        e.visit_element_reads(&mut |v, _| {
                            if ctx.array_of(v) == id {
                                found = true;
                            }
                        });
                    }
                }
                if found {
                    out.push((s.id(), *line, false, false));
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
                ..
            } => {
                let mut found = false;
                cond.visit_scalar_reads(&mut |v| {
                    if ctx.array_of(v) == id {
                        found = true;
                    }
                });
                cond.visit_element_reads(&mut |v, _| {
                    if ctx.array_of(v) == id {
                        found = true;
                    }
                });
                if found {
                    out.push((s.id(), *line, false, false));
                }
                collect_sites(ctx, df, then_body, id, out);
                collect_sites(ctx, df, else_body, id, out);
            }
            Stmt::Do { body, .. } => collect_sites(ctx, df, body, id, out),
            Stmt::Call { callee, line, .. } => {
                if let Some(cs) = df.proc_summary.get(callee) {
                    if let Some(acc) = cs.acc.get(id) {
                        let w = !acc.write.is_empty();
                        let r = !acc.read.is_empty();
                        if w || r {
                            out.push((s.id(), *line, w, true));
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suif_ir::parse_program;

    fn analyze(src: &str) -> (suif_ir::Program, Vec<(String, bool)>) {
        let p = parse_program(src).unwrap();
        let names = {
            let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
            let mut names: Vec<(String, bool)> = pa
                .ctx
                .tree
                .loops
                .iter()
                .map(|l| (l.name.clone(), pa.verdicts[&l.stmt].is_parallel()))
                .collect();
            names.sort();
            names
        };
        (p, names)
    }

    #[test]
    fn simple_parallel_loop() {
        let (_, v) = analyze(
            "program t\nproc main() {\n real a[10]\n int i\n do 1 i = 1, 10 {\n a[i] = i\n }\n}",
        );
        assert_eq!(v, vec![("main/1".to_string(), true)]);
    }

    #[test]
    fn recurrence_stays_sequential() {
        let (_, v) = analyze(
            "program t\nproc main() {\n real a[11]\n int i\n do 1 i = 2, 10 {\n a[i] = a[i - 1]\n }\n}",
        );
        assert_eq!(v, vec![("main/1".to_string(), false)]);
    }

    #[test]
    fn io_loop_stays_sequential() {
        let (_, v) =
            analyze("program t\nproc main() {\n int i\n do 1 i = 1, 10 {\n print i\n }\n}");
        assert_eq!(v, vec![("main/1".to_string(), false)]);
    }

    #[test]
    fn reduction_parallelizes_and_ablation_disables() {
        let src =
            "program t\nproc main() {\n real s, a[10]\n int i\n do 1 i = 1, 10 {\n s = s + a[i]\n }\n print s\n}";
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let l = pa.ctx.tree.loops[0].stmt;
        assert!(pa.verdicts[&l].is_parallel());
        match &pa.verdicts[&l] {
            LoopVerdict::Parallel { plan, .. } => {
                assert_eq!(plan.reductions.len(), 1);
            }
            _ => panic!(),
        }
        // Ablation: reduction recognition off → sequential (Fig. 6-4).
        let pa2 = Parallelizer::analyze(
            &p,
            ParallelizeConfig {
                enable_reduction: false,
                ..Default::default()
            },
        );
        assert!(!pa2.verdicts[&l].is_parallel());
    }

    #[test]
    fn liveness_enables_privatization_without_finalization() {
        // Each iteration writes tmp[1 : n(i)] with per-iteration n, then
        // reads exactly that range back — privatizable, but the old SUIF
        // finalization rule (identical write regions every iteration) fails;
        // liveness proves tmp dead at exit, enabling the privatization.
        let src = r#"program t
proc main() {
  real tmp[10], out[20]
  int sz[20]
  int i, j, n
  do 0 i = 1, 20 {
    sz[i] = mod(i, 5) + 1
  }
  do 1 i = 1, 20 {
    n = sz[i]
    do 2 j = 1, n {
      tmp[j] = i + j
    }
    do 3 j = 1, n {
      out[i] = out[i] + tmp[j]
    }
  }
  print out[3]
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let l1 = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1")
            .unwrap()
            .stmt;
        assert!(
            pa.verdicts[&l1].is_parallel(),
            "liveness should privatize tmp: {:?}",
            pa.verdicts[&l1]
        );
        // Without liveness the loop stays sequential (Fig. 5-8 baseline).
        let pa2 = Parallelizer::analyze(
            &p,
            ParallelizeConfig {
                liveness: None,
                ..Default::default()
            },
        );
        assert!(!pa2.verdicts[&l1].is_parallel());
    }

    #[test]
    fn user_assertion_unlocks_loop() {
        // The mdg pattern: conditional write/read of rl that the compiler
        // cannot resolve; the user asserts privatizability.
        let src = r#"program t
proc main() {
  real rs[9], rl[14], a[100]
  real cut2, acc
  int i, k, kc
  cut2 = 12.0
  acc = 0
  do 1000 i = 1, 100 {
    kc = 0
    do 1110 k = 1, 9 {
      rs[k] = a[i] + k
      if rs[k] > cut2 { kc = kc + 1 }
    }
    do 1130 k = 2, 5 {
      if rs[k + 4] <= cut2 { rl[k + 4] = rs[k + 4] }
    }
    if kc == 0 {
      do 1140 k = 11, 14 {
        acc = acc + rl[k - 5]
      }
    }
  }
  print acc
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let l1000 = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1000")
            .unwrap()
            .stmt;
        // Without help: sequential, with rl among the dependences.
        match &pa.verdicts[&l1000] {
            LoopVerdict::Sequential { deps, .. } => {
                assert!(
                    deps.iter().any(|d| d.name == "rl"),
                    "rl should be the blocking dep: {:?}",
                    deps.iter().map(|d| &d.name).collect::<Vec<_>>()
                );
            }
            _ => panic!("expected sequential"),
        }
        // With the user assertion: parallel.
        let pa2 = Parallelizer::analyze(
            &p,
            ParallelizeConfig {
                assertions: vec![Assertion::Privatizable {
                    loop_name: "main/1000".into(),
                    var: "rl".into(),
                }],
                ..Default::default()
            },
        );
        assert!(
            pa2.verdicts[&l1000].is_parallel(),
            "{:?}",
            pa2.verdicts[&l1000]
        );
    }

    #[test]
    fn classification_accounting() {
        let src = r#"program t
proc main() {
  real a[10], tmp[4], s
  int i, j
  do 1 i = 1, 10 {
    do 2 j = 1, 4 {
      tmp[j] = i * j
    }
    a[i] = tmp[1] + tmp[2]
    s = s + tmp[3]
  }
  print s
}
"#;
        let p = parse_program(src).unwrap();
        let pa = Parallelizer::analyze(&p, ParallelizeConfig::default());
        let l1 = pa
            .ctx
            .tree
            .loops
            .iter()
            .find(|l| l.name == "main/1")
            .unwrap()
            .stmt;
        let v = &pa.verdicts[&l1];
        assert!(v.is_parallel(), "{v:?}");
        let by_name: HashMap<String, VarClass> = v
            .classes()
            .iter()
            .map(|(&id, c)| (pa.ctx.array_name(id), c.clone()))
            .collect();
        assert_eq!(by_name["a"], VarClass::Parallel);
        assert!(matches!(by_name["tmp"], VarClass::Privatizable { .. }));
        assert_eq!(by_name["s"], VarClass::Reduction(RedOp::Add));
    }
}
