//! The demand-driven pass pipeline: a [`Pass`] trait plus a region-granular
//! [`FactStore`].
//!
//! Every analysis driver (summaries, liveness, per-loop classification, and
//! the demand-only advisories in [`crate::contract`], [`crate::decomp`],
//! [`crate::split`], [`crate::deps`]) is expressed as a pass producing one
//! *fact* per scope — the whole program, one procedure, or one loop region.
//! The store memoizes facts under a `(PassId, Scope)` key together with the
//! 128-bit content hash of the pass inputs ([`crate::cache`] keys extended
//! to region granularity), so a demand is answered three ways:
//!
//! 1. **reuse** — a valid entry whose input hash matches is returned as-is
//!    (counted in [`PassMetrics::reused`]);
//! 2. **recompute** — a missing, stale-hash, or invalidated entry runs the
//!    pass, times it, and overwrites the entry;
//! 3. **invalidate** — an external event (a user assertion, an edit) marks
//!    one fact dirty; the recorded dependency edges propagate to every fact
//!    that transitively depends on it, so the next demand recomputes exactly
//!    the dirty cone.
//!
//! Facts are stored as `Arc<dyn Any>` so heterogeneous pass outputs share
//! one map; [`FactStore::demand`] downcasts back to the pass's typed output.
//! All methods take `&self` — the store is shared across analysis runs of
//! one daemon session the same way the summary cache is.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;
use suif_ir::{ProcId, StmtId};

/// Identity of an analysis pass (one per driver ported onto the pipeline).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PassId {
    /// Bottom-up interprocedural array data-flow summaries.
    Summarize,
    /// Interprocedural array liveness.
    Liveness,
    /// Per-loop parallelization verdict.
    Classify,
    /// Per-loop carried-dependence table (demand-only).
    Deps,
    /// Array-contraction candidates (demand-only).
    Contract,
    /// Data-decomposition advisory (demand-only).
    Decomp,
    /// Common-block live-range splits (demand-only).
    Split,
}

impl PassId {
    /// Every pass, in pipeline order.
    pub const ALL: [PassId; 7] = [
        PassId::Summarize,
        PassId::Liveness,
        PassId::Classify,
        PassId::Deps,
        PassId::Contract,
        PassId::Decomp,
        PassId::Split,
    ];

    /// Stable lower-case name (used in the daemon's `stats` payload).
    pub fn name(self) -> &'static str {
        match self {
            PassId::Summarize => "summarize",
            PassId::Liveness => "liveness",
            PassId::Classify => "classify",
            PassId::Deps => "deps",
            PassId::Contract => "contract",
            PassId::Decomp => "decomp",
            PassId::Split => "split",
        }
    }
}

/// The region a fact describes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Scope {
    /// The whole program.
    Program,
    /// One procedure.
    Proc(ProcId),
    /// One loop region, named by its `do` statement.
    Loop(StmtId),
}

/// The key of one fact: which pass, over which region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactKey {
    /// The producing pass.
    pub pass: PassId,
    /// The region analyzed.
    pub scope: Scope,
}

impl FactKey {
    /// Shorthand constructor.
    pub fn new(pass: PassId, scope: Scope) -> FactKey {
        FactKey { pass, scope }
    }
}

/// One schedulable unit of analysis.
///
/// A pass is a *pure function of its input hash*: two demands with the same
/// [`Pass::key`] and [`Pass::input_hash`] must produce interchangeable
/// outputs.  [`Pass::deps`] declares the facts this one reads, recorded as
/// dependency edges for [`FactStore::invalidate`].
pub trait Pass {
    /// The fact type this pass produces.
    type Output: Send + Sync + 'static;

    /// Where the fact lives in the store.
    fn key(&self) -> FactKey;

    /// Content hash of everything the output depends on.
    fn input_hash(&self) -> u128;

    /// Keys of the facts this pass reads (dependency edges).
    fn deps(&self) -> Vec<FactKey> {
        Vec::new()
    }

    /// Compute the fact.
    fn run(&self) -> Self::Output;
}

/// Per-pass counters: how often it ran, how often a demand was served from
/// the store, and the seconds spent in [`Pass::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PassMetrics {
    /// Times [`Pass::run`] executed.
    pub invocations: u64,
    /// Demands answered by a valid, hash-matching entry.
    pub reused: u64,
    /// Total seconds inside [`Pass::run`].
    pub secs: f64,
}

struct FactEntry {
    hash: u128,
    value: Arc<dyn Any + Send + Sync>,
    deps: Vec<FactKey>,
    valid: bool,
}

/// A memoizing store of analysis facts keyed by `(pass, scope)`.
#[derive(Default)]
pub struct FactStore {
    facts: Mutex<HashMap<FactKey, FactEntry>>,
    metrics: Mutex<BTreeMap<PassId, PassMetrics>>,
}

impl FactStore {
    /// An empty store.
    pub fn new() -> FactStore {
        FactStore::default()
    }

    /// Demand a fact: reuse a valid entry whose input hash matches, else run
    /// the pass, record its output (with dependency edges), and return it.
    pub fn demand<P: Pass>(&self, pass: &P) -> Arc<P::Output> {
        let key = pass.key();
        let hash = pass.input_hash();
        {
            let facts = self.facts.lock();
            if let Some(e) = facts.get(&key) {
                if e.valid && e.hash == hash {
                    if let Ok(v) = e.value.clone().downcast::<P::Output>() {
                        self.metrics.lock().entry(key.pass).or_default().reused += 1;
                        return v;
                    }
                }
            }
        }
        // Run outside the lock: a pass may demand its own inputs.
        let t0 = Instant::now();
        let out = Arc::new(pass.run());
        let secs = t0.elapsed().as_secs_f64();
        self.facts.lock().insert(
            key,
            FactEntry {
                hash,
                value: out.clone(),
                deps: pass.deps(),
                valid: true,
            },
        );
        let mut metrics = self.metrics.lock();
        let m = metrics.entry(key.pass).or_default();
        m.invocations += 1;
        m.secs += secs;
        out
    }

    /// Mark one fact dirty and propagate along the recorded dependency
    /// edges: every fact that transitively depends on `key` is invalidated
    /// too.  Returns the number of entries marked dirty.  The next demand
    /// for each recomputes regardless of its stored hash.
    pub fn invalidate(&self, key: FactKey) -> usize {
        let mut facts = self.facts.lock();
        let mut frontier = vec![key];
        let mut dirtied = 0usize;
        while let Some(k) = frontier.pop() {
            if let Some(e) = facts.get_mut(&k) {
                if e.valid {
                    e.valid = false;
                    dirtied += 1;
                } else if k != key {
                    continue; // already propagated through this fact
                }
            }
            let dependents: Vec<FactKey> = facts
                .iter()
                .filter(|(_, e)| e.valid && e.deps.contains(&k))
                .map(|(&dk, _)| dk)
                .collect();
            frontier.extend(dependents);
        }
        dirtied
    }

    /// Invalidate every fact of one pass (and, transitively, the facts
    /// depending on them).  Hash mismatches already handle program edits;
    /// this is for events that change pass semantics wholesale.
    pub fn invalidate_pass(&self, pass: PassId) -> usize {
        let keys: Vec<FactKey> = self
            .facts
            .lock()
            .keys()
            .filter(|k| k.pass == pass)
            .copied()
            .collect();
        keys.into_iter().map(|k| self.invalidate(k)).sum()
    }

    /// Snapshot of the per-pass counters.
    pub fn metrics(&self) -> BTreeMap<PassId, PassMetrics> {
        self.metrics.lock().clone()
    }

    /// Counters of one pass (zeros when it never ran).
    pub fn metrics_for(&self, pass: PassId) -> PassMetrics {
        self.metrics.lock().get(&pass).copied().unwrap_or_default()
    }

    /// Zero all counters (facts are kept).
    pub fn reset_metrics(&self) {
        self.metrics.lock().clear();
    }

    /// Number of stored facts (valid or dirty).
    pub fn len(&self) -> usize {
        self.facts.lock().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every fact and zero the counters.
    pub fn clear(&self) {
        self.facts.lock().clear();
        self.reset_metrics();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingPass<'a> {
        key: FactKey,
        hash: u128,
        deps: Vec<FactKey>,
        runs: &'a AtomicU64,
        output: i64,
    }

    impl Pass for CountingPass<'_> {
        type Output = i64;
        fn key(&self) -> FactKey {
            self.key
        }
        fn input_hash(&self) -> u128 {
            self.hash
        }
        fn deps(&self) -> Vec<FactKey> {
            self.deps.clone()
        }
        fn run(&self) -> i64 {
            self.runs.fetch_add(1, Ordering::Relaxed);
            self.output
        }
    }

    fn key(pass: PassId, stmt: u32) -> FactKey {
        FactKey::new(pass, Scope::Loop(StmtId(stmt)))
    }

    #[test]
    fn demand_memoizes_by_hash() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Classify, 1),
            hash: 7,
            deps: vec![],
            runs: &runs,
            output: 42,
        };
        assert_eq!(*store.demand(&p), 42);
        assert_eq!(*store.demand(&p), 42);
        assert_eq!(runs.load(Ordering::Relaxed), 1, "second demand reuses");
        let m = store.metrics_for(PassId::Classify);
        assert_eq!((m.invocations, m.reused), (1, 1));

        // A changed input hash recomputes and overwrites.
        let p2 = CountingPass { hash: 8, ..p };
        store.demand(&p2);
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(store.len(), 1, "same key overwritten, not duplicated");
    }

    #[test]
    fn invalidation_follows_dependency_edges() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let summarize = CountingPass {
            key: FactKey::new(PassId::Summarize, Scope::Program),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 1,
        };
        let liveness = CountingPass {
            key: FactKey::new(PassId::Liveness, Scope::Program),
            hash: 1,
            deps: vec![summarize.key()],
            runs: &runs,
            output: 2,
        };
        let classify = CountingPass {
            key: key(PassId::Classify, 9),
            hash: 1,
            deps: vec![liveness.key()],
            runs: &runs,
            output: 3,
        };
        let other = CountingPass {
            key: key(PassId::Classify, 10),
            hash: 1,
            deps: vec![],
            runs: &runs,
            output: 4,
        };
        store.demand(&summarize);
        store.demand(&liveness);
        store.demand(&classify);
        store.demand(&other);
        assert_eq!(runs.load(Ordering::Relaxed), 4);

        // Invalidating the root dirties the chain but not the unrelated fact.
        assert_eq!(store.invalidate(summarize.key()), 3);
        store.demand(&other);
        assert_eq!(runs.load(Ordering::Relaxed), 4, "untouched fact reused");
        store.demand(&classify);
        assert_eq!(runs.load(Ordering::Relaxed), 5, "dirty fact recomputed");

        // Invalidating a leaf touches only the leaf.
        assert_eq!(store.invalidate(other.key()), 1);
    }

    #[test]
    fn clear_and_reset() {
        let store = FactStore::new();
        let runs = AtomicU64::new(0);
        let p = CountingPass {
            key: key(PassId::Deps, 1),
            hash: 0,
            deps: vec![],
            runs: &runs,
            output: 0,
        };
        store.demand(&p);
        assert!(!store.is_empty());
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.metrics_for(PassId::Deps), PassMetrics::default());
    }
}
